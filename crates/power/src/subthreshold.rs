//! Sub-threshold minimum-energy analysis (paper §IV).
//!
//! Sub-threshold design lowers VDD until dynamic energy per operation
//! (falling as `V²`) balances leakage energy per operation (rising as
//! `P_leak(V) / F_max(V)`, because delay explodes below threshold). The
//! supply where they balance is the minimum-energy point: ≈310 mV /
//! 1.7 pJ / 10 MHz for the paper's multiplier and ≈450 mV / 12 pJ /
//! 24 MHz for its Cortex-M0.
//!
//! This module reproduces Figs. 9/10: sweep the supply, recompute
//! `F_max(V)` with [`scpg_sta`] and both energy components with the
//! library models, and locate the minimum.

use scpg_liberty::{Library, PvtCorner};
use scpg_netlist::Netlist;
use scpg_sta::StaError;
use scpg_units::{Energy, Frequency, Power, Voltage};

use crate::analyzer::PowerAnalyzer;

/// One point of the energy-versus-supply curve.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct SubthresholdPoint {
    /// Supply voltage.
    pub voltage: Voltage,
    /// Maximum clock frequency at this supply.
    pub f_max: Frequency,
    /// Leakage power at this supply.
    pub p_leak: Power,
    /// Dynamic energy per operation at this supply.
    pub e_dynamic: Energy,
    /// Leakage energy per operation (`p_leak / f_max`).
    pub e_leak: Energy,
}

impl SubthresholdPoint {
    /// Total energy per operation.
    pub fn e_op(&self) -> Energy {
        self.e_dynamic + self.e_leak
    }

    /// Average power when running flat-out at `f_max`.
    pub fn power_at_fmax(&self) -> Power {
        self.p_leak + self.e_dynamic * self.f_max
    }
}

/// The located minimum-energy point.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct MinimumEnergyPoint {
    /// The minimising supply.
    pub voltage: Voltage,
    /// Energy per operation there.
    pub energy: Energy,
    /// Operating frequency there.
    pub frequency: Frequency,
    /// Average power there.
    pub power: Power,
}

/// The full sweep result.
#[derive(Debug, Clone, PartialEq)]
pub struct SubthresholdCurve {
    points: Vec<SubthresholdPoint>,
}

impl SubthresholdCurve {
    /// Sweeps `voltages` for the design, using `e_dyn_char` as the
    /// measured dynamic energy per operation at the library's
    /// characterisation voltage (obtain it by simulating a workload at
    /// 0.6 V and asking [`crate::DynamicReport::energy_per_cycle`]).
    ///
    /// Supply points are independent, so the sweep fans out across the
    /// [`scpg_exec`] pool (voltage order in the result is preserved);
    /// inside an outer parallel region — e.g. a Monte-Carlo die — it
    /// degrades to a serial loop.
    ///
    /// # Errors
    ///
    /// Returns an [`StaError`] if timing analysis fails at any supply
    /// (lowest-voltage failure wins).
    pub fn sweep(
        nl: &Netlist,
        lib: &Library,
        e_dyn_char: Energy,
        voltages: &[Voltage],
    ) -> Result<Self, StaError> {
        let v_char = lib.char_voltage();
        let points = scpg_exec::par_try_map(voltages, |_, &v| {
            let report = scpg_sta::analyze(nl, lib, v)?;
            let analyzer =
                PowerAnalyzer::new(nl, lib, PvtCorner::at_voltage(v)).map_err(StaError::from)?;
            let p_leak = analyzer.leakage(None).total;
            let vr = v.as_v() / v_char.as_v();
            let e_dynamic = Energy::new(e_dyn_char.value() * vr * vr);
            let f_max = report.f_max();
            Ok::<_, StaError>(SubthresholdPoint {
                voltage: v,
                f_max,
                p_leak,
                e_dynamic,
                e_leak: p_leak / f_max,
            })
        })?;
        Ok(Self { points })
    }

    /// All sweep points, in the order given.
    pub fn points(&self) -> &[SubthresholdPoint] {
        &self.points
    }

    /// The minimum-energy point of the sweep, or `None` for an empty one.
    pub fn minimum(&self) -> Option<MinimumEnergyPoint> {
        self.points
            .iter()
            .min_by(|a, b| a.e_op().value().total_cmp(&b.e_op().value()))
            .map(|p| MinimumEnergyPoint {
                voltage: p.voltage,
                energy: p.e_op(),
                frequency: p.f_max,
                power: p.power_at_fmax(),
            })
    }

    /// Highest frequency achievable within `budget` when running at
    /// `f_max(V)` per supply point; the paper uses this to compare
    /// sub-threshold operation against SCPG at matched power.
    pub fn best_within_budget(&self, budget: Power) -> Option<&SubthresholdPoint> {
        self.points
            .iter()
            .filter(|p| p.power_at_fmax().value() <= budget.value())
            .max_by(|a, b| a.f_max.value().total_cmp(&b.f_max.value()))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use scpg_liberty::Library;
    use scpg_units::linspace;

    fn chain(n: usize) -> Netlist {
        let mut nl = Netlist::new("chain");
        let mut cur = nl.add_input("a");
        for i in 0..n {
            let next = if i + 1 == n {
                nl.add_output("y")
            } else {
                nl.add_fresh_net()
            };
            nl.add_instance(format!("u{i}"), "INV_X1", &[cur, next])
                .unwrap();
            cur = next;
        }
        nl
    }

    fn sweep_for(n: usize, e_dyn_pj: f64) -> SubthresholdCurve {
        let lib = Library::ninety_nm();
        let nl = chain(n);
        let volts: Vec<Voltage> = linspace(0.15, 0.9, 76)
            .into_iter()
            .map(Voltage::from_v)
            .collect();
        SubthresholdCurve::sweep(&nl, &lib, Energy::from_pj(e_dyn_pj), &volts).unwrap()
    }

    // Dynamic energies below are sized so that, like the paper's designs,
    // leakage energy is ≈20 % of dynamic at 0.6 V — that ratio is what
    // puts the minimum-energy point near threshold.
    #[test]
    fn curve_is_u_shaped() {
        let curve = sweep_for(64, 0.012);
        let min = curve.minimum().unwrap();
        let first = curve.points().first().unwrap();
        let last = curve.points().last().unwrap();
        assert!(
            first.e_op().value() > min.energy.value() * 1.15,
            "left arm rises"
        );
        assert!(
            last.e_op().value() > min.energy.value() * 1.1,
            "right arm rises"
        );
        // Minimum is interior.
        assert!(min.voltage.as_mv() > 160.0 && min.voltage.as_mv() < 880.0);
    }

    #[test]
    fn minimum_sits_near_threshold_region() {
        // With leakage-heavy designs the minimum-energy point sits in the
        // 250–500 mV band (paper: 310 mV multiplier, 450 mV M0).
        let curve = sweep_for(64, 0.012);
        let min = curve.minimum().unwrap();
        assert!(
            (210.0..520.0).contains(&min.voltage.as_mv()),
            "min at {} outside the near-threshold band",
            min.voltage
        );
    }

    #[test]
    fn components_move_in_opposite_directions() {
        let curve = sweep_for(32, 0.012);
        let pts = curve.points();
        for w in pts.windows(2) {
            assert!(
                w[1].e_dynamic.value() > w[0].e_dynamic.value(),
                "dynamic rises with V"
            );
            assert!(
                w[1].f_max.value() > w[0].f_max.value(),
                "speed rises with V"
            );
        }
        // Leakage energy per op falls with V (delay shrinks faster than
        // leakage rises) through the sub/near-threshold region.
        let low = pts.first().unwrap().e_leak;
        let mid = pts[pts.len() / 2].e_leak;
        assert!(low.value() > mid.value());
    }

    #[test]
    fn budget_query_matches_brute_force() {
        let curve = sweep_for(32, 0.012);
        let budget = Power::from_uw(20.0);
        let best = curve.best_within_budget(budget);
        if let Some(best) = best {
            for p in curve.points() {
                if p.power_at_fmax().value() <= budget.value() {
                    assert!(p.f_max.value() <= best.f_max.value());
                }
            }
        }
        // Absurdly small budget yields nothing.
        assert!(curve.best_within_budget(Power::from_pw(1.0)).is_none());
    }

    #[test]
    fn empty_sweep_has_no_minimum() {
        let lib = Library::ninety_nm();
        let nl = chain(4);
        let curve = SubthresholdCurve::sweep(&nl, &lib, Energy::from_pj(1.0), &[]).unwrap();
        assert!(curve.minimum().is_none());
    }
}
