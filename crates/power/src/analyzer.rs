//! Activity-based dynamic power and state-based leakage rollups.

use scpg_liberty::{Library, PvtCorner};
use scpg_netlist::{Connectivity, Domain, NetId, Netlist, NetlistError};
use scpg_units::{Current, Energy, Power, Time};
use scpg_waveform::Activity;

/// Dynamic-power results over one simulated run.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct DynamicReport {
    /// Total switching energy over the run.
    pub energy: Energy,
    /// The run's wall-clock (simulated) duration.
    pub duration: Time,
    /// Average dynamic power (`energy / duration`).
    pub power: Power,
}

impl DynamicReport {
    /// Energy per clock cycle at the given period.
    pub fn energy_per_cycle(&self, period: Time) -> Energy {
        if self.duration.value() == 0.0 {
            return Energy::ZERO;
        }
        Energy::new(self.energy.value() * period.value() / self.duration.value())
    }
}

/// Leakage-power results, split the way SCPG reasons about the design.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct LeakageReport {
    /// Whole-design leakage power.
    pub total: Power,
    /// Leakage of combinational cells.
    pub combinational: Power,
    /// Leakage of sequential cells.
    pub sequential: Power,
    /// Leakage of isolation/tie/control cells.
    pub special: Power,
    /// Leakage of the [`Domain::Gated`] instances (what SCPG can switch
    /// off).
    pub gated_domain: Power,
    /// Leakage of the [`Domain::AlwaysOn`] instances.
    pub always_on: Power,
    /// Supply current drawn by the gated domain at full rail.
    pub gated_domain_current: Current,
}

/// Per-design power engine.
#[derive(Debug)]
pub struct PowerAnalyzer<'a> {
    nl: &'a Netlist,
    lib: &'a Library,
    corner: PvtCorner,
    conn: Connectivity,
}

impl<'a> PowerAnalyzer<'a> {
    /// Binds the engine to a netlist/library at an operating corner.
    ///
    /// # Errors
    ///
    /// Returns a [`NetlistError`] if the netlist does not resolve against
    /// the library.
    pub fn new(nl: &'a Netlist, lib: &'a Library, corner: PvtCorner) -> Result<Self, NetlistError> {
        let conn = nl.connectivity(lib)?;
        Ok(Self {
            nl,
            lib,
            corner,
            conn,
        })
    }

    /// The operating corner in use.
    pub fn corner(&self) -> PvtCorner {
        self.corner
    }

    /// Dynamic power of a simulated run: per net,
    /// `toggles × E_switch(driver, V, C_load)`.
    pub fn dynamic(&self, activity: &Activity) -> DynamicReport {
        let v = self.corner.voltage;
        let mut energy = Energy::ZERO;
        for (i, net_act) in activity.nets().iter().enumerate() {
            if net_act.toggles == 0 {
                continue;
            }
            let net = NetId::from_index(i);
            let Some(driver) = self.conn.driver(net) else {
                // Primary inputs are charged by the outside world; their
                // pin loads still cost energy, billed via the wire+pin
                // capacitance at half CV² per toggle.
                let load = self.net_load(net);
                let e = 0.5 * load.value() * v.as_v() * v.as_v();
                energy += Energy::new(e * net_act.toggles as f64);
                continue;
            };
            let cell = self.lib.expect_cell(self.nl.instance(driver.inst).cell());
            let e = cell.switching_energy(v, self.net_load(net));
            energy += e * net_act.toggles as f64;
        }
        let duration = Time::from_ps(activity.duration_ps() as f64);
        let power = if duration.value() > 0.0 {
            energy / duration
        } else {
            Power::ZERO
        };
        DynamicReport {
            energy,
            duration,
            power,
        }
    }

    fn net_load(&self, net: NetId) -> scpg_units::Capacitance {
        let mut load = self.lib.wire_cap();
        for pin in self.conn.loads(net) {
            load += self
                .lib
                .expect_cell(self.nl.instance(pin.inst).cell())
                .input_cap();
        }
        load
    }

    /// Leakage power rollup.
    ///
    /// With `activity` provided, each cell's stack-effect factor is
    /// evaluated from the average observed input state; without it, the
    /// library's average-state leakage is used.
    pub fn leakage(&self, activity: Option<&Activity>) -> LeakageReport {
        let v = self.corner.voltage;
        let t = self.corner.temperature;
        let mut report = LeakageReport {
            total: Power::ZERO,
            combinational: Power::ZERO,
            sequential: Power::ZERO,
            special: Power::ZERO,
            gated_domain: Power::ZERO,
            always_on: Power::ZERO,
            gated_domain_current: Current::ZERO,
        };
        for (_, inst) in self.nl.iter_instances() {
            let cell = self.lib.expect_cell(inst.cell());
            let kind = cell.kind();
            let mut current = cell.leakage_current(v, t);
            if let Some(act) = activity {
                let n_in = kind.num_inputs();
                if n_in > 0 {
                    let mean_high: f64 = inst.connections()[..n_in]
                        .iter()
                        .map(|n| act.net(n.index()).high_fraction())
                        .sum::<f64>()
                        / n_in as f64;
                    // Same shape as CellKind::state_leak_factor, driven by
                    // time-averaged input state.
                    let factor = 0.6 + 0.8 * mean_high;
                    current = Current::new(current.value() * factor);
                }
            }
            let p = v * current;
            report.total += p;
            if kind.is_sequential() {
                report.sequential += p;
            } else if kind.is_combinational()
                && !matches!(
                    kind,
                    scpg_liberty::CellKind::IsoAnd
                        | scpg_liberty::CellKind::IsoOr
                        | scpg_liberty::CellKind::TieHi
                        | scpg_liberty::CellKind::TieLo
                        | scpg_liberty::CellKind::IsoCtl
                )
            {
                report.combinational += p;
            } else {
                report.special += p;
            }
            match inst.domain() {
                Domain::Gated => {
                    report.gated_domain += p;
                    report.gated_domain_current += current;
                }
                Domain::AlwaysOn => report.always_on += p,
            }
        }
        report
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use scpg_liberty::{Library, Logic};
    use scpg_sim::{SimConfig, Simulator};
    use scpg_units::Voltage;

    fn lib() -> Library {
        Library::ninety_nm()
    }

    fn inv_chain(n: usize) -> Netlist {
        let mut nl = Netlist::new("chain");
        let mut cur = nl.add_input("a");
        for i in 0..n {
            let next = if i + 1 == n {
                nl.add_output("y")
            } else {
                nl.add_fresh_net()
            };
            nl.add_instance(format!("u{i}"), "INV_X1", &[cur, next])
                .unwrap();
            cur = next;
        }
        nl
    }

    #[test]
    fn leakage_scales_with_gate_count() {
        let lib = lib();
        let corner = PvtCorner::default();
        let small = inv_chain(10);
        let big = inv_chain(100);
        let l_small = PowerAnalyzer::new(&small, &lib, corner)
            .unwrap()
            .leakage(None);
        let l_big = PowerAnalyzer::new(&big, &lib, corner)
            .unwrap()
            .leakage(None);
        let ratio = l_big.total / l_small.total;
        assert!((ratio - 10.0).abs() < 0.01, "ratio {ratio}");
    }

    #[test]
    fn leakage_splits_by_domain() {
        let lib = lib();
        let mut nl = inv_chain(4);
        let u0 = nl.instance_by_name("u0").unwrap();
        let u1 = nl.instance_by_name("u1").unwrap();
        nl.set_domain(u0, Domain::Gated);
        nl.set_domain(u1, Domain::Gated);
        let rep = PowerAnalyzer::new(&nl, &lib, PvtCorner::default())
            .unwrap()
            .leakage(None);
        let frac = rep.gated_domain / rep.total;
        assert!((frac - 0.5).abs() < 1e-9, "half the invs are gated: {frac}");
        assert!(rep.gated_domain_current.as_na() > 0.0);
    }

    #[test]
    fn dynamic_power_tracks_activity() {
        let lib = lib();
        let nl = inv_chain(8);
        let a = nl.net_by_name("a").unwrap();
        let corner = PvtCorner::default();

        // Toggle the input 10 times over 10 µs.
        let mut sim = Simulator::new(&nl, &lib, SimConfig::default()).unwrap();
        sim.set_input(a, Logic::Zero);
        sim.run_until_quiet(1_000_000);
        for i in 0..10u64 {
            sim.set_input(a, if i % 2 == 0 { Logic::One } else { Logic::Zero });
            sim.run_until_quiet(1_000_000 * (i + 2));
        }
        let res = sim.finish();
        let rep = PowerAnalyzer::new(&nl, &lib, corner)
            .unwrap()
            .dynamic(&res.activity);
        assert!(rep.energy.as_fj() > 0.0);
        // 10 toggles × 9 nets × ~10 fJ ≈ 1 pJ, within a factor of a few.
        assert!(
            (0.1..10.0).contains(&rep.energy.as_pj()),
            "energy {} out of expected band",
            rep.energy
        );
        assert!(rep.power.as_nw() > 0.0);
        let per_cycle = rep.energy_per_cycle(Time::from_us(2.0));
        assert!(per_cycle.value() > 0.0);
    }

    #[test]
    fn dynamic_energy_drops_quadratically_with_vdd() {
        let lib = lib();
        let nl = inv_chain(4);
        let a = nl.net_by_name("a").unwrap();
        let run = |v_mv: f64| {
            let cfg = SimConfig {
                corner: PvtCorner::at_voltage(Voltage::from_mv(v_mv)),
                ..SimConfig::default()
            };
            let mut sim = Simulator::new(&nl, &lib, cfg).unwrap();
            sim.set_input(a, Logic::Zero);
            sim.run_until_quiet(10_000_000);
            sim.set_input(a, Logic::One);
            sim.run_until_quiet(20_000_000);
            let res = sim.finish();
            PowerAnalyzer::new(&nl, &lib, PvtCorner::at_voltage(Voltage::from_mv(v_mv)))
                .unwrap()
                .dynamic(&res.activity)
                .energy
        };
        let e6 = run(600.0);
        let e3 = run(300.0);
        let ratio = e6 / e3;
        assert!((ratio - 4.0).abs() < 0.2, "V² scaling, measured {ratio:.2}");
    }

    #[test]
    fn state_aware_leakage_differs_from_average() {
        let lib = lib();
        let nl = inv_chain(6);
        let a = nl.net_by_name("a").unwrap();
        // Hold the input low forever: alternating net states down the
        // chain, so state-aware leakage ≠ average but same magnitude.
        let mut sim = Simulator::new(&nl, &lib, SimConfig::default()).unwrap();
        sim.set_input(a, Logic::Zero);
        sim.run_until_quiet(1_000_000);
        sim.run_until(100_000_000);
        let res = sim.finish();
        let an = PowerAnalyzer::new(&nl, &lib, PvtCorner::default()).unwrap();
        let avg = an.leakage(None).total;
        let aware = an.leakage(Some(&res.activity)).total;
        let rel = (aware / avg - 1.0).abs();
        assert!(rel < 0.45, "state factor is bounded: {rel}");
        assert!(aware.value() > 0.0);
    }
}
