//! Value-change-dump (IEEE 1364 §18) writing and parsing.
//!
//! Only the gate-level subset is supported: scalar variables, a single
//! scope, `$timescale 1ps`. This matches what the simulator produces and
//! what the activity extraction consumes — the same role VCD plays
//! between Modelsim and Primetime-PX in the paper's flow.

use std::fmt::Write as _;

use scpg_liberty::Logic;

/// One recorded change.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct VcdChange {
    /// Timestamp in picoseconds.
    pub time_ps: u64,
    /// Variable index (position in the declared name list).
    pub var: usize,
    /// The new value.
    pub value: Logic,
}

/// A parsed dump: variable names plus the ordered change list.
#[derive(Debug, Clone, PartialEq)]
pub struct VcdDump {
    /// Declared variable names, index-aligned with [`VcdChange::var`].
    pub names: Vec<String>,
    /// All changes in file order.
    pub changes: Vec<VcdChange>,
}

/// Writes a VCD file incrementally into a `String`.
#[derive(Debug, Clone)]
pub struct VcdWriter {
    out: String,
    ids: Vec<String>,
    time: Option<u64>,
}

fn id_code(mut n: usize) -> String {
    // Printable identifier code per the VCD spec: base-94 over '!'..'~'.
    let mut s = String::new();
    loop {
        s.push((33 + (n % 94)) as u8 as char);
        n /= 94;
        if n == 0 {
            break;
        }
    }
    s
}

impl VcdWriter {
    /// Starts a dump for the named module with the given net names.
    pub fn new(module: &str, net_names: &[&str]) -> Self {
        let mut out = String::new();
        let _ = writeln!(out, "$date scpg reproduction $end");
        let _ = writeln!(out, "$timescale 1ps $end");
        let _ = writeln!(out, "$scope module {module} $end");
        let mut ids = Vec::with_capacity(net_names.len());
        for (i, name) in net_names.iter().enumerate() {
            let id = id_code(i);
            let _ = writeln!(out, "$var wire 1 {id} {name} $end");
            ids.push(id);
        }
        let _ = writeln!(out, "$upscope $end");
        let _ = writeln!(out, "$enddefinitions $end");
        Self {
            out,
            ids,
            time: None,
        }
    }

    /// Records a change of variable `var` to `value` at `time_ps`.
    ///
    /// # Panics
    ///
    /// Panics if `var` is out of range or time goes backwards.
    pub fn change(&mut self, time_ps: u64, var: usize, value: Logic) {
        assert!(var < self.ids.len(), "vcd variable {var} out of range");
        match self.time {
            Some(t) if t == time_ps => {}
            Some(t) => {
                assert!(time_ps > t, "vcd time must be non-decreasing");
                let _ = writeln!(self.out, "#{time_ps}");
                self.time = Some(time_ps);
            }
            None => {
                let _ = writeln!(self.out, "#{time_ps}");
                self.time = Some(time_ps);
            }
        }
        let _ = writeln!(self.out, "{}{}", value.vcd_char(), self.ids[var]);
    }

    /// Finalises at `end_ps` and returns the VCD text.
    pub fn finish(mut self, end_ps: u64) -> String {
        if self.time != Some(end_ps) {
            let _ = writeln!(self.out, "#{end_ps}");
        }
        self.out
    }
}

/// Parses the subset written by [`VcdWriter`].
///
/// # Errors
///
/// Returns a `String` description on malformed input (unknown identifier
/// codes, bad timestamps, missing definitions).
pub fn parse_vcd(text: &str) -> Result<VcdDump, String> {
    let mut names = Vec::new();
    let mut codes = Vec::new();
    let mut changes = Vec::new();
    let mut time = 0u64;
    let mut in_defs = true;

    for (lineno, raw) in text.lines().enumerate() {
        let line = raw.trim();
        if line.is_empty() {
            continue;
        }
        let fail = |m: &str| format!("line {}: {m}", lineno + 1);
        if in_defs {
            if line.starts_with("$var") {
                // $var wire 1 <id> <name> $end
                let parts: Vec<&str> = line.split_whitespace().collect();
                if parts.len() < 6 {
                    return Err(fail("malformed $var"));
                }
                codes.push(parts[3].to_string());
                names.push(parts[4].to_string());
            } else if line.starts_with("$enddefinitions") {
                in_defs = false;
            }
            continue;
        }
        if let Some(ts) = line.strip_prefix('#') {
            time = ts.parse().map_err(|_| fail("bad timestamp"))?;
        } else if line.starts_with('$') {
            // $dumpvars / $end blocks — values inside are handled below.
            continue;
        } else {
            let mut chars = line.chars();
            let v = chars
                .next()
                .and_then(Logic::from_vcd_char)
                .ok_or_else(|| fail("bad value char"))?;
            let code: String = chars.collect();
            let var = codes
                .iter()
                .position(|c| *c == code)
                .ok_or_else(|| fail(&format!("unknown id code `{code}`")))?;
            changes.push(VcdChange {
                time_ps: time,
                var,
                value: v,
            });
        }
    }
    Ok(VcdDump { names, changes })
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn id_codes_are_unique_and_printable() {
        let mut seen = std::collections::HashSet::new();
        for i in 0..10_000 {
            let c = id_code(i);
            assert!(c.chars().all(|ch| ('!'..='~').contains(&ch)));
            assert!(seen.insert(c), "duplicate code at {i}");
        }
    }

    #[test]
    fn write_then_parse_round_trips() {
        let mut w = VcdWriter::new("toy", &["clk", "data"]);
        w.change(0, 0, Logic::Zero);
        w.change(0, 1, Logic::X);
        w.change(500, 0, Logic::One);
        w.change(700, 1, Logic::One);
        w.change(1_000, 0, Logic::Zero);
        let text = w.finish(1_500);

        let dump = parse_vcd(&text).unwrap();
        assert_eq!(dump.names, vec!["clk", "data"]);
        assert_eq!(dump.changes.len(), 5);
        assert_eq!(
            dump.changes[2],
            VcdChange {
                time_ps: 500,
                var: 0,
                value: Logic::One
            }
        );
        assert_eq!(
            dump.changes[4],
            VcdChange {
                time_ps: 1_000,
                var: 0,
                value: Logic::Zero
            }
        );
    }

    #[test]
    fn parser_reports_bad_input() {
        assert!(parse_vcd("$enddefinitions $end\n#x\n").is_err());
        assert!(parse_vcd("$enddefinitions $end\n#0\nq!\n").is_err());
    }

    #[test]
    #[should_panic(expected = "non-decreasing")]
    fn writer_rejects_time_travel() {
        let mut w = VcdWriter::new("t", &["a"]);
        w.change(100, 0, Logic::One);
        w.change(50, 0, Logic::Zero);
    }

    #[test]
    fn many_variables_round_trip() {
        let names: Vec<String> = (0..200).map(|i| format!("n{i}")).collect();
        let refs: Vec<&str> = names.iter().map(String::as_str).collect();
        let mut w = VcdWriter::new("big", &refs);
        for i in 0..200 {
            w.change(10, i, Logic::One);
        }
        let dump = parse_vcd(&w.finish(20)).unwrap();
        assert_eq!(dump.names.len(), 200);
        assert_eq!(dump.changes.len(), 200);
        assert!(dump.changes.iter().all(|c| c.value == Logic::One));
    }
}
