//! Per-net switching activity and state residency.

use crate::vcd::VcdDump;

/// Accumulated statistics of one net over a simulation run.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct NetActivity {
    /// Number of value changes between known levels (0↔1). Transitions
    /// into or out of `X`/`Z` are counted separately.
    pub toggles: u64,
    /// Transitions involving an unknown value (power-gating corruption).
    pub unknown_transitions: u64,
    /// Picoseconds spent at logic 1.
    pub time_high_ps: u64,
    /// Picoseconds spent at logic 0.
    pub time_low_ps: u64,
    /// Picoseconds spent at `X`/`Z`.
    pub time_unknown_ps: u64,
}

impl NetActivity {
    /// Fraction of observed time spent at logic 1, counting unknown time
    /// as half (matching the leakage model's treatment of `X`).
    pub fn high_fraction(&self) -> f64 {
        let total = self.time_high_ps + self.time_low_ps + self.time_unknown_ps;
        if total == 0 {
            return 0.5;
        }
        (self.time_high_ps as f64 + 0.5 * self.time_unknown_ps as f64) / total as f64
    }
}

/// Switching activity of a whole design over a run.
#[derive(Debug, Clone, PartialEq)]
pub struct Activity {
    duration_ps: u64,
    nets: Vec<NetActivity>,
    window_ps: Option<u64>,
    window_toggles: Vec<u64>,
}

impl Activity {
    /// Total simulated time in picoseconds.
    pub fn duration_ps(&self) -> u64 {
        self.duration_ps
    }

    /// Statistics of net `i` (indexed like the netlist's nets).
    ///
    /// # Panics
    ///
    /// Panics if `i` is out of range.
    pub fn net(&self, i: usize) -> &NetActivity {
        &self.nets[i]
    }

    /// All per-net records.
    pub fn nets(&self) -> &[NetActivity] {
        &self.nets
    }

    /// Total 0↔1 toggles across all nets.
    pub fn total_toggles(&self) -> u64 {
        self.nets.iter().map(|n| n.toggles).sum()
    }

    /// Average toggles per net per clock cycle of length `cycle_ps` — the
    /// "switching probability" of the paper's Fig. 7.
    pub fn switching_probability(&self, cycle_ps: u64) -> f64 {
        if self.duration_ps == 0 || self.nets.is_empty() || cycle_ps == 0 {
            return 0.0;
        }
        let cycles = self.duration_ps as f64 / cycle_ps as f64;
        self.total_toggles() as f64 / (self.nets.len() as f64 * cycles)
    }

    /// Per-window total toggle counts (empty when windowing was off).
    pub fn window_toggles(&self) -> &[u64] {
        &self.window_toggles
    }

    /// Per-window switching probability (toggles per net per cycle).
    pub fn window_switching_probabilities(&self, cycle_ps: u64) -> Vec<f64> {
        let Some(window_ps) = self.window_ps else {
            return Vec::new();
        };
        if self.nets.is_empty() || cycle_ps == 0 {
            return Vec::new();
        }
        let cycles_per_window = window_ps as f64 / cycle_ps as f64;
        self.window_toggles
            .iter()
            .map(|&t| t as f64 / (self.nets.len() as f64 * cycles_per_window))
            .collect()
    }
}

impl Activity {
    /// Combines two activity records of the **same design** measured over
    /// consecutive (or independent) stimulus segments: per-net counters
    /// and residencies add, durations add, and toggle windows concatenate
    /// in order.
    ///
    /// The operation is associative, and folding partial activities in
    /// segment order reproduces the counters a single serial run over the
    /// concatenated stimulus would produce (each segment restarts from an
    /// all-`X` state, so segment-boundary transitions may differ by the
    /// initialisation transients — counts, not orderings). This is the
    /// reduction behind parallel vector-group simulation.
    ///
    /// # Panics
    ///
    /// Panics if the two records disagree on net count or window width.
    #[must_use]
    pub fn merge(&self, other: &Activity) -> Activity {
        assert_eq!(
            self.nets.len(),
            other.nets.len(),
            "merging activities of different designs"
        );
        assert_eq!(
            self.window_ps, other.window_ps,
            "merging activities with different window widths"
        );
        let nets = self
            .nets
            .iter()
            .zip(&other.nets)
            .map(|(a, b)| NetActivity {
                toggles: a.toggles + b.toggles,
                unknown_transitions: a.unknown_transitions + b.unknown_transitions,
                time_high_ps: a.time_high_ps + b.time_high_ps,
                time_low_ps: a.time_low_ps + b.time_low_ps,
                time_unknown_ps: a.time_unknown_ps + b.time_unknown_ps,
            })
            .collect();
        let mut window_toggles =
            Vec::with_capacity(self.window_toggles.len() + other.window_toggles.len());
        window_toggles.extend_from_slice(&self.window_toggles);
        window_toggles.extend_from_slice(&other.window_toggles);
        Activity {
            duration_ps: self.duration_ps + other.duration_ps,
            nets,
            window_ps: self.window_ps,
            window_toggles,
        }
    }

    /// Folds a sequence of partial activities with [`Activity::merge`] in
    /// order; `None` when the iterator is empty.
    pub fn merge_all<'a, I>(parts: I) -> Option<Activity>
    where
        I: IntoIterator<Item = &'a Activity>,
    {
        let mut it = parts.into_iter();
        let first = it.next()?.clone();
        Some(it.fold(first, |acc, p| acc.merge(p)))
    }

    /// Assembles a record from externally accumulated per-net counters —
    /// the bulk path for engines that keep their own net-major statistics
    /// (e.g. the bit-parallel simulator) instead of streaming changes
    /// through an [`ActivityBuilder`].
    ///
    /// The caller guarantees the counters describe one run of
    /// `duration_ps` picoseconds per net (residencies sum to the
    /// duration). `window_toggles` is padded to the bin count the
    /// equivalent builder stream would have produced; pass an empty
    /// vector when `window_ps` is `None`.
    pub fn from_parts(
        duration_ps: u64,
        nets: Vec<NetActivity>,
        window_ps: Option<u64>,
        mut window_toggles: Vec<u64>,
    ) -> Self {
        if let Some(w) = window_ps {
            let want = (duration_ps as f64 / w as f64).ceil() as usize;
            if window_toggles.len() < want {
                window_toggles.resize(want, 0);
            }
        }
        Activity {
            duration_ps,
            nets,
            window_ps,
            window_toggles,
        }
    }

    /// Rebuilds an activity record from a parsed VCD — the paper's
    /// Modelsim → Primetime-PX hand-off, in which the power tool never
    /// sees the simulator, only its dump.
    ///
    /// `end_ps` closes the record (residency is credited up to it);
    /// `window_ps` optionally enables Fig. 7-style windowing.
    pub fn from_vcd(dump: &VcdDump, end_ps: u64, window_ps: Option<u64>) -> Self {
        let mut b = ActivityBuilder::new(dump.names.len(), window_ps);
        for ch in &dump.changes {
            b.record(ch.time_ps, ch.var, ch.value);
        }
        b.finish(end_ps)
    }
}

/// Streams value changes into an [`Activity`].
///
/// The builder assumes (and the simulator guarantees) non-decreasing
/// timestamps.
#[derive(Debug, Clone)]
pub struct ActivityBuilder {
    last_value: Vec<scpg_liberty::Logic>,
    last_time: Vec<u64>,
    nets: Vec<NetActivity>,
    window_ps: Option<u64>,
    window_toggles: Vec<u64>,
}

impl ActivityBuilder {
    /// Starts recording `num_nets` nets; `window_ps` enables windowed
    /// toggle binning.
    pub fn new(num_nets: usize, window_ps: Option<u64>) -> Self {
        Self {
            last_value: vec![scpg_liberty::Logic::X; num_nets],
            last_time: vec![0; num_nets],
            nets: vec![NetActivity::default(); num_nets],
            window_ps,
            window_toggles: Vec::new(),
        }
    }

    fn credit_residency(&mut self, net: usize, until_ps: u64) {
        let dt = until_ps.saturating_sub(self.last_time[net]);
        if dt == 0 {
            return;
        }
        let rec = &mut self.nets[net];
        match self.last_value[net] {
            scpg_liberty::Logic::One => rec.time_high_ps += dt,
            scpg_liberty::Logic::Zero => rec.time_low_ps += dt,
            _ => rec.time_unknown_ps += dt,
        }
        self.last_time[net] = until_ps;
    }

    /// Records that `net` changed to `value` at `time_ps`.
    ///
    /// # Panics
    ///
    /// Panics if `net` is out of range.
    pub fn record(&mut self, time_ps: u64, net: usize, value: scpg_liberty::Logic) {
        let prev = self.last_value[net];
        if prev == value {
            return;
        }
        self.credit_residency(net, time_ps);
        self.last_value[net] = value;
        let rec = &mut self.nets[net];
        let known_flip = prev.is_known() && value.is_known();
        if known_flip {
            rec.toggles += 1;
            if let Some(w) = self.window_ps {
                let idx = (time_ps / w) as usize;
                if self.window_toggles.len() <= idx {
                    self.window_toggles.resize(idx + 1, 0);
                }
                self.window_toggles[idx] += 1;
            }
        } else {
            rec.unknown_transitions += 1;
        }
    }

    /// Closes the run at `end_ps` and returns the activity record.
    pub fn finish(mut self, end_ps: u64) -> Activity {
        for net in 0..self.nets.len() {
            self.credit_residency(net, end_ps);
        }
        if let Some(w) = self.window_ps {
            let want = (end_ps as f64 / w as f64).ceil() as usize;
            if self.window_toggles.len() < want {
                self.window_toggles.resize(want, 0);
            }
        }
        Activity {
            duration_ps: end_ps,
            nets: self.nets,
            window_ps: self.window_ps,
            window_toggles: self.window_toggles,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use scpg_liberty::Logic;

    #[test]
    fn residency_and_toggles_accumulate() {
        let mut b = ActivityBuilder::new(1, None);
        b.record(0, 0, Logic::Zero);
        b.record(400, 0, Logic::One);
        b.record(1_000, 0, Logic::Zero);
        let act = b.finish(2_000);
        let n = act.net(0);
        assert_eq!(n.toggles, 2);
        assert_eq!(n.time_high_ps, 600);
        assert_eq!(n.time_low_ps, 400 + 1_000);
        assert_eq!(n.time_unknown_ps, 0);
        assert!((n.high_fraction() - 0.3).abs() < 1e-12);
    }

    #[test]
    fn unknown_transitions_do_not_count_as_toggles() {
        let mut b = ActivityBuilder::new(1, None);
        b.record(0, 0, Logic::Zero);
        b.record(100, 0, Logic::X); // power gated
        b.record(200, 0, Logic::One); // restored
        let act = b.finish(300);
        let n = act.net(0);
        assert_eq!(n.toggles, 0);
        // Initial X→0, 0→X at 100, X→1 at 200.
        assert_eq!(n.unknown_transitions, 3);
        assert_eq!(n.time_unknown_ps, 100);
    }

    #[test]
    fn duplicate_values_are_ignored() {
        let mut b = ActivityBuilder::new(1, None);
        b.record(0, 0, Logic::One);
        b.record(50, 0, Logic::One);
        let act = b.finish(100);
        // Initial X→1 is an unknown transition; the repeat is dropped.
        assert_eq!(act.net(0).unknown_transitions, 1);
        assert_eq!(act.net(0).toggles, 0);
    }

    #[test]
    fn switching_probability_normalises() {
        let mut b = ActivityBuilder::new(2, None);
        b.record(0, 0, Logic::Zero);
        b.record(0, 1, Logic::Zero);
        // Net 0 toggles every cycle (10 cycles of 1 000 ps), net 1 never.
        for cyc in 0..10u64 {
            let v = if cyc % 2 == 0 {
                Logic::One
            } else {
                Logic::Zero
            };
            b.record(cyc * 1_000 + 500, 0, v);
        }
        let act = b.finish(10_000);
        let p = act.switching_probability(1_000);
        assert!(
            (p - 0.5).abs() < 1e-12,
            "10 toggles / 2 nets / 10 cycles, got {p}"
        );
    }

    #[test]
    fn windows_bin_by_time() {
        let mut b = ActivityBuilder::new(1, Some(1_000));
        b.record(0, 0, Logic::Zero);
        b.record(100, 0, Logic::One);
        b.record(200, 0, Logic::Zero);
        b.record(1_100, 0, Logic::One);
        let act = b.finish(3_000);
        assert_eq!(act.window_toggles(), &[2, 1, 0]);
        let probs = act.window_switching_probabilities(500);
        assert_eq!(probs.len(), 3);
        assert!(
            (probs[0] - 1.0).abs() < 1e-12,
            "2 toggles / 1 net / 2 cycles"
        );
    }

    #[test]
    fn empty_run_is_well_defined() {
        let act = ActivityBuilder::new(0, None).finish(0);
        assert_eq!(act.total_toggles(), 0);
        assert_eq!(act.switching_probability(1_000), 0.0);
    }

    #[test]
    fn merge_sums_counters_and_concatenates_windows() {
        let seg = |toggle_at: u64| {
            let mut b = ActivityBuilder::new(2, Some(1_000));
            b.record(0, 0, Logic::Zero);
            b.record(toggle_at, 0, Logic::One);
            b.record(0, 1, Logic::One);
            b.finish(2_000)
        };
        let a = seg(100);
        let b = seg(1_500);
        let m = a.merge(&b);
        assert_eq!(m.duration_ps(), 4_000);
        assert_eq!(m.net(0).toggles, 2);
        assert_eq!(
            m.net(0).time_high_ps,
            a.net(0).time_high_ps + b.net(0).time_high_ps
        );
        assert_eq!(m.net(1).unknown_transitions, 2);
        assert_eq!(m.window_toggles(), &[1, 0, 0, 1]);
    }

    #[test]
    fn merge_is_associative() {
        let seg = |t: u64| {
            let mut b = ActivityBuilder::new(1, Some(500));
            b.record(0, 0, Logic::Zero);
            b.record(t, 0, Logic::One);
            b.finish(1_000)
        };
        let (a, b, c) = (seg(100), seg(300), seg(700));
        let left = a.merge(&b).merge(&c);
        let right = a.merge(&b.merge(&c));
        assert_eq!(left, right);
        assert_eq!(Activity::merge_all([&a, &b, &c]).unwrap(), left);
        assert!(Activity::merge_all(std::iter::empty()).is_none());
    }

    #[test]
    #[should_panic(expected = "different designs")]
    fn merge_rejects_mismatched_net_counts() {
        let a = ActivityBuilder::new(1, None).finish(10);
        let b = ActivityBuilder::new(2, None).finish(10);
        let _ = a.merge(&b);
    }

    #[test]
    fn vcd_round_trip_reproduces_activity() {
        // Build activity directly AND through a VCD; both must agree.
        let mut direct = ActivityBuilder::new(2, Some(1_000));
        let mut vcd = crate::vcd::VcdWriter::new("t", &["a", "b"]);
        let changes = [
            (0u64, 0usize, Logic::Zero),
            (0, 1, Logic::One),
            (250, 0, Logic::One),
            (900, 1, Logic::Zero),
            (1_500, 0, Logic::Zero),
            (1_600, 0, Logic::X),
        ];
        for &(t, n, v) in &changes {
            direct.record(t, n, v);
            vcd.change(t, n, v);
        }
        let from_direct = direct.finish(2_000);
        let dump = crate::vcd::parse_vcd(&vcd.finish(2_000)).unwrap();
        let from_vcd = Activity::from_vcd(&dump, 2_000, Some(1_000));
        assert_eq!(from_direct, from_vcd);
        assert_eq!(from_vcd.total_toggles(), 3);
        assert_eq!(from_vcd.window_toggles(), &[2, 1]);
    }
}
