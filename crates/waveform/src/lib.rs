//! Waveforms and switching activity.
//!
//! The paper's power methodology (§III-B) is: simulate the netlist in
//! Modelsim, dump a **VCD** of every net, then feed windowed switching
//! activity to the power tool. This crate provides both halves:
//!
//! * [`VcdWriter`] / [`parse_vcd`] — a value-change-dump writer and a
//!   parser for the subset it emits (enough to round-trip gate-level
//!   activity);
//! * [`Activity`] — per-net toggle counts and state residency over a run,
//!   optionally binned into fixed windows ([`Activity::window_toggles`])
//!   to reproduce the per-10-vector switching-probability plot (Fig. 7).
//!
//! Times are integer picoseconds throughout, matching the simulator.
//!
//! # Example
//!
//! ```
//! use scpg_waveform::ActivityBuilder;
//!
//! let mut b = ActivityBuilder::new(2, Some(1_000)); // 2 nets, 1 ns windows
//! b.record(0, 0, scpg_liberty::Logic::Zero);
//! b.record(500, 0, scpg_liberty::Logic::One);   // toggle at 0.5 ns
//! b.record(1_500, 0, scpg_liberty::Logic::Zero); // toggle at 1.5 ns
//! let act = b.finish(2_000);
//! assert_eq!(act.net(0).toggles, 2);
//! assert_eq!(act.window_toggles(), &[1, 1]);
//! ```

#![warn(missing_docs)]

mod activity;
mod vcd;

pub use activity::{Activity, ActivityBuilder, NetActivity};
pub use vcd::{parse_vcd, VcdChange, VcdDump, VcdWriter};
