//! Checkpointed asynchronous job manager.
//!
//! A job is a long-running analysis request (sweep / table / variation)
//! split into bounded **chunks** so batch work shares a worker pool with
//! interactive requests without starving them.  The manager itself is
//! execution-agnostic: the embedding layer supplies a [`ChunkExecutor`]
//! that knows how to plan a request into work units, evaluate a window of
//! units into JSON fragments, and assemble the fragments into the final
//! response body.  That inversion keeps this crate free of any dependency
//! on the HTTP layer while letting the HTTP layer guarantee that an
//! assembled job result is byte-identical to the equivalent interactive
//! response.
//!
//! After every chunk the job record (spec, progress, fragments) is
//! checkpointed through the [`Store`]; a restarted process calls
//! [`JobManager::resumable`] and re-dispatches unfinished jobs, which
//! continue from their last completed chunk.  Cancellation is
//! cooperative: it flips the state between chunks, and a chunk already
//! executing discards its output when it lands on a cancelled job.

use std::collections::HashMap;
use std::fmt;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Mutex, OnceLock};
use std::time::Instant;

use scpg_json::Json;
use scpg_trace::TraceStore;

use crate::store::Store;

/// Namespace job records persist under.
pub const NS_JOBS: &str = "jobs";

/// Lifecycle of a job.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum JobState {
    /// Accepted, waiting for its next chunk to be scheduled.
    Queued,
    /// A chunk is currently executing.
    Running,
    /// Cancelled by the client; no further chunks will run.
    Cancelled,
    /// A chunk or assembly failed; `error` holds the reason.
    Failed,
    /// All chunks completed and the result is assembled.
    Done,
}

impl JobState {
    /// Stable wire/persistence name.
    pub fn key(self) -> &'static str {
        match self {
            JobState::Queued => "queued",
            JobState::Running => "running",
            JobState::Cancelled => "cancelled",
            JobState::Failed => "failed",
            JobState::Done => "done",
        }
    }

    fn from_key(key: &str) -> Option<Self> {
        Some(match key {
            "queued" => JobState::Queued,
            "running" => JobState::Running,
            "cancelled" => JobState::Cancelled,
            "failed" => JobState::Failed,
            "done" => JobState::Done,
            _ => return None,
        })
    }

    /// True for states that will never change again.
    pub fn is_terminal(self) -> bool {
        matches!(
            self,
            JobState::Cancelled | JobState::Failed | JobState::Done
        )
    }
}

/// What a job is asked to do: an endpoint kind plus its canonicalized
/// request object (exactly what the interactive endpoint would receive).
#[derive(Debug, Clone)]
pub struct JobSpec {
    /// Endpoint kind: `"sweep"`, `"table"` or `"variation"`.
    pub kind: String,
    /// The request body, canonicalized.
    pub request: Json,
}

/// Supplied by the embedding layer; pure with respect to the manager.
pub trait ChunkExecutor: Send + Sync {
    /// Validates `spec` and returns the total number of work units
    /// (e.g. sweep points or table rows). Must be ≥ 1 on success.
    fn plan(&self, spec: &JobSpec) -> Result<usize, String>;

    /// Evaluates units `[start, start + count)` into one JSON fragment
    /// per unit. Deterministic: the same window always yields the same
    /// fragments, which is what makes resume-from-checkpoint exact.
    fn execute(&self, spec: &JobSpec, start: usize, count: usize) -> Result<Vec<Json>, String>;

    /// Assembles the full ordered fragment list into the final response
    /// body (must be byte-identical to the interactive endpoint's body
    /// for the same request).
    fn assemble(&self, spec: &JobSpec, fragments: &[Json]) -> Result<Vec<u8>, String>;
}

/// Admission and chunking limits.
#[derive(Debug, Clone, Copy)]
pub struct JobLimits {
    /// Maximum jobs in a non-terminal state at once.
    pub max_active_jobs: usize,
    /// Maximum job records retained (terminal jobs are evicted
    /// oldest-first past this).
    pub max_stored_jobs: usize,
    /// Work units per chunk when the client does not choose.
    pub default_chunk_units: usize,
    /// Upper bound on client-chosen chunk size.
    pub max_chunk_units: usize,
}

impl Default for JobLimits {
    fn default() -> Self {
        JobLimits {
            max_active_jobs: 8,
            max_stored_jobs: 256,
            default_chunk_units: 4,
            max_chunk_units: 64,
        }
    }
}

/// Why a submission was refused.
#[derive(Debug)]
pub enum SubmitError {
    /// The executor rejected the spec (bad request).
    Refused(String),
    /// Too many active jobs.
    Busy {
        /// Jobs currently active.
        active: usize,
        /// Configured ceiling.
        limit: usize,
    },
}

impl fmt::Display for SubmitError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            SubmitError::Refused(msg) => write!(f, "job refused: {msg}"),
            SubmitError::Busy { active, limit } => {
                write!(f, "too many active jobs ({active}/{limit})")
            }
        }
    }
}

impl std::error::Error for SubmitError {}

/// Outcome of running one chunk.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ChunkRun {
    /// More chunks remain; re-dispatch the job.
    More,
    /// The job reached a terminal state (done, failed or cancelled).
    Finished,
    /// No such job (evicted or never existed).
    Gone,
}

/// Outcome of a cancellation request.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum CancelOutcome {
    /// The job was active and is now cancelled.
    Cancelled,
    /// The job had already reached this terminal state.
    AlreadyTerminal(JobState),
    /// No such job.
    Gone,
}

/// Timing record of one completed chunk, persisted with the job so a
/// restarted server can replay the prior incarnation's spans into its
/// trace store.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ChunkMark {
    /// Zero-based chunk index (`done-units-before / chunk_units`).
    pub index: u64,
    /// Work units the chunk evaluated.
    pub units: u64,
    /// Microseconds from this job's (incarnation-local) start to the
    /// chunk's start.
    pub offset_us: u64,
    /// Chunk execution time in microseconds.
    pub duration_us: u64,
    /// Boot id of the server incarnation that ran the chunk.
    pub boot: String,
}

impl ChunkMark {
    fn record(&self) -> Json {
        Json::object([
            ("index", Json::from(self.index)),
            ("units", Json::from(self.units)),
            ("offset_us", Json::from(self.offset_us)),
            ("duration_us", Json::from(self.duration_us)),
            ("boot", Json::from(self.boot.as_str())),
        ])
    }

    fn from_record(record: &Json) -> Option<ChunkMark> {
        Some(ChunkMark {
            index: record.get("index")?.as_u64()?,
            units: record.get("units")?.as_u64()?,
            offset_us: record.get("offset_us")?.as_u64()?,
            duration_us: record.get("duration_us")?.as_u64()?,
            boot: record.get("boot")?.as_str()?.to_string(),
        })
    }
}

struct JobEntry {
    spec: JobSpec,
    chunk_units: usize,
    total_units: usize,
    done_units: usize,
    fragments: Vec<Json>,
    state: JobState,
    error: Option<String>,
    result: Option<Arc<Vec<u8>>>,
    /// Monotone admission order, used for oldest-first eviction.
    admitted: u64,
    /// The request's trace id; survives checkpoints and restarts.
    trace_id: String,
    /// Per-chunk timing, in completion order.
    chunks: Vec<ChunkMark>,
    /// When this incarnation first saw the job (admission or reload);
    /// anchors chunk offsets. Not persisted.
    started: Instant,
}

impl JobEntry {
    fn record(&self, id: &str) -> Json {
        let mut fields = vec![
            ("id".to_string(), Json::from(id)),
            ("kind".to_string(), Json::from(self.spec.kind.as_str())),
            ("request".to_string(), self.spec.request.clone()),
            ("chunk_units".to_string(), Json::from(self.chunk_units)),
            ("total_units".to_string(), Json::from(self.total_units)),
            ("done_units".to_string(), Json::from(self.done_units)),
            // `Running` is an in-memory condition; on disk an unfinished
            // job is always `queued` so a restart re-dispatches it.
            (
                "state".to_string(),
                Json::from(if self.state == JobState::Running {
                    JobState::Queued.key()
                } else {
                    self.state.key()
                }),
            ),
            ("fragments".to_string(), Json::Arr(self.fragments.clone())),
            ("trace_id".to_string(), Json::from(self.trace_id.as_str())),
            (
                "chunks".to_string(),
                Json::Arr(self.chunks.iter().map(ChunkMark::record).collect()),
            ),
        ];
        if let Some(err) = &self.error {
            fields.push(("error".to_string(), Json::from(err.as_str())));
        }
        if let Some(result) = &self.result {
            // Result bodies are UTF-8 JSON text; persisting them as a
            // string keeps the record a single self-contained document.
            fields.push((
                "result".to_string(),
                Json::from(String::from_utf8_lossy(result).into_owned()),
            ));
        }
        Json::Obj(fields)
    }

    fn from_record(record: &Json, admitted: u64) -> Option<JobEntry> {
        let kind = record.get("kind")?.as_str()?.to_string();
        let request = record.get("request")?.clone();
        let chunk_units = record.get("chunk_units")?.as_u64()? as usize;
        let total_units = record.get("total_units")?.as_u64()? as usize;
        let done_units = record.get("done_units")?.as_u64()? as usize;
        let state = JobState::from_key(record.get("state")?.as_str()?)?;
        let fragments = record.get("fragments")?.as_array()?.to_vec();
        if done_units != fragments.len() && state != JobState::Done {
            return None;
        }
        let error = record
            .get("error")
            .and_then(Json::as_str)
            .map(str::to_string);
        let result = record
            .get("result")
            .and_then(Json::as_str)
            .map(|s| Arc::new(s.as_bytes().to_vec()));
        if state == JobState::Done && result.is_none() {
            return None;
        }
        // Records written before tracing existed lack these fields; a
        // fresh id keeps the job addressable without invalidating it.
        let trace_id = record
            .get("trace_id")
            .and_then(Json::as_str)
            .map(str::to_string)
            .unwrap_or_else(scpg_trace::generate_trace_id);
        let chunks = record
            .get("chunks")
            .and_then(Json::as_array)
            .map(|arr| arr.iter().filter_map(ChunkMark::from_record).collect())
            .unwrap_or_default();
        Some(JobEntry {
            spec: JobSpec { kind, request },
            chunk_units: chunk_units.max(1),
            total_units,
            done_units,
            fragments,
            state,
            error,
            result,
            admitted,
            trace_id,
            chunks,
            started: Instant::now(),
        })
    }

    /// Total chunk count for this job's chunk size.
    fn chunks_total(&self) -> u64 {
        (self.total_units as u64).div_ceil(self.chunk_units as u64)
    }
}

/// The `key=value` annotations attached to a chunk's trace span.
fn chunk_annotations(job_id: &str, mark: &ChunkMark, chunks_total: u64) -> Vec<(String, String)> {
    vec![
        ("job".to_string(), job_id.to_string()),
        (
            "chunk".to_string(),
            format!("{}/{chunks_total}", mark.index),
        ),
        ("units".to_string(), mark.units.to_string()),
        ("boot".to_string(), mark.boot.clone()),
    ]
}

/// Owns job state, scheduling bookkeeping and checkpoint persistence.
pub struct JobManager {
    store: Arc<Store>,
    limits: JobLimits,
    executor: Arc<dyn ChunkExecutor>,
    jobs: Mutex<HashMap<String, JobEntry>>,
    seq: AtomicU64,
    admissions: AtomicU64,
    /// Optional trace sink: `(store, boot id)`. Set once by the
    /// embedding layer; chunk completions then emit trace spans.
    tracing: OnceLock<(Arc<TraceStore>, String)>,
    /// Optional wide-event sink. Set once by the embedding layer; each
    /// completed chunk then emits one event alongside its trace span.
    events: OnceLock<Arc<scpg_trace::EventLog>>,
}

impl JobManager {
    /// Opens the manager, reloading every persisted job record.
    /// Records that fail to decode are skipped with a warning.
    pub fn open(store: Arc<Store>, limits: JobLimits, executor: Arc<dyn ChunkExecutor>) -> Self {
        let mut jobs = HashMap::new();
        let mut max_seq = 0u64;
        let mut admitted = 0u64;
        for id in store.list(NS_JOBS).unwrap_or_default() {
            let record = match store.get_record(NS_JOBS, &id) {
                Ok(Some(r)) => r,
                Ok(None) => continue,
                Err(e) => {
                    eprintln!("scpg-jobs: skipping persisted job {id}: {e}");
                    continue;
                }
            };
            let Some(entry) = JobEntry::from_record(&record, admitted) else {
                eprintln!("scpg-jobs: skipping malformed job record {id}");
                continue;
            };
            if let Some(n) = id.strip_prefix('j').and_then(|s| s.parse::<u64>().ok()) {
                max_seq = max_seq.max(n);
            }
            admitted += 1;
            jobs.insert(id, entry);
        }
        JobManager {
            store,
            limits,
            executor,
            jobs: Mutex::new(jobs),
            seq: AtomicU64::new(max_seq + 1),
            admissions: AtomicU64::new(admitted),
            tracing: OnceLock::new(),
            events: OnceLock::new(),
        }
    }

    /// Attaches a trace store and this server incarnation's boot id.
    /// Chunk completions from now on emit `chunk` spans under the job's
    /// trace id, and every already-loaded job's persisted chunk marks
    /// are replayed into the store — so after a restart,
    /// `GET /v1/traces/{id}` shows the prior incarnation's chunks (their
    /// original `boot` annotation intact) alongside the new ones.
    /// Subsequent calls are ignored.
    pub fn attach_tracing(&self, traces: Arc<TraceStore>, boot_id: &str) {
        if self
            .tracing
            .set((Arc::clone(&traces), boot_id.to_string()))
            .is_err()
        {
            return;
        }
        let jobs = self.jobs.lock().unwrap();
        let mut ids: Vec<_> = jobs.keys().collect();
        ids.sort();
        for id in ids {
            let entry = &jobs[id];
            for mark in &entry.chunks {
                traces.record_at(
                    &entry.trace_id,
                    "job",
                    "chunk",
                    mark.offset_us,
                    mark.duration_us,
                    chunk_annotations(id, mark, entry.chunks_total()),
                );
            }
        }
    }

    /// Attaches a wide-event log. Chunk completions from now on emit
    /// one [`scpg_trace::WideEvent`] each (kind `"chunk"`, endpoint
    /// `"job"`) under the job's trace id, so batch work shows up in
    /// `GET /v1/logs` next to interactive requests. Unlike
    /// [`JobManager::attach_tracing`], persisted chunks are *not*
    /// replayed: the event log is an operational stream of work done by
    /// this process incarnation, not a historical record. Subsequent
    /// calls are ignored.
    pub fn attach_event_log(&self, events: Arc<scpg_trace::EventLog>) {
        let _ = self.events.set(events);
    }

    /// Emits one chunk wide event if an event log is attached.
    #[allow(clippy::too_many_arguments)]
    fn log_chunk_event(
        &self,
        id: &str,
        trace_id: &str,
        status: u16,
        index: u64,
        chunks_total: u64,
        units: u64,
        duration_us: u64,
        worker_cpu_us: u64,
    ) {
        let Some(events) = self.events.get() else {
            return;
        };
        let mut event = scpg_trace::WideEvent::new("chunk", "job", status);
        event.trace_id = trace_id.to_string();
        event.total_us = duration_us;
        event.execute_us = duration_us;
        event.worker_cpu_us = worker_cpu_us;
        event.fields = vec![
            ("job".to_string(), id.to_string()),
            ("chunk".to_string(), format!("{index}/{chunks_total}")),
            ("units".to_string(), units.to_string()),
            (
                "boot".to_string(),
                self.tracing
                    .get()
                    .map(|(_, boot)| boot.clone())
                    .unwrap_or_default(),
            ),
        ];
        events.record(event);
    }

    /// Emits one chunk span if a trace sink is attached.
    fn trace_chunk(&self, id: &str, trace_id: &str, mark: &ChunkMark, chunks_total: u64) {
        if let Some((traces, _)) = self.tracing.get() {
            traces.record_at(
                trace_id,
                "job",
                "chunk",
                mark.offset_us,
                mark.duration_us,
                chunk_annotations(id, mark, chunks_total),
            );
        }
    }

    /// The limits this manager enforces.
    pub fn limits(&self) -> JobLimits {
        self.limits
    }

    fn persist(&self, id: &str, entry: &JobEntry) {
        if let Err(e) = self.store.put_record(NS_JOBS, id, &entry.record(id)) {
            // The in-memory job is still correct; only crash recovery is
            // degraded. Serving must not fail because a disk write did.
            eprintln!("scpg-jobs: checkpoint write failed for {id}: {e}");
        }
    }

    /// Validates and admits a job. Returns `(job id, total units)`.
    /// `trace_id` is the submitting request's trace context (persisted
    /// with the job, so chunk spans land under it across restarts); pass
    /// `None` to generate a fresh id.
    pub fn submit(
        &self,
        kind: &str,
        request: Json,
        chunk_units: Option<usize>,
        trace_id: Option<&str>,
    ) -> Result<(String, usize), SubmitError> {
        let spec = JobSpec {
            kind: kind.to_string(),
            request,
        };
        let total_units = self.executor.plan(&spec).map_err(SubmitError::Refused)?;
        let chunk_units = chunk_units
            .unwrap_or(self.limits.default_chunk_units)
            .clamp(1, self.limits.max_chunk_units);
        let mut jobs = self.jobs.lock().unwrap();
        let active = jobs.values().filter(|j| !j.state.is_terminal()).count();
        if active >= self.limits.max_active_jobs {
            return Err(SubmitError::Busy {
                active,
                limit: self.limits.max_active_jobs,
            });
        }
        // Keep the record table bounded: evict the oldest terminal jobs.
        while jobs.len() >= self.limits.max_stored_jobs {
            let oldest = jobs
                .iter()
                .filter(|(_, j)| j.state.is_terminal())
                .min_by_key(|(_, j)| j.admitted)
                .map(|(id, _)| id.clone());
            match oldest {
                Some(id) => {
                    jobs.remove(&id);
                }
                None => {
                    // Everything stored is active — refuse rather than
                    // dropping live work (can only happen when
                    // max_stored_jobs < max_active_jobs).
                    return Err(SubmitError::Busy {
                        active,
                        limit: self.limits.max_active_jobs,
                    });
                }
            }
        }
        let id = format!("j{:08}", self.seq.fetch_add(1, Ordering::Relaxed));
        let entry = JobEntry {
            spec,
            chunk_units,
            total_units,
            done_units: 0,
            fragments: Vec::new(),
            state: JobState::Queued,
            error: None,
            result: None,
            admitted: self.admissions.fetch_add(1, Ordering::Relaxed),
            trace_id: trace_id
                .map(str::to_string)
                .unwrap_or_else(scpg_trace::generate_trace_id),
            chunks: Vec::new(),
            started: Instant::now(),
        };
        self.persist(&id, &entry);
        jobs.insert(id.clone(), entry);
        Ok((id, total_units))
    }

    /// Runs the next chunk of `id` on the calling thread and checkpoints
    /// the outcome. The caller re-dispatches the job while this returns
    /// [`ChunkRun::More`]. Only one caller may run a given job at a time
    /// (the embedding layer's single batch token per job guarantees it).
    pub fn run_chunk(&self, id: &str) -> ChunkRun {
        let (spec, start, count) = {
            let mut jobs = self.jobs.lock().unwrap();
            let Some(entry) = jobs.get_mut(id) else {
                return ChunkRun::Gone;
            };
            if entry.state.is_terminal() {
                return ChunkRun::Finished;
            }
            entry.state = JobState::Running;
            let start = entry.done_units;
            let count = entry.chunk_units.min(entry.total_units - start);
            (entry.spec.clone(), start, count)
        };

        // Execute outside the lock: chunks are CPU-heavy and status
        // queries must never block behind them.
        let span = scpg_trace::Span::on(scpg_trace::job_stage("chunk"));
        let cpu_before = scpg_trace::thread_cpu_time();
        let outcome = self.executor.execute(&spec, start, count);
        let chunk_cpu_us =
            scpg_trace::duration_us(scpg_trace::thread_cpu_time().saturating_sub(cpu_before));
        let chunk_duration = span.finish();

        let mut jobs = self.jobs.lock().unwrap();
        let Some(entry) = jobs.get_mut(id) else {
            return ChunkRun::Gone;
        };
        if entry.state == JobState::Cancelled {
            // Cancel raced the chunk: drop the output, keep the
            // cancelled checkpoint authoritative.
            self.persist(id, entry);
            return ChunkRun::Finished;
        }
        match outcome {
            Err(msg) => {
                entry.state = JobState::Failed;
                entry.error = Some(msg);
                self.log_chunk_event(
                    id,
                    &entry.trace_id,
                    500,
                    (start / entry.chunk_units) as u64,
                    entry.chunks_total(),
                    count as u64,
                    scpg_trace::duration_us(chunk_duration),
                    chunk_cpu_us,
                );
                self.persist(id, entry);
                ChunkRun::Finished
            }
            Ok(fragments) => {
                entry.fragments.extend(fragments);
                entry.done_units = (start + count).min(entry.total_units);
                let dur_us = scpg_trace::duration_us(chunk_duration);
                let mark = ChunkMark {
                    index: (start / entry.chunk_units) as u64,
                    units: count as u64,
                    offset_us: scpg_trace::duration_us(entry.started.elapsed())
                        .saturating_sub(dur_us),
                    duration_us: dur_us,
                    boot: self
                        .tracing
                        .get()
                        .map(|(_, boot)| boot.clone())
                        .unwrap_or_default(),
                };
                self.trace_chunk(id, &entry.trace_id, &mark, entry.chunks_total());
                self.log_chunk_event(
                    id,
                    &entry.trace_id,
                    200,
                    mark.index,
                    entry.chunks_total(),
                    mark.units,
                    mark.duration_us,
                    chunk_cpu_us,
                );
                entry.chunks.push(mark);
                if entry.done_units < entry.total_units {
                    entry.state = JobState::Queued;
                    let _span = scpg_trace::Span::on(scpg_trace::job_stage("checkpoint"));
                    self.persist(id, entry);
                    ChunkRun::More
                } else {
                    let assembled = {
                        let _span = scpg_trace::Span::on(scpg_trace::job_stage("assemble"));
                        self.executor.assemble(&entry.spec, &entry.fragments)
                    };
                    match assembled {
                        Ok(body) => {
                            entry.state = JobState::Done;
                            entry.result = Some(Arc::new(body));
                        }
                        Err(msg) => {
                            entry.state = JobState::Failed;
                            entry.error = Some(msg);
                        }
                    }
                    self.persist(id, entry);
                    ChunkRun::Finished
                }
            }
        }
    }

    /// Cooperatively cancels `id`.
    pub fn cancel(&self, id: &str) -> CancelOutcome {
        let mut jobs = self.jobs.lock().unwrap();
        let Some(entry) = jobs.get_mut(id) else {
            return CancelOutcome::Gone;
        };
        if entry.state.is_terminal() {
            return CancelOutcome::AlreadyTerminal(entry.state);
        }
        entry.state = JobState::Cancelled;
        self.persist(id, entry);
        CancelOutcome::Cancelled
    }

    /// Force a non-terminal job into the `Failed` state. Used by callers
    /// whose chunk execution died outside [`run_chunk`] — e.g. a worker
    /// thread that caught a panic unwinding through the executor.
    pub fn fail(&self, id: &str, message: &str) {
        let mut jobs = self.jobs.lock().unwrap();
        let Some(entry) = jobs.get_mut(id) else {
            return;
        };
        if entry.state.is_terminal() {
            return;
        }
        entry.state = JobState::Failed;
        entry.error = Some(message.to_string());
        self.persist(id, entry);
    }

    /// Status document for `GET /v1/jobs/{id}`: state, progress, trace
    /// id, per-chunk timing, a rate-based ETA and (for unfinished jobs)
    /// the partial fragments computed so far.
    pub fn status(&self, id: &str) -> Option<Json> {
        let jobs = self.jobs.lock().unwrap();
        let entry = jobs.get(id)?;
        let percent = if entry.total_units == 0 {
            100.0
        } else {
            (entry.done_units as f64 / entry.total_units as f64) * 100.0
        };
        let chunks_total = entry.chunks_total();
        let mut fields = vec![
            ("id".to_string(), Json::from(id)),
            ("kind".to_string(), Json::from(entry.spec.kind.as_str())),
            ("state".to_string(), Json::from(entry.state.key())),
            ("total_units".to_string(), Json::from(entry.total_units)),
            ("done_units".to_string(), Json::from(entry.done_units)),
            ("percent".to_string(), Json::from(percent)),
            (
                "result_ready".to_string(),
                Json::from(entry.state == JobState::Done),
            ),
            ("trace_id".to_string(), Json::from(entry.trace_id.as_str())),
            ("chunks_total".to_string(), Json::from(chunks_total)),
            (
                "chunks_completed".to_string(),
                Json::from(entry.chunks.len()),
            ),
            (
                "chunks".to_string(),
                Json::Arr(
                    entry
                        .chunks
                        .iter()
                        .map(|m| {
                            Json::object([
                                ("index", Json::from(m.index)),
                                ("units", Json::from(m.units)),
                                ("duration_us", Json::from(m.duration_us)),
                            ])
                        })
                        .collect(),
                ),
            ),
        ];
        // Rate-based ETA: mean observed chunk time × chunks remaining.
        // Only meaningful while the job is live and has a rate sample.
        if !entry.state.is_terminal() && !entry.chunks.is_empty() {
            let mean_us =
                entry.chunks.iter().map(|m| m.duration_us).sum::<u64>() / entry.chunks.len() as u64;
            let remaining = chunks_total.saturating_sub(entry.chunks.len() as u64);
            fields.push((
                "eta_ms".to_string(),
                Json::from((mean_us * remaining) as f64 / 1e3),
            ));
        }
        if let Some(err) = &entry.error {
            fields.push(("error".to_string(), Json::from(err.as_str())));
        }
        if !entry.state.is_terminal() && !entry.fragments.is_empty() {
            fields.push(("partial".to_string(), Json::Arr(entry.fragments.clone())));
        }
        Some(Json::Obj(fields))
    }

    /// Terminal result body for `GET /v1/jobs/{id}/result`.
    /// `Some((state, body))` — body is present only when `Done`.
    pub fn result(&self, id: &str) -> Option<(JobState, Option<Arc<Vec<u8>>>)> {
        let jobs = self.jobs.lock().unwrap();
        let entry = jobs.get(id)?;
        Some((entry.state, entry.result.clone()))
    }

    /// Summary list for `GET /v1/jobs`.
    pub fn summaries(&self) -> Vec<Json> {
        let jobs = self.jobs.lock().unwrap();
        let mut ids: Vec<_> = jobs.keys().cloned().collect();
        ids.sort();
        ids.iter()
            .map(|id| {
                let entry = &jobs[id];
                Json::object([
                    ("id", Json::from(id.as_str())),
                    ("kind", Json::from(entry.spec.kind.as_str())),
                    ("state", Json::from(entry.state.key())),
                    ("done_units", Json::from(entry.done_units)),
                    ("total_units", Json::from(entry.total_units)),
                ])
            })
            .collect()
    }

    /// Ids of jobs that need (re-)dispatching: every non-terminal job.
    /// Called once after [`JobManager::open`] to resume interrupted work.
    pub fn resumable(&self) -> Vec<String> {
        let jobs = self.jobs.lock().unwrap();
        let mut ids: Vec<_> = jobs
            .iter()
            .filter(|(_, j)| !j.state.is_terminal())
            .map(|(id, _)| id.clone())
            .collect();
        ids.sort();
        ids
    }

    /// Jobs in a non-terminal state right now.
    pub fn active_count(&self) -> usize {
        self.jobs
            .lock()
            .unwrap()
            .values()
            .filter(|j| !j.state.is_terminal())
            .count()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Toy executor: units are the integers 0..n from the request; each
    /// fragment is `i * 10`; assembly is the JSON array of fragments.
    struct Doubler;

    impl ChunkExecutor for Doubler {
        fn plan(&self, spec: &JobSpec) -> Result<usize, String> {
            let n = spec
                .request
                .get("n")
                .and_then(Json::as_u64)
                .ok_or("missing n")?;
            if n == 0 {
                return Err("n must be positive".to_string());
            }
            Ok(n as usize)
        }

        fn execute(
            &self,
            _spec: &JobSpec,
            start: usize,
            count: usize,
        ) -> Result<Vec<Json>, String> {
            Ok((start..start + count)
                .map(|i| Json::from(i as u64 * 10))
                .collect())
        }

        fn assemble(&self, _spec: &JobSpec, fragments: &[Json]) -> Result<Vec<u8>, String> {
            Ok(Json::Arr(fragments.to_vec()).write().into_bytes())
        }
    }

    fn manager_with(store: Arc<Store>, limits: JobLimits) -> JobManager {
        JobManager::open(store, limits, Arc::new(Doubler))
    }

    fn request(n: u64) -> Json {
        Json::object([("n", Json::from(n))])
    }

    #[test]
    fn job_runs_in_chunks_to_completion() {
        let mgr = manager_with(Arc::new(Store::memory()), JobLimits::default());
        let (id, total) = mgr.submit("sweep", request(10), Some(4), None).unwrap();
        assert_eq!(total, 10);
        // 10 units at 4/chunk: More, More, Finished.
        assert_eq!(mgr.run_chunk(&id), ChunkRun::More);
        let status = mgr.status(&id).unwrap();
        assert_eq!(status.get("done_units").and_then(Json::as_u64), Some(4));
        assert_eq!(status.get("percent").and_then(Json::as_f64), Some(40.0));
        assert_eq!(
            status
                .get("partial")
                .and_then(Json::as_array)
                .map(<[Json]>::len),
            Some(4)
        );
        assert_eq!(mgr.run_chunk(&id), ChunkRun::More);
        assert_eq!(mgr.run_chunk(&id), ChunkRun::Finished);
        let (state, body) = mgr.result(&id).unwrap();
        assert_eq!(state, JobState::Done);
        let body = String::from_utf8(body.unwrap().to_vec()).unwrap();
        assert_eq!(body, "[0,10,20,30,40,50,60,70,80,90]");
    }

    #[test]
    fn bad_and_excess_submissions_are_refused() {
        let mgr = manager_with(
            Arc::new(Store::memory()),
            JobLimits {
                max_active_jobs: 1,
                ..JobLimits::default()
            },
        );
        assert!(matches!(
            mgr.submit("sweep", request(0), None, None),
            Err(SubmitError::Refused(_))
        ));
        mgr.submit("sweep", request(5), None, None).unwrap();
        assert!(matches!(
            mgr.submit("sweep", request(5), None, None),
            Err(SubmitError::Busy {
                active: 1,
                limit: 1
            })
        ));
    }

    #[test]
    fn cancellation_sticks_even_when_racing_a_chunk() {
        let mgr = manager_with(Arc::new(Store::memory()), JobLimits::default());
        let (id, _) = mgr.submit("sweep", request(10), Some(2), None).unwrap();
        assert_eq!(mgr.run_chunk(&id), ChunkRun::More);
        assert_eq!(mgr.cancel(&id), CancelOutcome::Cancelled);
        // The in-flight/next chunk lands on a cancelled job: Finished,
        // no further progress recorded.
        assert_eq!(mgr.run_chunk(&id), ChunkRun::Finished);
        let status = mgr.status(&id).unwrap();
        assert_eq!(
            status.get("state").and_then(Json::as_str),
            Some("cancelled")
        );
        assert_eq!(status.get("done_units").and_then(Json::as_u64), Some(2));
        assert_eq!(
            mgr.cancel(&id),
            CancelOutcome::AlreadyTerminal(JobState::Cancelled)
        );
        assert_eq!(mgr.cancel("j99999999"), CancelOutcome::Gone);
    }

    #[test]
    fn interrupted_job_resumes_from_checkpoint_after_reopen() {
        let dir = std::env::temp_dir().join(format!("scpg-jobmgr-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        let store = Arc::new(Store::open(&dir).unwrap());
        let mgr = manager_with(Arc::clone(&store), JobLimits::default());
        let (id, _) = mgr.submit("sweep", request(9), Some(4), None).unwrap();
        assert_eq!(mgr.run_chunk(&id), ChunkRun::More); // 4/9 done, checkpointed
        drop(mgr);

        // "Restart": fresh manager over the same directory.
        let store = Arc::new(Store::open(&dir).unwrap());
        let mgr = manager_with(store, JobLimits::default());
        assert_eq!(mgr.resumable(), vec![id.clone()]);
        let status = mgr.status(&id).unwrap();
        assert_eq!(status.get("done_units").and_then(Json::as_u64), Some(4));
        assert_eq!(mgr.run_chunk(&id), ChunkRun::More);
        assert_eq!(mgr.run_chunk(&id), ChunkRun::Finished);
        let (state, body) = mgr.result(&id).unwrap();
        assert_eq!(state, JobState::Done);
        let body = String::from_utf8(body.unwrap().to_vec()).unwrap();
        // Byte-identical to an uninterrupted run.
        assert_eq!(body, "[0,10,20,30,40,50,60,70,80]");
        // New submissions continue the id sequence rather than reusing it.
        let (next_id, _) = mgr.submit("sweep", request(2), None, None).unwrap();
        assert!(next_id > id);
    }

    #[test]
    fn trace_id_and_chunk_marks_persist_and_replay_across_reopen() {
        let dir = std::env::temp_dir().join(format!("scpg-jobmgr-trace-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        let store = Arc::new(Store::open(&dir).unwrap());
        let mgr = manager_with(Arc::clone(&store), JobLimits::default());
        let traces1 = Arc::new(TraceStore::new(16));
        mgr.attach_tracing(Arc::clone(&traces1), "boot-1");
        let (id, _) = mgr
            .submit("sweep", request(6), Some(2), Some("t-client"))
            .unwrap();
        assert_eq!(mgr.run_chunk(&id), ChunkRun::More);
        // The live chunk span landed under the client's trace id.
        let detail = traces1.detail("t-client").expect("trace recorded");
        assert_eq!(detail.spans.len(), 1);
        let ann = &detail.spans[0].annotations;
        assert!(
            ann.contains(&("chunk".to_string(), "0/3".to_string())),
            "{ann:?}"
        );
        assert!(
            ann.contains(&("boot".to_string(), "boot-1".to_string())),
            "{ann:?}"
        );
        let status = mgr.status(&id).unwrap();
        assert_eq!(
            status.get("trace_id").and_then(Json::as_str),
            Some("t-client")
        );
        assert_eq!(
            status.get("chunks_completed").and_then(Json::as_u64),
            Some(1)
        );
        assert_eq!(status.get("chunks_total").and_then(Json::as_u64), Some(3));
        assert!(status.get("eta_ms").and_then(Json::as_f64).is_some());
        drop(mgr);

        // "Restart": a fresh manager + a fresh (empty) trace store. The
        // persisted chunk mark replays with its original boot id.
        let store = Arc::new(Store::open(&dir).unwrap());
        let mgr = manager_with(store, JobLimits::default());
        let traces2 = Arc::new(TraceStore::new(16));
        mgr.attach_tracing(Arc::clone(&traces2), "boot-2");
        let replayed = traces2.detail("t-client").expect("replayed on attach");
        assert_eq!(replayed.spans.len(), 1);
        assert!(replayed.spans[0]
            .annotations
            .contains(&("boot".to_string(), "boot-1".to_string())));

        assert_eq!(mgr.run_chunk(&id), ChunkRun::More);
        assert_eq!(mgr.run_chunk(&id), ChunkRun::Finished);
        let spans = traces2.detail("t-client").unwrap().spans;
        let chunk_tags: Vec<String> = spans
            .iter()
            .flat_map(|s| s.annotations.iter())
            .filter(|(k, _)| k == "chunk")
            .map(|(_, v)| v.clone())
            .collect();
        assert_eq!(chunk_tags, vec!["0/3", "1/3", "2/3"], "no gaps, no dups");
        let boots: Vec<String> = spans
            .iter()
            .flat_map(|s| s.annotations.iter())
            .filter(|(k, _)| k == "boot")
            .map(|(_, v)| v.clone())
            .collect();
        assert_eq!(boots, vec!["boot-1", "boot-2", "boot-2"]);
        let status = mgr.status(&id).unwrap();
        assert_eq!(
            status.get("chunks_completed").and_then(Json::as_u64),
            Some(3)
        );
        assert!(status.get("eta_ms").is_none(), "terminal jobs have no ETA");
    }

    #[test]
    fn done_jobs_survive_reopen_and_old_terminals_are_evicted() {
        let dir = std::env::temp_dir().join(format!("scpg-jobmgr-evict-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        let store = Arc::new(Store::open(&dir).unwrap());
        let mgr = manager_with(Arc::clone(&store), JobLimits::default());
        let (id, _) = mgr.submit("sweep", request(3), Some(8), None).unwrap();
        assert_eq!(mgr.run_chunk(&id), ChunkRun::Finished);
        drop(mgr);
        let store = Arc::new(Store::open(&dir).unwrap());
        let mgr = manager_with(
            store,
            JobLimits {
                max_stored_jobs: 1,
                ..JobLimits::default()
            },
        );
        let (state, body) = mgr.result(&id).unwrap();
        assert_eq!(state, JobState::Done);
        assert_eq!(body.unwrap().as_slice(), b"[0,10,20]");
        assert!(mgr.resumable().is_empty());
        // Submitting past max_stored_jobs evicts the old Done record.
        let (id2, _) = mgr.submit("sweep", request(2), None, None).unwrap();
        assert!(mgr.result(&id).is_none());
        assert!(mgr.result(&id2).is_some());
    }

    #[test]
    fn failed_chunk_marks_job_failed() {
        struct FailSecond;
        impl ChunkExecutor for FailSecond {
            fn plan(&self, _spec: &JobSpec) -> Result<usize, String> {
                Ok(4)
            }
            fn execute(
                &self,
                _spec: &JobSpec,
                start: usize,
                count: usize,
            ) -> Result<Vec<Json>, String> {
                if start > 0 {
                    return Err("solver diverged".to_string());
                }
                Ok(vec![Json::Null; count])
            }
            fn assemble(&self, _spec: &JobSpec, _fragments: &[Json]) -> Result<Vec<u8>, String> {
                Ok(Vec::new())
            }
        }
        let mgr = JobManager::open(
            Arc::new(Store::memory()),
            JobLimits::default(),
            Arc::new(FailSecond),
        );
        let (id, _) = mgr
            .submit("sweep", Json::Obj(Vec::new()), Some(2), None)
            .unwrap();
        assert_eq!(mgr.run_chunk(&id), ChunkRun::More);
        assert_eq!(mgr.run_chunk(&id), ChunkRun::Finished);
        let status = mgr.status(&id).unwrap();
        assert_eq!(status.get("state").and_then(Json::as_str), Some("failed"));
        assert_eq!(
            status.get("error").and_then(Json::as_str),
            Some("solver diverged")
        );
    }
}
