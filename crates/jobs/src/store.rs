//! Zero-dependency persistent artifact store.
//!
//! Records are JSON documents wrapped in a CRC-32-checked envelope:
//!
//! ```json
//! {"crc32": 3632233996, "payload": { ... }}
//! ```
//!
//! The checksum covers the *canonical* (sorted-key, compact) encoding of
//! the payload, so a record survives any whitespace/key-order-preserving
//! rewrite and fails loudly on torn writes or bit rot.  Durability comes
//! from the classic temp-file + atomic-rename dance; the store never
//! rewrites a file in place.
//!
//! Layout on disk (one directory per namespace):
//!
//! ```text
//! <root>/netlists/<id>.json     # upload metadata records
//! <root>/netlists/<id>.v        # raw Verilog blobs
//! <root>/jobs/<id>.json         # job checkpoint records
//! ```
//!
//! A [`Store`] can also be purely in-memory (`Store::memory()`), which the
//! serving layer uses when no `--store-dir` is configured and the test
//! suite uses for speed; both backends expose identical semantics.

use std::collections::HashMap;
use std::fmt;
use std::fs;
use std::io::Write as _;
use std::path::{Path, PathBuf};
use std::sync::Mutex;

use scpg_json::Json;

use crate::hash::crc32;

/// Store failures. `Corrupt` is the interesting one: the record existed
/// but failed its checksum or envelope shape, which callers must not
/// silently treat as "absent".
#[derive(Debug)]
pub enum StoreError {
    /// Underlying filesystem error.
    Io(std::io::Error),
    /// The record existed but its envelope or checksum was invalid.
    Corrupt {
        /// Namespace the record lives in.
        namespace: &'static str,
        /// Record key.
        key: String,
        /// Why it was rejected.
        reason: String,
    },
    /// A key contained characters that are not filesystem-safe.
    BadKey(String),
}

impl fmt::Display for StoreError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            StoreError::Io(e) => write!(f, "store I/O error: {e}"),
            StoreError::Corrupt {
                namespace,
                key,
                reason,
            } => write!(f, "corrupt record {namespace}/{key}: {reason}"),
            StoreError::BadKey(k) => write!(f, "invalid store key `{k}`"),
        }
    }
}

impl std::error::Error for StoreError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            StoreError::Io(e) => Some(e),
            _ => None,
        }
    }
}

impl From<std::io::Error> for StoreError {
    fn from(e: std::io::Error) -> Self {
        StoreError::Io(e)
    }
}

enum Backend {
    Memory(Mutex<HashMap<String, Vec<u8>>>),
    Disk(PathBuf),
}

/// CRC-checked record + blob store, in-memory or directory-backed.
pub struct Store {
    backend: Backend,
}

/// Keys become file names; restrict them to a conservative alphabet so a
/// hostile id can never traverse out of the namespace directory.
fn check_key(key: &str) -> Result<(), StoreError> {
    let ok = !key.is_empty()
        && key.len() <= 128
        && key
            .bytes()
            .all(|b| b.is_ascii_alphanumeric() || b == b'-' || b == b'_');
    if ok {
        Ok(())
    } else {
        Err(StoreError::BadKey(key.to_string()))
    }
}

impl Store {
    /// Purely in-memory store (nothing survives the process).
    pub fn memory() -> Self {
        Store {
            backend: Backend::Memory(Mutex::new(HashMap::new())),
        }
    }

    /// Opens (creating if needed) a directory-backed store rooted at `dir`.
    pub fn open(dir: &Path) -> Result<Self, StoreError> {
        fs::create_dir_all(dir)?;
        Ok(Store {
            backend: Backend::Disk(dir.to_path_buf()),
        })
    }

    /// True when backed by a directory (i.e. survives restarts).
    pub fn is_persistent(&self) -> bool {
        matches!(self.backend, Backend::Disk(_))
    }

    fn file_path(root: &Path, namespace: &str, file: &str) -> PathBuf {
        root.join(namespace).join(file)
    }

    fn write_bytes(
        &self,
        namespace: &'static str,
        file: &str,
        bytes: &[u8],
    ) -> Result<(), StoreError> {
        match &self.backend {
            Backend::Memory(map) => {
                let mut map = map.lock().unwrap();
                map.insert(format!("{namespace}/{file}"), bytes.to_vec());
                Ok(())
            }
            Backend::Disk(root) => {
                let dir = root.join(namespace);
                fs::create_dir_all(&dir)?;
                // Write to a dot-prefixed temp file in the same directory
                // (same filesystem, so the rename is atomic), then rename
                // over the final name. Readers either see the old complete
                // record or the new one, never a torn write.
                let tmp = dir.join(format!(".tmp-{file}"));
                {
                    let mut f = fs::File::create(&tmp)?;
                    f.write_all(bytes)?;
                    f.sync_all()?;
                }
                fs::rename(&tmp, Self::file_path(root, namespace, file))?;
                Ok(())
            }
        }
    }

    fn read_bytes(
        &self,
        namespace: &'static str,
        file: &str,
    ) -> Result<Option<Vec<u8>>, StoreError> {
        match &self.backend {
            Backend::Memory(map) => Ok(map
                .lock()
                .unwrap()
                .get(&format!("{namespace}/{file}"))
                .cloned()),
            Backend::Disk(root) => match fs::read(Self::file_path(root, namespace, file)) {
                Ok(bytes) => Ok(Some(bytes)),
                Err(e) if e.kind() == std::io::ErrorKind::NotFound => Ok(None),
                Err(e) => Err(StoreError::Io(e)),
            },
        }
    }

    /// Persists `payload` under `namespace/key`, wrapped in a CRC envelope.
    pub fn put_record(
        &self,
        namespace: &'static str,
        key: &str,
        payload: &Json,
    ) -> Result<(), StoreError> {
        check_key(key)?;
        let canonical = payload.canonical();
        let envelope = Json::object([
            ("crc32", Json::from(crc32(canonical.as_bytes()) as u64)),
            ("payload", payload.clone()),
        ]);
        self.write_bytes(
            namespace,
            &format!("{key}.json"),
            envelope.write().as_bytes(),
        )
    }

    /// Loads and checksum-verifies the record at `namespace/key`.
    /// `Ok(None)` means absent; `Err(Corrupt)` means present but damaged.
    pub fn get_record(
        &self,
        namespace: &'static str,
        key: &str,
    ) -> Result<Option<Json>, StoreError> {
        check_key(key)?;
        let Some(bytes) = self.read_bytes(namespace, &format!("{key}.json"))? else {
            return Ok(None);
        };
        let corrupt = |reason: String| StoreError::Corrupt {
            namespace,
            key: key.to_string(),
            reason,
        };
        let text = std::str::from_utf8(&bytes).map_err(|e| corrupt(format!("not UTF-8: {e}")))?;
        let envelope = Json::parse(text).map_err(|e| corrupt(format!("bad JSON: {e}")))?;
        let stored = envelope
            .get("crc32")
            .and_then(Json::as_u64)
            .ok_or_else(|| corrupt("missing crc32 field".to_string()))?;
        let payload = envelope
            .get("payload")
            .ok_or_else(|| corrupt("missing payload field".to_string()))?;
        let actual = crc32(payload.canonical().as_bytes()) as u64;
        if actual != stored {
            return Err(corrupt(format!(
                "checksum mismatch: stored {stored}, computed {actual}"
            )));
        }
        Ok(Some(payload.clone()))
    }

    /// Persists an uninterpreted blob (e.g. raw Verilog source).
    /// `ext` must be a short alphanumeric extension such as `"v"`.
    pub fn put_blob(
        &self,
        namespace: &'static str,
        key: &str,
        ext: &str,
        bytes: &[u8],
    ) -> Result<(), StoreError> {
        check_key(key)?;
        check_key(ext)?;
        self.write_bytes(namespace, &format!("{key}.{ext}"), bytes)
    }

    /// Loads a blob previously written with [`Store::put_blob`].
    pub fn get_blob(
        &self,
        namespace: &'static str,
        key: &str,
        ext: &str,
    ) -> Result<Option<Vec<u8>>, StoreError> {
        check_key(key)?;
        check_key(ext)?;
        self.read_bytes(namespace, &format!("{key}.{ext}"))
    }

    /// Keys of every record in `namespace`, sorted. Blobs and temp files
    /// are ignored; only `*.json` records count.
    pub fn list(&self, namespace: &'static str) -> Result<Vec<String>, StoreError> {
        let mut keys = match &self.backend {
            Backend::Memory(map) => {
                let prefix = format!("{namespace}/");
                map.lock()
                    .unwrap()
                    .keys()
                    .filter_map(|k| k.strip_prefix(&prefix))
                    .filter_map(|f| f.strip_suffix(".json"))
                    .map(str::to_string)
                    .collect::<Vec<_>>()
            }
            Backend::Disk(root) => {
                let dir = root.join(namespace);
                if !dir.is_dir() {
                    return Ok(Vec::new());
                }
                let mut keys = Vec::new();
                for entry in fs::read_dir(&dir)? {
                    let name = entry?.file_name();
                    let Some(name) = name.to_str() else { continue };
                    if let Some(key) = name.strip_suffix(".json") {
                        if check_key(key).is_ok() {
                            keys.push(key.to_string());
                        }
                    }
                }
                keys
            }
        };
        keys.sort();
        Ok(keys)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tmpdir(tag: &str) -> PathBuf {
        let dir = std::env::temp_dir().join(format!("scpg-store-{tag}-{}", std::process::id()));
        let _ = fs::remove_dir_all(&dir);
        dir
    }

    #[test]
    fn record_round_trip_memory_and_disk() {
        let payload = Json::object([("name", Json::from("adder")), ("gates", Json::from(42u64))]);
        for store in [Store::memory(), Store::open(&tmpdir("rt")).unwrap()] {
            store.put_record("netlists", "abc123", &payload).unwrap();
            let back = store.get_record("netlists", "abc123").unwrap().unwrap();
            assert_eq!(back, payload);
            assert_eq!(store.get_record("netlists", "missing").unwrap(), None);
            assert_eq!(store.list("netlists").unwrap(), vec!["abc123".to_string()]);
            assert_eq!(store.list("jobs").unwrap(), Vec::<String>::new());
        }
    }

    #[test]
    fn blobs_do_not_show_up_as_records() {
        let store = Store::open(&tmpdir("blob")).unwrap();
        store
            .put_blob("netlists", "abc123", "v", b"module m; endmodule")
            .unwrap();
        assert_eq!(store.list("netlists").unwrap(), Vec::<String>::new());
        assert_eq!(
            store.get_blob("netlists", "abc123", "v").unwrap().unwrap(),
            b"module m; endmodule"
        );
        assert_eq!(store.get_blob("netlists", "nope", "v").unwrap(), None);
    }

    #[test]
    fn corrupt_record_is_an_error_not_none() {
        let dir = tmpdir("corrupt");
        let store = Store::open(&dir).unwrap();
        store
            .put_record(
                "jobs",
                "j00000001",
                &Json::object([("state", Json::from("queued"))]),
            )
            .unwrap();
        // Flip a byte on disk.
        let path = dir.join("jobs").join("j00000001.json");
        let mut bytes = fs::read(&path).unwrap();
        let idx = bytes.len() - 3;
        bytes[idx] ^= 0x20;
        fs::write(&path, &bytes).unwrap();
        match store.get_record("jobs", "j00000001") {
            Err(StoreError::Corrupt { .. }) => {}
            other => panic!("expected Corrupt, got {other:?}"),
        }
    }

    #[test]
    fn hostile_keys_are_rejected() {
        let store = Store::memory();
        for key in ["../etc/passwd", "a/b", "", "x y", "ключ"] {
            assert!(matches!(
                store.put_record("jobs", key, &Json::Null),
                Err(StoreError::BadKey(_))
            ));
        }
    }

    #[test]
    fn records_survive_reopen() {
        let dir = tmpdir("reopen");
        {
            let store = Store::open(&dir).unwrap();
            store
                .put_record(
                    "jobs",
                    "j00000001",
                    &Json::object([("done", Json::from(3u64))]),
                )
                .unwrap();
        }
        let store = Store::open(&dir).unwrap();
        let back = store.get_record("jobs", "j00000001").unwrap().unwrap();
        assert_eq!(back.get("done").and_then(Json::as_u64), Some(3));
    }
}
