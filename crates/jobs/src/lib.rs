//! Asynchronous batch-job subsystem for the SCPG serving layer.
//!
//! Three pieces, layered bottom-up:
//!
//! * [`store`] — a zero-dependency persistent artifact store: JSON
//!   records in a CRC-32-checked envelope, written with the temp-file +
//!   atomic-rename idiom, namespaced into per-kind directories. Also
//!   available purely in-memory for store-less deployments and tests.
//! * [`netlists`] — a content-addressed registry of user-uploaded
//!   structural-Verilog netlists, validated under explicit resource
//!   limits (source bytes, gate/net counts, full timing-analysis pass)
//!   before admission. Ids are truncated SHA-256 over clock + source, so
//!   uploads are idempotent.
//! * [`manager`] — checkpointed chunked jobs. The embedding layer
//!   supplies a [`manager::ChunkExecutor`] (plan → execute → assemble);
//!   the manager owns the job state machine
//!   (queued → running → done/failed/cancelled), persists a checkpoint
//!   after every chunk, and resumes unfinished jobs after a restart from
//!   their last completed chunk — with results byte-identical to an
//!   uninterrupted run.
//!
//! The crate deliberately knows nothing about HTTP: `scpg-serve` wires
//! these pieces to endpoints and to its worker pool.

#![warn(missing_docs)]

pub mod hash;
pub mod libraries;
pub mod manager;
pub mod netlists;
pub mod store;

pub use hash::{crc32, sha256_hex};
pub use libraries::{
    library_id, LibraryLimits, LibraryRegistry, LibraryUploadError, UploadedLibrary, NS_LIBRARIES,
};
pub use manager::{
    CancelOutcome, ChunkExecutor, ChunkRun, JobLimits, JobManager, JobSpec, JobState, SubmitError,
    NS_JOBS,
};
pub use netlists::{
    netlist_id, NetlistLimits, NetlistRegistry, UploadError, UploadedNetlist, NS_NETLISTS,
};
pub use store::{Store, StoreError};
