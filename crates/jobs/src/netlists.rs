//! Content-addressed registry of user-uploaded structural-Verilog
//! netlists.
//!
//! Uploads are validated under explicit resource limits *before* they are
//! admitted: source size, instance/net counts (via
//! [`scpg_netlist::ParseLimits`]), library membership
//! ([`Netlist::validate`]), presence of the named clock net, and a full
//! [`scpg_sta::analyze_limited`] pass so combinational loops and other
//! analysis-time failures are rejected at upload rather than surfacing
//! later inside a job.
//!
//! The id is the SHA-256 (truncated to 40 hex chars) of the clock name
//! plus the raw source, so re-uploading identical content is idempotent
//! and two sources differing only in their clock pin are distinct designs.

use std::collections::HashMap;
use std::fmt;
use std::sync::{Arc, Mutex};

use scpg_json::Json;
use scpg_liberty::{Library, PvtCorner};
use scpg_netlist::{parse_verilog_limited, Netlist, NetlistError, ParseLimits};
use scpg_sta::{analyze_limited, StaLimits};

use crate::hash::sha256_hex;
use crate::store::{Store, StoreError};

/// Namespace the registry persists under.
pub const NS_NETLISTS: &str = "netlists";

/// Admission limits applied to every upload.
#[derive(Debug, Clone, Copy)]
pub struct NetlistLimits {
    /// Maximum raw source size in bytes.
    pub max_source_bytes: usize,
    /// Maximum gate (instance) count.
    pub max_gates: usize,
    /// Maximum number of registered netlists held at once.
    pub max_netlists: usize,
}

impl Default for NetlistLimits {
    fn default() -> Self {
        NetlistLimits {
            max_source_bytes: 512 * 1024,
            max_gates: 20_000,
            max_netlists: 64,
        }
    }
}

/// A validated, registered netlist.
#[derive(Debug)]
pub struct UploadedNetlist {
    /// Content-derived id (40 hex chars).
    pub id: String,
    /// Module name from the source.
    pub name: String,
    /// Clock net driving the design's flops.
    pub clock: String,
    /// Instance count at upload time.
    pub gates: usize,
    /// Raw Verilog source as uploaded.
    pub source: String,
    /// The parsed baseline netlist.
    pub netlist: Netlist,
}

impl UploadedNetlist {
    /// Summary object served by `GET /v1/designs` and upload responses.
    pub fn summary(&self) -> Json {
        Json::object([
            ("id", Json::from(self.id.as_str())),
            ("name", Json::from(self.name.as_str())),
            ("clock", Json::from(self.clock.as_str())),
            ("gates", Json::from(self.gates)),
        ])
    }
}

/// Why an upload was refused.
#[derive(Debug)]
pub enum UploadError {
    /// Source or design exceeds an admission limit.
    TooLarge {
        /// What was oversized.
        what: &'static str,
        /// Requested amount.
        requested: usize,
        /// Admission ceiling.
        limit: usize,
    },
    /// Verilog did not parse; carries the source position.
    Parse {
        /// 1-based line.
        line: usize,
        /// 1-based column (0 = whole line).
        column: usize,
        /// Offending token (may be empty).
        token: String,
        /// Parser message.
        message: String,
    },
    /// Parsed but failed semantic validation or timing analysis.
    Invalid(String),
    /// Registry is at capacity.
    Full {
        /// Current registered count.
        count: usize,
        /// Configured ceiling.
        limit: usize,
    },
    /// Persistence failed.
    Store(StoreError),
}

impl fmt::Display for UploadError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            UploadError::TooLarge {
                what,
                requested,
                limit,
            } => write!(
                f,
                "netlist too large: {requested} {what} exceeds limit {limit}"
            ),
            UploadError::Parse {
                line,
                column,
                token,
                message,
            } => {
                write!(f, "verilog parse error at line {line}")?;
                if *column > 0 {
                    write!(f, ", column {column}")?;
                }
                write!(f, ": {message}")?;
                if !token.is_empty() {
                    write!(f, " (near `{token}`)")?;
                }
                Ok(())
            }
            UploadError::Invalid(msg) => write!(f, "netlist rejected: {msg}"),
            UploadError::Full { count, limit } => {
                write!(f, "netlist registry full ({count}/{limit})")
            }
            UploadError::Store(e) => write!(f, "netlist store failure: {e}"),
        }
    }
}

impl std::error::Error for UploadError {}

impl From<NetlistError> for UploadError {
    fn from(e: NetlistError) -> Self {
        match e {
            NetlistError::Parse {
                line,
                column,
                token,
                message,
            } => UploadError::Parse {
                line,
                column,
                token,
                message,
            },
            NetlistError::TooLarge {
                what,
                requested,
                limit,
            } => UploadError::TooLarge {
                what,
                requested,
                limit,
            },
            other => UploadError::Invalid(other.to_string()),
        }
    }
}

/// Registry of uploaded netlists, persisted through a [`Store`].
pub struct NetlistRegistry {
    store: Arc<Store>,
    lib: Library,
    limits: NetlistLimits,
    map: Mutex<HashMap<String, Arc<UploadedNetlist>>>,
}

impl NetlistRegistry {
    /// Opens the registry, reloading every previously persisted netlist.
    /// Records that fail to re-validate (e.g. corrupt source) are skipped
    /// with a warning on stderr rather than poisoning startup.
    pub fn open(store: Arc<Store>, lib: Library, limits: NetlistLimits) -> Self {
        let mut map = HashMap::new();
        let keys = store.list(NS_NETLISTS).unwrap_or_default();
        for id in keys {
            match Self::load_one(&store, &lib, &limits, &id) {
                Ok(entry) => {
                    map.insert(id, Arc::new(entry));
                }
                Err(e) => {
                    eprintln!("scpg-jobs: skipping persisted netlist {id}: {e}");
                }
            }
        }
        NetlistRegistry {
            store,
            lib,
            limits,
            map: Mutex::new(map),
        }
    }

    fn load_one(
        store: &Store,
        lib: &Library,
        limits: &NetlistLimits,
        id: &str,
    ) -> Result<UploadedNetlist, String> {
        let meta = store
            .get_record(NS_NETLISTS, id)
            .map_err(|e| e.to_string())?
            .ok_or("missing metadata record")?;
        let clock = meta
            .get("clock")
            .and_then(Json::as_str)
            .ok_or("metadata missing clock")?
            .to_string();
        let source = store
            .get_blob(NS_NETLISTS, id, "v")
            .map_err(|e| e.to_string())?
            .ok_or("missing source blob")?;
        let source = String::from_utf8(source).map_err(|e| e.to_string())?;
        Self::admit(lib, limits, &source, &clock, Some(id)).map_err(|e| e.to_string())
    }

    /// Parses and fully validates `source`; does not touch the map/store.
    fn admit(
        lib: &Library,
        limits: &NetlistLimits,
        source: &str,
        clock: &str,
        expect_id: Option<&str>,
    ) -> Result<UploadedNetlist, UploadError> {
        let id = netlist_id(source, clock);
        if let Some(expected) = expect_id {
            if id != expected {
                return Err(UploadError::Invalid(format!(
                    "content hash mismatch: stored as {expected}, hashes to {id}"
                )));
            }
        }
        let parse_limits = ParseLimits {
            max_source_bytes: limits.max_source_bytes,
            max_instances: limits.max_gates,
            max_nets: limits.max_gates.saturating_mul(2),
        };
        let netlist = parse_verilog_limited(source, lib, &parse_limits)?;
        netlist.validate(lib).map_err(UploadError::from)?;
        if netlist.net_by_name(clock).is_none() {
            return Err(UploadError::Invalid(format!(
                "clock net `{clock}` not found in module `{}`",
                netlist.name()
            )));
        }
        // A full timing pass rejects designs the analysis engine cannot
        // handle (combinational loops, zero flops, ...) at upload time.
        let sta_limits = StaLimits {
            max_instances: limits.max_gates,
        };
        analyze_limited(&netlist, lib, PvtCorner::default().voltage, &sta_limits)
            .map_err(|e| UploadError::Invalid(format!("timing analysis failed: {e}")))?;
        Ok(UploadedNetlist {
            id,
            name: netlist.name().to_string(),
            clock: clock.to_string(),
            gates: netlist.instances().len(),
            source: source.to_string(),
            netlist,
        })
    }

    /// Validates and registers `source`. Returns the entry plus `true`
    /// when it was newly created (`false` = idempotent re-upload).
    pub fn upload(
        &self,
        source: &str,
        clock: &str,
    ) -> Result<(Arc<UploadedNetlist>, bool), UploadError> {
        if source.len() > self.limits.max_source_bytes {
            return Err(UploadError::TooLarge {
                what: "source bytes",
                requested: source.len(),
                limit: self.limits.max_source_bytes,
            });
        }
        let id = netlist_id(source, clock);
        {
            let map = self.map.lock().unwrap();
            if let Some(existing) = map.get(&id) {
                return Ok((Arc::clone(existing), false));
            }
            if map.len() >= self.limits.max_netlists {
                return Err(UploadError::Full {
                    count: map.len(),
                    limit: self.limits.max_netlists,
                });
            }
        }
        // Validation runs outside the lock: it is CPU-heavy and must not
        // block concurrent lookups from the request path.
        let entry = Self::admit(&self.lib, &self.limits, source, clock, None)?;
        let meta = Json::object([
            ("id", Json::from(entry.id.as_str())),
            ("name", Json::from(entry.name.as_str())),
            ("clock", Json::from(entry.clock.as_str())),
            ("gates", Json::from(entry.gates)),
        ]);
        self.store
            .put_blob(NS_NETLISTS, &entry.id, "v", source.as_bytes())
            .map_err(UploadError::Store)?;
        self.store
            .put_record(NS_NETLISTS, &entry.id, &meta)
            .map_err(UploadError::Store)?;
        let entry = Arc::new(entry);
        let mut map = self.map.lock().unwrap();
        // Two racing identical uploads: first insert wins, both succeed.
        if let Some(existing) = map.get(&id) {
            return Ok((Arc::clone(existing), false));
        }
        if map.len() >= self.limits.max_netlists {
            return Err(UploadError::Full {
                count: map.len(),
                limit: self.limits.max_netlists,
            });
        }
        map.insert(id, Arc::clone(&entry));
        Ok((entry, true))
    }

    /// Looks up a registered netlist by id.
    pub fn get(&self, id: &str) -> Option<Arc<UploadedNetlist>> {
        self.map.lock().unwrap().get(id).cloned()
    }

    /// Sorted summaries of every registered netlist.
    pub fn summaries(&self) -> Vec<Json> {
        let map = self.map.lock().unwrap();
        let mut entries: Vec<_> = map.values().cloned().collect();
        drop(map);
        entries.sort_by(|a, b| a.id.cmp(&b.id));
        entries.iter().map(|e| e.summary()).collect()
    }

    /// Number of registered netlists.
    pub fn len(&self) -> usize {
        self.map.lock().unwrap().len()
    }

    /// True when no netlists are registered.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// The admission limits this registry enforces.
    pub fn limits(&self) -> NetlistLimits {
        self.limits
    }
}

/// Content id: SHA-256 of `"<clock>\n<source>"`, truncated to 40 hex chars.
pub fn netlist_id(source: &str, clock: &str) -> String {
    let mut input = Vec::with_capacity(clock.len() + 1 + source.len());
    input.extend_from_slice(clock.as_bytes());
    input.push(b'\n');
    input.extend_from_slice(source.as_bytes());
    let mut hex = sha256_hex(&input);
    hex.truncate(40);
    hex
}

#[cfg(test)]
mod tests {
    use super::*;

    const GOOD: &str = "\
module toy (clk, a, y);
  input clk;
  input a;
  output y;
  wire q;
  DFF_X1 r0 (.D(a), .CK(clk), .Q(q));
  INV_X1 g0 (.A(q), .Y(y));
endmodule
";

    fn registry() -> NetlistRegistry {
        NetlistRegistry::open(
            Arc::new(Store::memory()),
            Library::ninety_nm(),
            NetlistLimits::default(),
        )
    }

    #[test]
    fn upload_is_idempotent_and_content_addressed() {
        let reg = registry();
        let (first, created) = reg.upload(GOOD, "clk").unwrap();
        assert!(created);
        assert_eq!(first.gates, 2);
        assert_eq!(first.name, "toy");
        let (second, created) = reg.upload(GOOD, "clk").unwrap();
        assert!(!created);
        assert_eq!(first.id, second.id);
        assert_eq!(reg.len(), 1);
        assert!(reg.get(&first.id).is_some());
        // Same source, different clock name → different design id.
        assert_ne!(netlist_id(GOOD, "clk"), netlist_id(GOOD, "clk2"));
    }

    #[test]
    fn bad_uploads_are_refused_with_positions() {
        let reg = registry();
        let broken = GOOD.replace(".Y(y)", ".QQ(y)");
        match reg.upload(&broken, "clk") {
            Err(UploadError::Parse { line, token, .. }) => {
                assert_eq!(line, 7);
                assert_eq!(token, "QQ");
            }
            other => panic!("expected parse error, got {other:?}"),
        }
        match reg.upload(GOOD, "nope") {
            Err(UploadError::Invalid(msg)) => assert!(msg.contains("clock net `nope`")),
            other => panic!("expected Invalid, got {other:?}"),
        }
        let reg = NetlistRegistry::open(
            Arc::new(Store::memory()),
            Library::ninety_nm(),
            NetlistLimits {
                max_source_bytes: 16,
                ..NetlistLimits::default()
            },
        );
        assert!(matches!(
            reg.upload(GOOD, "clk"),
            Err(UploadError::TooLarge { .. })
        ));
    }

    #[test]
    fn registry_capacity_is_enforced() {
        let reg = NetlistRegistry::open(
            Arc::new(Store::memory()),
            Library::ninety_nm(),
            NetlistLimits {
                max_netlists: 1,
                ..NetlistLimits::default()
            },
        );
        reg.upload(GOOD, "clk").unwrap();
        let other = GOOD.replace("module toy", "module toy2");
        assert!(matches!(
            reg.upload(&other, "clk"),
            Err(UploadError::Full { count: 1, limit: 1 })
        ));
    }

    #[test]
    fn netlists_survive_reopen() {
        let dir = std::env::temp_dir().join(format!("scpg-nlreg-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        let store = Arc::new(Store::open(&dir).unwrap());
        let reg = NetlistRegistry::open(
            Arc::clone(&store),
            Library::ninety_nm(),
            NetlistLimits::default(),
        );
        let (entry, _) = reg.upload(GOOD, "clk").unwrap();
        drop(reg);
        let store = Arc::new(Store::open(&dir).unwrap());
        let reg = NetlistRegistry::open(store, Library::ninety_nm(), NetlistLimits::default());
        let back = reg.get(&entry.id).expect("reloaded after reopen");
        assert_eq!(back.source, GOOD);
        assert_eq!(back.gates, 2);
        assert_eq!(back.clock, "clk");
    }
}
