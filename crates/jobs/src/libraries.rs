//! Content-addressed registry of user-uploaded Liberty cell libraries.
//!
//! Uploads are parsed with the real-Liberty subset parser
//! ([`scpg_liberty::parse_liberty`]) and validated under explicit
//! resource limits *before* admission: source size, cell count and total
//! NLDM grid points. The id is the SHA-256 (truncated to 40 hex chars)
//! of the raw source, so re-uploading identical text is idempotent.
//!
//! Persistence mirrors the netlist registry: the raw source goes into a
//! CRC-checked blob, a small metadata record beside it, both written with
//! the temp-file + atomic-rename idiom — an uploaded library survives a
//! kill/restart intact.
//!
//! Unlike netlists, parsed libraries are **not** all held in memory: the
//! registry keeps every id registered but bounds the number of *loaded*
//! (parsed) libraries with an LRU. Evicted entries reload lazily from
//! the store on their next use, so `max_libraries` governs disk and
//! `max_loaded` governs RAM.

use std::collections::{BTreeMap, HashMap, VecDeque};
use std::fmt;
use std::sync::atomic::Ordering;
use std::sync::{Arc, Mutex};

use scpg_json::Json;
use scpg_liberty::{parse_liberty, LibertyError, Library};
use scpg_trace::{Introspect, StoreCounters};

use crate::hash::sha256_hex;
use crate::store::{Store, StoreError};

/// Namespace the registry persists under.
pub const NS_LIBRARIES: &str = "libraries";

/// Admission and residency limits applied to every library.
#[derive(Debug, Clone, Copy)]
pub struct LibraryLimits {
    /// Maximum raw Liberty source size in bytes.
    pub max_source_bytes: usize,
    /// Maximum cell count per library.
    pub max_cells: usize,
    /// Maximum total NLDM grid points per library.
    pub max_table_points: usize,
    /// Maximum number of registered libraries (disk bound).
    pub max_libraries: usize,
    /// Maximum number of parsed libraries held in memory (LRU bound;
    /// evicted entries reload lazily from the store).
    pub max_loaded: usize,
}

impl Default for LibraryLimits {
    fn default() -> Self {
        LibraryLimits {
            max_source_bytes: 1024 * 1024,
            max_cells: 512,
            max_table_points: 200_000,
            max_libraries: 32,
            max_loaded: 8,
        }
    }
}

/// A validated, registered Liberty library.
#[derive(Debug)]
pub struct UploadedLibrary {
    /// Content-derived id (40 hex chars).
    pub id: String,
    /// The `library (name)` argument from the source.
    pub name: String,
    /// Number of cells.
    pub cells: usize,
    /// Cells carrying at least one NLDM table.
    pub tabulated_cells: usize,
    /// Total NLDM grid points.
    pub table_points: usize,
    /// Nominal (characterisation) voltage in volts.
    pub nom_voltage_v: f64,
    /// Nominal temperature in °C.
    pub nom_temperature_c: f64,
    /// Operating-conditions set in effect, when named.
    pub operating_conditions: Option<String>,
    /// Raw Liberty source as uploaded.
    pub source: String,
    /// The parsed library (analytical backend selected; callers flip to
    /// the table backend per design via [`Library::with_backend`]).
    pub library: Library,
}

impl UploadedLibrary {
    /// Summary object served by `GET /v1/designs` and upload responses.
    pub fn summary(&self) -> Json {
        summary_json(
            &self.id,
            &self.name,
            self.cells,
            self.tabulated_cells,
            self.table_points,
            self.nom_voltage_v,
            self.nom_temperature_c,
            self.operating_conditions.as_deref(),
        )
    }
}

#[allow(clippy::too_many_arguments)]
fn summary_json(
    id: &str,
    name: &str,
    cells: usize,
    tabulated_cells: usize,
    table_points: usize,
    nom_voltage_v: f64,
    nom_temperature_c: f64,
    operating_conditions: Option<&str>,
) -> Json {
    Json::object([
        ("id", Json::from(id)),
        ("name", Json::from(name)),
        ("cells", Json::from(cells)),
        ("tabulated_cells", Json::from(tabulated_cells)),
        ("table_points", Json::from(table_points)),
        ("nom_voltage_v", Json::from(nom_voltage_v)),
        ("nom_temperature_c", Json::from(nom_temperature_c)),
        (
            "operating_conditions",
            match operating_conditions {
                Some(s) => Json::from(s),
                None => Json::Null,
            },
        ),
    ])
}

/// Why a library upload was refused.
#[derive(Debug)]
pub enum LibraryUploadError {
    /// Source or library exceeds an admission limit.
    TooLarge {
        /// What was oversized.
        what: &'static str,
        /// Requested amount.
        requested: usize,
        /// Admission ceiling.
        limit: usize,
    },
    /// Liberty text did not parse; carries the source position.
    Parse {
        /// 1-based line.
        line: usize,
        /// 1-based column (0 = whole line).
        column: usize,
        /// Offending token (may be empty).
        token: String,
        /// Parser message.
        message: String,
    },
    /// Parsed but failed semantic validation.
    Invalid(String),
    /// Registry is at capacity.
    Full {
        /// Current registered count.
        count: usize,
        /// Configured ceiling.
        limit: usize,
    },
    /// Persistence failed.
    Store(StoreError),
}

impl fmt::Display for LibraryUploadError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            LibraryUploadError::TooLarge {
                what,
                requested,
                limit,
            } => write!(
                f,
                "library too large: {requested} {what} exceeds limit {limit}"
            ),
            LibraryUploadError::Parse {
                line,
                column,
                token,
                message,
            } => {
                write!(f, "liberty parse error at line {line}")?;
                if *column > 0 {
                    write!(f, ", column {column}")?;
                }
                write!(f, ": {message}")?;
                if !token.is_empty() {
                    write!(f, " (near `{token}`)")?;
                }
                Ok(())
            }
            LibraryUploadError::Invalid(msg) => write!(f, "library rejected: {msg}"),
            LibraryUploadError::Full { count, limit } => {
                write!(f, "library registry full ({count}/{limit})")
            }
            LibraryUploadError::Store(e) => write!(f, "library store failure: {e}"),
        }
    }
}

impl std::error::Error for LibraryUploadError {}

impl From<LibertyError> for LibraryUploadError {
    fn from(e: LibertyError) -> Self {
        LibraryUploadError::Parse {
            line: e.line,
            column: e.column,
            token: e.token,
            message: e.message,
        }
    }
}

/// Residency + registration state behind one mutex.
struct Inner {
    /// Every registered id, with its persisted summary metadata.
    registered: BTreeMap<String, Json>,
    /// Parsed libraries currently resident in memory.
    loaded: HashMap<String, Arc<UploadedLibrary>>,
    /// LRU order over `loaded`: least-recent at the front.
    lru: VecDeque<String>,
}

impl Inner {
    fn touch(&mut self, id: &str) {
        if let Some(pos) = self.lru.iter().position(|x| x == id) {
            self.lru.remove(pos);
        }
        self.lru.push_back(id.to_string());
    }

    /// Inserts into the loaded LRU, returning how many residents the
    /// capacity bound displaced.
    fn insert_loaded(&mut self, entry: Arc<UploadedLibrary>, max_loaded: usize) -> u64 {
        let id = entry.id.clone();
        self.loaded.insert(id.clone(), entry);
        self.touch(&id);
        let mut evicted = 0;
        while self.loaded.len() > max_loaded.max(1) {
            if let Some(evict) = self.lru.pop_front() {
                self.loaded.remove(&evict);
                evicted += 1;
            } else {
                break;
            }
        }
        evicted
    }
}

/// Registry of uploaded Liberty libraries, persisted through a [`Store`].
pub struct LibraryRegistry {
    store: Arc<Store>,
    limits: LibraryLimits,
    inner: Mutex<Inner>,
    /// Loaded-LRU accounting: hits are in-memory lookups, misses are
    /// lazy reloads (or unknown ids), evictions are LRU displacements.
    counters: StoreCounters,
}

impl LibraryRegistry {
    /// Opens the registry, indexing every previously persisted library.
    /// Sources are *not* re-parsed at startup — they load lazily on first
    /// use. Records with unreadable metadata are skipped with a warning
    /// on stderr rather than poisoning startup.
    pub fn open(store: Arc<Store>, limits: LibraryLimits) -> Self {
        let mut registered = BTreeMap::new();
        let keys = store.list(NS_LIBRARIES).unwrap_or_default();
        for id in keys {
            match store.get_record(NS_LIBRARIES, &id) {
                Ok(Some(meta)) => {
                    registered.insert(id, meta);
                }
                Ok(None) => {
                    eprintln!("scpg-jobs: skipping persisted library {id}: missing metadata");
                }
                Err(e) => {
                    eprintln!("scpg-jobs: skipping persisted library {id}: {e}");
                }
            }
        }
        LibraryRegistry {
            store,
            limits,
            inner: Mutex::new(Inner {
                registered,
                loaded: HashMap::new(),
                lru: VecDeque::new(),
            }),
            counters: StoreCounters::new(),
        }
    }

    /// Parses and fully validates `source`; does not touch state.
    fn admit(
        limits: &LibraryLimits,
        source: &str,
        expect_id: Option<&str>,
    ) -> Result<UploadedLibrary, LibraryUploadError> {
        let id = library_id(source);
        if let Some(expected) = expect_id {
            if id != expected {
                return Err(LibraryUploadError::Invalid(format!(
                    "content hash mismatch: stored as {expected}, hashes to {id}"
                )));
            }
        }
        let parsed = parse_liberty(source)?;
        let s = &parsed.summary;
        if s.cells > limits.max_cells {
            return Err(LibraryUploadError::TooLarge {
                what: "cells",
                requested: s.cells,
                limit: limits.max_cells,
            });
        }
        if s.table_points > limits.max_table_points {
            return Err(LibraryUploadError::TooLarge {
                what: "table points",
                requested: s.table_points,
                limit: limits.max_table_points,
            });
        }
        Ok(UploadedLibrary {
            id,
            name: s.name.clone(),
            cells: s.cells,
            tabulated_cells: s.tabulated_cells,
            table_points: s.table_points,
            nom_voltage_v: s.nom_voltage.as_v(),
            nom_temperature_c: s.nom_temperature.as_celsius(),
            operating_conditions: s.operating_conditions.clone(),
            source: source.to_string(),
            library: parsed.library,
        })
    }

    /// Validates and registers `source`. Returns the entry plus `true`
    /// when it was newly created (`false` = idempotent re-upload).
    pub fn upload(&self, source: &str) -> Result<(Arc<UploadedLibrary>, bool), LibraryUploadError> {
        if source.len() > self.limits.max_source_bytes {
            return Err(LibraryUploadError::TooLarge {
                what: "source bytes",
                requested: source.len(),
                limit: self.limits.max_source_bytes,
            });
        }
        let id = library_id(source);
        {
            let inner = self.inner.lock().unwrap();
            if let Some(existing) = inner.loaded.get(&id) {
                return Ok((Arc::clone(existing), false));
            }
            if inner.registered.contains_key(&id) {
                // Registered but evicted from memory: fall through to a
                // lazy reload below rather than re-admitting the body.
            } else if inner.registered.len() >= self.limits.max_libraries {
                return Err(LibraryUploadError::Full {
                    count: inner.registered.len(),
                    limit: self.limits.max_libraries,
                });
            }
        }
        if self.inner.lock().unwrap().registered.contains_key(&id) {
            let entry = self.load(&id)?;
            return Ok((entry, false));
        }
        // Validation runs outside the lock: parsing is CPU-heavy and must
        // not block concurrent lookups from the request path.
        let entry = Self::admit(&self.limits, source, None)?;
        let meta = entry.summary();
        self.store
            .put_blob(NS_LIBRARIES, &entry.id, "lib", source.as_bytes())
            .map_err(LibraryUploadError::Store)?;
        self.store
            .put_record(NS_LIBRARIES, &entry.id, &meta)
            .map_err(LibraryUploadError::Store)?;
        let entry = Arc::new(entry);
        let mut inner = self.inner.lock().unwrap();
        // Two racing identical uploads: first insert wins, both succeed.
        if let Some(existing) = inner.loaded.get(&id) {
            return Ok((Arc::clone(existing), false));
        }
        if !inner.registered.contains_key(&id)
            && inner.registered.len() >= self.limits.max_libraries
        {
            return Err(LibraryUploadError::Full {
                count: inner.registered.len(),
                limit: self.limits.max_libraries,
            });
        }
        inner.registered.insert(id, meta);
        let evicted = inner.insert_loaded(Arc::clone(&entry), self.limits.max_loaded);
        self.counters
            .evictions
            .fetch_add(evicted, Ordering::Relaxed);
        Ok((entry, true))
    }

    /// Reloads a registered-but-evicted library from the store.
    fn load(&self, id: &str) -> Result<Arc<UploadedLibrary>, LibraryUploadError> {
        let blob = self
            .store
            .get_blob(NS_LIBRARIES, id, "lib")
            .map_err(LibraryUploadError::Store)?
            .ok_or_else(|| {
                LibraryUploadError::Invalid(format!("library {id} has no persisted source"))
            })?;
        let source = String::from_utf8(blob)
            .map_err(|e| LibraryUploadError::Invalid(format!("library {id} source: {e}")))?;
        let entry = Arc::new(Self::admit(&self.limits, &source, Some(id))?);
        let mut inner = self.inner.lock().unwrap();
        if let Some(existing) = inner.loaded.get(id) {
            return Ok(Arc::clone(existing));
        }
        let evicted = inner.insert_loaded(Arc::clone(&entry), self.limits.max_loaded);
        self.counters
            .evictions
            .fetch_add(evicted, Ordering::Relaxed);
        Ok(entry)
    }

    /// Looks up a registered library by id, lazily reloading it from the
    /// store when it was evicted from the in-memory LRU.
    pub fn get(&self, id: &str) -> Option<Arc<UploadedLibrary>> {
        {
            let mut inner = self.inner.lock().unwrap();
            if let Some(entry) = inner.loaded.get(id).cloned() {
                inner.touch(id);
                self.counters.hit();
                return Some(entry);
            }
            self.counters.miss();
            if !inner.registered.contains_key(id) {
                return None;
            }
        }
        match self.load(id) {
            Ok(entry) => Some(entry),
            Err(e) => {
                eprintln!("scpg-jobs: reload of library {id} failed: {e}");
                None
            }
        }
    }

    /// Sorted summaries of every registered library (loaded or not).
    pub fn summaries(&self) -> Vec<Json> {
        let inner = self.inner.lock().unwrap();
        inner.registered.values().cloned().collect()
    }

    /// Number of registered libraries.
    pub fn len(&self) -> usize {
        self.inner.lock().unwrap().registered.len()
    }

    /// True when no libraries are registered.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Number of parsed libraries currently resident in memory.
    pub fn loaded(&self) -> usize {
        self.inner.lock().unwrap().loaded.len()
    }

    /// The admission limits this registry enforces.
    pub fn limits(&self) -> LibraryLimits {
        self.limits
    }
}

impl Introspect for LibraryRegistry {
    fn store_name(&self) -> &'static str {
        "library_lru"
    }

    /// Parsed libraries resident in memory (the RAM-bounded side; disk
    /// registration is bounded separately by `max_libraries`).
    fn entries(&self) -> usize {
        self.loaded()
    }

    fn capacity(&self) -> usize {
        self.limits.max_loaded.max(1)
    }

    /// Raw Liberty source bytes of resident libraries — the parsed form
    /// scales with it and the source is what the store re-reads on a
    /// miss, so it is the honest reload-cost figure.
    fn bytes_estimate(&self) -> usize {
        let inner = self.inner.lock().unwrap();
        inner.loaded.values().map(|l| l.source.len()).sum()
    }

    fn hits(&self) -> u64 {
        self.counters.hits.load(Ordering::Relaxed)
    }

    fn misses(&self) -> u64 {
        self.counters.misses.load(Ordering::Relaxed)
    }

    fn evictions(&self) -> u64 {
        self.counters.evictions.load(Ordering::Relaxed)
    }
}

/// Content id: SHA-256 of the raw source, truncated to 40 hex chars.
pub fn library_id(source: &str) -> String {
    let mut hex = sha256_hex(source.as_bytes());
    hex.truncate(40);
    hex
}

#[cfg(test)]
mod tests {
    use super::*;
    use scpg_liberty::write_liberty;

    fn kit_text() -> String {
        write_liberty(&Library::ninety_nm())
    }

    fn registry() -> LibraryRegistry {
        LibraryRegistry::open(Arc::new(Store::memory()), LibraryLimits::default())
    }

    #[test]
    fn upload_is_idempotent_and_content_addressed() {
        let reg = registry();
        let text = kit_text();
        let (first, created) = reg.upload(&text).unwrap();
        assert!(created);
        assert_eq!(first.name, "synth90");
        assert!(first.cells > 20);
        assert!(first.tabulated_cells > 0);
        let (second, created) = reg.upload(&text).unwrap();
        assert!(!created);
        assert_eq!(first.id, second.id);
        assert_eq!(reg.len(), 1);
        assert!(reg.get(&first.id).is_some());
        assert_ne!(
            library_id(&text),
            library_id(&text.replace("synth90", "other"))
        );
    }

    #[test]
    fn bad_uploads_are_refused_with_positions() {
        let reg = registry();
        match reg.upload("library (broken) {\n  cell (INV_X1) {\n") {
            Err(LibraryUploadError::Parse { line, message, .. }) => {
                assert!(line >= 2, "{line}");
                assert!(message.contains("unterminated"), "{message}");
            }
            other => panic!("expected parse error, got {other:?}"),
        }
        let reg = LibraryRegistry::open(
            Arc::new(Store::memory()),
            LibraryLimits {
                max_source_bytes: 16,
                ..LibraryLimits::default()
            },
        );
        assert!(matches!(
            reg.upload(&kit_text()),
            Err(LibraryUploadError::TooLarge { .. })
        ));
        let reg = LibraryRegistry::open(
            Arc::new(Store::memory()),
            LibraryLimits {
                max_cells: 3,
                ..LibraryLimits::default()
            },
        );
        assert!(matches!(
            reg.upload(&kit_text()),
            Err(LibraryUploadError::TooLarge { what: "cells", .. })
        ));
    }

    #[test]
    fn registry_capacity_is_enforced() {
        let reg = LibraryRegistry::open(
            Arc::new(Store::memory()),
            LibraryLimits {
                max_libraries: 1,
                ..LibraryLimits::default()
            },
        );
        let text = kit_text();
        reg.upload(&text).unwrap();
        assert!(matches!(
            reg.upload(&text.replace("synth90", "other")),
            Err(LibraryUploadError::Full { count: 1, limit: 1 })
        ));
    }

    #[test]
    fn lru_evicts_and_reloads_lazily() {
        let reg = LibraryRegistry::open(
            Arc::new(Store::memory()),
            LibraryLimits {
                max_loaded: 1,
                ..LibraryLimits::default()
            },
        );
        let a = kit_text();
        let b = a.replace("synth90", "second");
        let (ea, _) = reg.upload(&a).unwrap();
        let (eb, _) = reg.upload(&b).unwrap();
        assert_eq!(reg.len(), 2, "both registered");
        assert_eq!(reg.loaded(), 1, "only one resident");
        // The older library was evicted but reloads transparently.
        let back = reg.get(&ea.id).expect("lazy reload");
        assert_eq!(back.name, "synth90");
        assert_eq!(back.cells, ea.cells);
        assert_eq!(reg.loaded(), 1);
        // And the reload evicted the other one, which also comes back.
        assert_eq!(reg.get(&eb.id).expect("reload b").name, "second");
    }

    #[test]
    fn libraries_survive_reopen() {
        let dir = std::env::temp_dir().join(format!("scpg-libreg-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        let store = Arc::new(Store::open(&dir).unwrap());
        let reg = LibraryRegistry::open(Arc::clone(&store), LibraryLimits::default());
        let text = kit_text();
        let (entry, _) = reg.upload(&text).unwrap();
        drop(reg);
        let store = Arc::new(Store::open(&dir).unwrap());
        let reg = LibraryRegistry::open(store, LibraryLimits::default());
        assert_eq!(reg.len(), 1);
        assert_eq!(reg.loaded(), 0, "indexed, not parsed, at startup");
        let back = reg.get(&entry.id).expect("reloaded after reopen");
        assert_eq!(back.source, text);
        assert_eq!(back.cells, entry.cells);
        let summaries = reg.summaries();
        assert_eq!(summaries.len(), 1);
        assert_eq!(
            summaries[0].get("id").and_then(Json::as_str),
            Some(entry.id.as_str())
        );
        let _ = std::fs::remove_dir_all(&dir);
    }
}
