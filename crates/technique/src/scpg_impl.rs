//! The `scpg` technique: the paper's sub-clock power-gating pipeline.
//!
//! A thin adapter over [`scpg::ScpgTransform`] + [`scpg::ScpgAnalysis`]:
//! the transform and the analysis engine are built exactly as
//! `scpg::service::netlist_analysis` builds them, so a compare row
//! evaluated here is bit-identical to the `/v1/sweep` numbers for the
//! same design and frequencies.

use std::sync::Arc;

use scpg::transform::{ScpgOptions, ScpgTransform};
use scpg::{Mode, ScpgAnalysis, ScpgError};
use scpg_netlist::Netlist;
use scpg_units::Frequency;

use crate::{
    ensure_untransformed, AreaReport, DelayReport, ParamKind, ParamSpec, PrepareContext,
    ResolvedParams, Technique, TechniqueError, TechniqueModel, TechniquePoint,
};

/// See the [module docs](self).
pub struct ScpgTechnique;

const PARAMS: &[ParamSpec] = &[ParamSpec {
    name: "mode",
    doc: "duty-cycle policy: the stock 50 % clock (scpg) or the raised \
          maximum-duty clock (scpg_max)",
    kind: ParamKind::Choice {
        allowed: &["scpg", "scpg_max"],
        default: "scpg",
    },
}];

struct ScpgModel {
    analysis: ScpgAnalysis,
    mode: Mode,
    netlist: Netlist,
    cells: usize,
    area: scpg_units::Area,
    overhead_frac: f64,
}

impl Technique for ScpgTechnique {
    fn name(&self) -> &'static str {
        "scpg"
    }

    fn summary(&self) -> &'static str {
        "the paper's sub-clock power gating: header-gate the combinational \
         cloud inside every clock cycle"
    }

    fn params(&self) -> &'static [ParamSpec] {
        PARAMS
    }

    fn prepare(
        &self,
        ctx: &PrepareContext<'_>,
        params: &ResolvedParams,
    ) -> Result<Arc<dyn TechniqueModel>, TechniqueError> {
        let _span = scpg_trace::Span::start("technique_prepare");
        ensure_untransformed(self.name(), ctx.baseline)?;
        let mode = match params.choice("mode") {
            "scpg_max" => Mode::ScpgMax,
            _ => Mode::Scpg,
        };
        // Identical construction to `scpg::service::netlist_analysis`, so
        // the numbers are bit-identical to the sweep endpoint's.
        let design = ScpgTransform::new(ctx.lib)
            .apply(ctx.baseline, ctx.clock, &ScpgOptions::default())
            .map_err(|e| match e {
                ScpgError::NothingToGate | ScpgError::NoSuchClock { .. } => {
                    TechniqueError::Unsupported(format!("SCPG transform failed: {e}"))
                }
                other => TechniqueError::Engine(format!("SCPG transform failed: {other}")),
            })?;
        let stats = design.netlist.stats(ctx.lib);
        let overhead_frac = design.area_overhead(ctx.baseline, ctx.lib);
        let analysis = ScpgAnalysis::new(ctx.lib, ctx.baseline, &design, ctx.e_dyn, ctx.corner)
            .map_err(|e| TechniqueError::Engine(format!("analysis build failed: {e}")))?;
        Ok(Arc::new(ScpgModel {
            analysis,
            mode,
            netlist: design.netlist,
            cells: stats.total(),
            area: stats.area,
            overhead_frac,
        }))
    }
}

impl TechniqueModel for ScpgModel {
    fn evaluate(&self, f: Frequency) -> TechniquePoint {
        let op = self.analysis.operating_point(f, self.mode);
        TechniquePoint {
            frequency: op.frequency,
            mode: op.mode.key().to_string(),
            duty: op.duty,
            power: op.power,
            energy_per_op: op.energy_per_op,
            gated: op.gated,
        }
    }

    fn area(&self) -> AreaReport {
        AreaReport {
            cells: self.cells,
            area: self.area,
            overhead_frac: self.overhead_frac,
        }
    }

    fn delay(&self) -> DelayReport {
        let timing = self.analysis.timing();
        DelayReport {
            min_period: timing.min_period,
            f_max: timing.f_max(),
        }
    }

    fn netlist(&self) -> &Netlist {
        &self.netlist
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use scpg_circuits::generate_multiplier;
    use scpg_liberty::{Library, PvtCorner};
    use scpg_units::Energy;

    /// The load-bearing guarantee of the whole compare feature: the
    /// technique's numbers ARE the library pipeline's numbers, bit for
    /// bit, in both duty modes.
    #[test]
    fn scpg_technique_is_bit_identical_to_direct_pipeline() {
        let lib = Library::ninety_nm();
        let (nl, _) = generate_multiplier(&lib, 8);
        let corner = PvtCorner::default();
        let e_dyn = Energy::from_pj(1.0);
        let direct =
            scpg::service::netlist_analysis(&lib, &nl, "clk", e_dyn, corner).expect("gates");
        let ctx = PrepareContext {
            lib: &lib,
            baseline: &nl,
            clock: "clk",
            e_dyn,
            corner,
        };
        let freqs = [
            Frequency::from_khz(10.0),
            Frequency::from_mhz(1.0),
            Frequency::from_mhz(40.0),
        ];
        for (key, mode) in [("scpg", Mode::Scpg), ("scpg_max", Mode::ScpgMax)] {
            let body = scpg_json::Json::parse(&format!(r#"{{"mode": "{key}"}}"#)).unwrap();
            let params = crate::resolve_params(ScpgTechnique.params(), Some(&body)).unwrap();
            let model = ScpgTechnique.prepare(&ctx, &params).unwrap();
            for &f in &freqs {
                let got = model.evaluate(f);
                let want = direct.operating_point(f, mode);
                assert_eq!(got.power, want.power, "{key} @ {f}");
                assert_eq!(got.energy_per_op, want.energy_per_op);
                assert_eq!(got.duty, want.duty);
                assert_eq!(got.gated, want.gated);
                assert_eq!(got.mode, want.mode.key());
            }
        }
    }

    #[test]
    fn flopless_design_is_unsupported_not_engine_error() {
        let lib = Library::ninety_nm();
        let mut nl = Netlist::new("flat");
        let a = nl.add_input("a");
        let y = nl.add_output("y");
        nl.add_instance("u", "INV_X1", &[a, y]).unwrap();
        let ctx = PrepareContext {
            lib: &lib,
            baseline: &nl,
            clock: "clk",
            e_dyn: Energy::from_pj(1.0),
            corner: PvtCorner::default(),
        };
        let params = crate::resolve_params(ScpgTechnique.params(), None).unwrap();
        let err = match ScpgTechnique.prepare(&ctx, &params) {
            Err(e) => e,
            Ok(_) => panic!("flopless design must be refused"),
        };
        assert!(matches!(err, TechniqueError::Unsupported(_)), "{err}");
    }
}
