//! The `lector` technique: LECTOR-style leakage control on flop input
//! stages.
//!
//! LECTOR (LEakage Control TransistOR, cf. arXiv 1805.07409) inserts a
//! pair of self-controlled stacked transistors into a gate's pull
//! network, keeping one of them near its cutoff region in every input
//! state. The stack effect raises the gate's effective threshold —
//! much less leakage — at the cost of a longer discharge path (slower)
//! and two extra transistors (larger).
//!
//! We model a LECTOR'd gate as a **derived library cell**
//! (`<base>__LCT`): the base cell with its threshold raised by
//! `vt_shift_mv` and its area scaled by ~1.15, registered on a cloned
//! library via [`Library::add_derived_cell`]. The transform substitutes
//! those cells on the last `stages` combinational levels feeding every
//! flop/latch data input — the multi-stage-flip-flop placement of the
//! reference work: the cells whose outputs must hold stable into a
//! setup window anyway, where the speed loss is cheapest.

use std::collections::{BTreeMap, BTreeSet, VecDeque};
use std::sync::Arc;

use scpg_liberty::CellKind;
use scpg_netlist::{DesignStats, InstId, NetId, Netlist};
use scpg_power::{LeakageReport, PowerAnalyzer};
use scpg_sta::TimingReport;
use scpg_units::{Energy, Frequency, Voltage};

use crate::{
    ensure_untransformed, AreaReport, DelayReport, ParamKind, ParamSpec, PrepareContext,
    ResolvedParams, Technique, TechniqueError, TechniqueModel, TechniquePoint,
};

/// See the [module docs](self).
pub struct LectorTechnique;

/// Area cost of the two leakage-control transistors, as a factor on the
/// base cell's area (the reference work reports 10–20 % per gate).
const LECTOR_AREA_FACTOR: f64 = 1.15;

const PARAMS: &[ParamSpec] = &[
    ParamSpec {
        name: "stages",
        doc: "how many combinational levels feeding each flop data input \
              are converted to leakage-controlled cells",
        kind: ParamKind::Int {
            min: 1,
            max: 8,
            default: 2,
        },
    },
    ParamSpec {
        name: "vt_shift_mv",
        doc: "effective threshold raise of a leakage-controlled cell, in \
              millivolts",
        kind: ParamKind::Int {
            min: 10,
            max: 200,
            default: 60,
        },
    },
];

/// Cells eligible for LECTOR conversion: plain logic, not ties or
/// isolation circuitry.
fn is_convertible(kind: CellKind) -> bool {
    kind.is_combinational()
        && !matches!(
            kind,
            CellKind::TieHi
                | CellKind::TieLo
                | CellKind::IsoAnd
                | CellKind::IsoOr
                | CellKind::IsoCtl
        )
}

pub(crate) struct LectorModel {
    netlist: Netlist,
    stats: DesignStats,
    leak: LeakageReport,
    timing: TimingReport,
    e_dyn: Energy,
    overhead_frac: f64,
}

impl Technique for LectorTechnique {
    fn name(&self) -> &'static str {
        "lector"
    }

    fn summary(&self) -> &'static str {
        "LECTOR-style leakage control: swap the flop-feeding logic stages \
         for stacked-transistor cells with a raised effective threshold"
    }

    fn params(&self) -> &'static [ParamSpec] {
        PARAMS
    }

    fn prepare(
        &self,
        ctx: &PrepareContext<'_>,
        params: &ResolvedParams,
    ) -> Result<Arc<dyn TechniqueModel>, TechniqueError> {
        let _span = scpg_trace::Span::start("technique_prepare");
        ensure_untransformed(self.name(), ctx.baseline)?;
        let lib = ctx.lib;
        ctx.baseline
            .validate(lib)
            .map_err(|e| TechniqueError::Engine(format!("netlist validation failed: {e}")))?;
        let stages = params.int("stages") as usize;
        let dv = Voltage::from_mv(params.int("vt_shift_mv") as f64);

        // Walk backwards from every flop/latch data input, collecting the
        // combinational cells on the last `stages` levels.
        let conn = ctx
            .baseline
            .connectivity(lib)
            .map_err(|e| TechniqueError::Engine(format!("{e}")))?;
        let mut frontier: VecDeque<(NetId, usize)> = VecDeque::new();
        for (_, inst) in ctx.baseline.iter_instances() {
            let cell = lib.expect_cell(inst.cell());
            if !cell.kind().is_sequential() {
                continue;
            }
            for (pin, name) in cell.kind().input_names().iter().enumerate() {
                if *name == "D" {
                    frontier.push_back((inst.connections()[pin], 0));
                }
            }
        }
        let mut covered: BTreeSet<InstId> = BTreeSet::new();
        let mut seen: BTreeSet<(NetId, usize)> = BTreeSet::new();
        while let Some((net, depth)) = frontier.pop_front() {
            if depth >= stages || !seen.insert((net, depth)) {
                continue;
            }
            let Some(driver) = conn.driver(net) else {
                continue;
            };
            let inst = ctx.baseline.instance(driver.inst);
            let kind = lib.expect_cell(inst.cell()).kind();
            if !is_convertible(kind) {
                continue;
            }
            covered.insert(driver.inst);
            for pin in 0..kind.num_inputs() {
                frontier.push_back((inst.connections()[pin], depth + 1));
            }
        }
        if covered.is_empty() {
            return Err(TechniqueError::Unsupported(
                "no combinational cells feed a flop data input (nothing to convert)".to_string(),
            ));
        }

        // Derive the leakage-controlled variants on a cloned library and
        // substitute them in place.
        let mut lct_lib = lib.clone();
        let mut derived: BTreeMap<String, String> = BTreeMap::new();
        for &id in &covered {
            let base = ctx.baseline.instance(id).cell().to_string();
            if !derived.contains_key(&base) {
                let name = format!("{base}__LCT");
                lct_lib
                    .add_derived_cell(&base, &name, dv, LECTOR_AREA_FACTOR)
                    .map_err(TechniqueError::Engine)?;
                derived.insert(base.clone(), name);
            }
        }
        let mut out = ctx.baseline.clone();
        for &id in &covered {
            let base = out.instance(id).cell().to_string();
            out.set_cell(id, derived[&base].clone());
        }
        out.validate(&lct_lib)
            .map_err(|e| TechniqueError::Engine(format!("transformed netlist invalid: {e}")))?;

        let leak = PowerAnalyzer::new(&out, &lct_lib, ctx.corner)
            .map_err(|e| TechniqueError::Engine(format!("power analysis failed: {e}")))?
            .leakage(None);
        let timing = scpg_sta::analyze(&out, &lct_lib, ctx.corner.voltage)
            .map_err(|e| TechniqueError::Engine(format!("timing analysis failed: {e}")))?;
        let stats = out.stats(&lct_lib);
        let overhead_frac = stats.area_overhead_vs(&ctx.baseline.stats(lib));
        Ok(Arc::new(LectorModel {
            netlist: out,
            stats,
            leak,
            timing,
            e_dyn: crate::baseline::scale_e_dyn(lib, ctx),
            overhead_frac,
        }))
    }
}

impl TechniqueModel for LectorModel {
    fn evaluate(&self, f: Frequency) -> TechniquePoint {
        // Static technique: no per-cycle state, just less leakage.
        let e_cycle = self.leak.total * f.period() + self.e_dyn;
        TechniquePoint {
            frequency: f,
            mode: "lector".to_string(),
            duty: 0.5,
            power: e_cycle * f,
            energy_per_op: e_cycle,
            gated: false,
        }
    }

    fn area(&self) -> AreaReport {
        AreaReport {
            cells: self.stats.total(),
            area: self.stats.area,
            overhead_frac: self.overhead_frac,
        }
    }

    fn delay(&self) -> DelayReport {
        DelayReport {
            min_period: self.timing.min_period,
            f_max: self.timing.f_max(),
        }
    }

    fn netlist(&self) -> &Netlist {
        &self.netlist
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use scpg_circuits::generate_multiplier;
    use scpg_json::Json;
    use scpg_liberty::{Library, PvtCorner};

    fn model(nl: &Netlist, lib: &Library, body: &str) -> Arc<dyn TechniqueModel> {
        let ctx = PrepareContext {
            lib,
            baseline: nl,
            clock: "clk",
            e_dyn: Energy::from_pj(2.3),
            corner: PvtCorner::default(),
        };
        let body = Json::parse(body).unwrap();
        let params = crate::resolve_params(LectorTechnique.params(), Some(&body)).unwrap();
        LectorTechnique.prepare(&ctx, &params).unwrap()
    }

    #[test]
    fn lector_swaps_flop_feeding_stages_only() {
        let lib = Library::ninety_nm();
        let (nl, _) = generate_multiplier(&lib, 8);
        let m = model(&nl, &lib, r#"{"stages": 1}"#);
        let out = m.netlist();
        let lct = out
            .instances()
            .iter()
            .filter(|i| i.cell().ends_with("__LCT"))
            .count();
        assert!(lct > 0, "some cells converted");
        assert!(
            lct < out.instances().len() / 2,
            "1-stage conversion stays local to the flops ({lct} cells)"
        );
        assert!(m.area().overhead_frac > 0.0);
    }

    #[test]
    fn deeper_coverage_converts_more_cells_and_leaks_less() {
        let lib = Library::ninety_nm();
        let (nl, _) = generate_multiplier(&lib, 8);
        let count = |m: &Arc<dyn TechniqueModel>| {
            m.netlist()
                .instances()
                .iter()
                .filter(|i| i.cell().ends_with("__LCT"))
                .count()
        };
        let shallow = model(&nl, &lib, r#"{"stages": 1}"#);
        let deep = model(&nl, &lib, r#"{"stages": 6}"#);
        assert!(count(&deep) > count(&shallow));
        let f = Frequency::from_khz(10.0);
        assert!(
            deep.evaluate(f).power.value() < shallow.evaluate(f).power.value(),
            "more coverage, less leakage"
        );
        // And the cost: deeper conversion is slower.
        assert!(deep.delay().f_max.value() <= shallow.delay().f_max.value());
    }

    #[test]
    fn flopless_design_is_unsupported() {
        let lib = Library::ninety_nm();
        let mut nl = Netlist::new("flat");
        let a = nl.add_input("a");
        let y = nl.add_output("y");
        nl.add_instance("u", "INV_X1", &[a, y]).unwrap();
        let ctx = PrepareContext {
            lib: &lib,
            baseline: &nl,
            clock: "clk",
            e_dyn: Energy::from_pj(1.0),
            corner: PvtCorner::default(),
        };
        let params = crate::resolve_params(LectorTechnique.params(), None).unwrap();
        let err = match LectorTechnique.prepare(&ctx, &params) {
            Err(e) => e,
            Ok(_) => panic!("flopless design must be refused"),
        };
        assert!(matches!(err, TechniqueError::Unsupported(_)), "{err}");
    }
}
