//! The `baseline` technique: the design exactly as handed in.
//!
//! No gating, no surgery — the reference every competitor is judged
//! against (the paper's "No Power Gating" column). Its per-cycle energy
//! is the whole design's leakage over the period plus the workload's
//! dynamic energy.

use std::sync::Arc;

use scpg_liberty::Library;
use scpg_netlist::{DesignStats, Netlist};
use scpg_power::{LeakageReport, PowerAnalyzer};
use scpg_sta::TimingReport;
use scpg_units::{Energy, Frequency};

use crate::{
    ensure_untransformed, AreaReport, DelayReport, ParamSpec, PrepareContext, ResolvedParams,
    Technique, TechniqueError, TechniqueModel, TechniquePoint,
};

/// See the [module docs](self).
pub struct BaselineTechnique;

/// Scales a workload energy measured at the characterisation supply down
/// to the corner supply (`∝ V²`), matching `ScpgAnalysis::new`.
pub(crate) fn scale_e_dyn(lib: &Library, ctx: &PrepareContext<'_>) -> Energy {
    let vr = ctx.corner.voltage.as_v() / lib.char_voltage().as_v();
    Energy::new(ctx.e_dyn.value() * vr * vr)
}

pub(crate) struct BaselineModel {
    netlist: Netlist,
    stats: DesignStats,
    leak: LeakageReport,
    timing: TimingReport,
    e_dyn: Energy,
}

impl Technique for BaselineTechnique {
    fn name(&self) -> &'static str {
        "baseline"
    }

    fn summary(&self) -> &'static str {
        "no gating: the always-on design as handed in (the reference column)"
    }

    fn params(&self) -> &'static [ParamSpec] {
        &[]
    }

    fn prepare(
        &self,
        ctx: &PrepareContext<'_>,
        _params: &ResolvedParams,
    ) -> Result<Arc<dyn TechniqueModel>, TechniqueError> {
        let _span = scpg_trace::Span::start("technique_prepare");
        ensure_untransformed(self.name(), ctx.baseline)?;
        ctx.baseline
            .validate(ctx.lib)
            .map_err(|e| TechniqueError::Engine(format!("netlist validation failed: {e}")))?;
        let leak = PowerAnalyzer::new(ctx.baseline, ctx.lib, ctx.corner)
            .map_err(|e| TechniqueError::Engine(format!("power analysis failed: {e}")))?
            .leakage(None);
        let timing = scpg_sta::analyze(ctx.baseline, ctx.lib, ctx.corner.voltage)
            .map_err(|e| TechniqueError::Engine(format!("timing analysis failed: {e}")))?;
        Ok(Arc::new(BaselineModel {
            netlist: ctx.baseline.clone(),
            stats: ctx.baseline.stats(ctx.lib),
            leak,
            timing,
            e_dyn: scale_e_dyn(ctx.lib, ctx),
        }))
    }
}

impl TechniqueModel for BaselineModel {
    fn evaluate(&self, f: Frequency) -> TechniquePoint {
        let e_cycle = self.leak.total * f.period() + self.e_dyn;
        TechniquePoint {
            frequency: f,
            mode: "no_pg".to_string(),
            duty: 0.5,
            power: e_cycle * f,
            energy_per_op: e_cycle,
            gated: false,
        }
    }

    fn area(&self) -> AreaReport {
        AreaReport {
            cells: self.stats.total(),
            area: self.stats.area,
            overhead_frac: 0.0,
        }
    }

    fn delay(&self) -> DelayReport {
        DelayReport {
            min_period: self.timing.min_period,
            f_max: self.timing.f_max(),
        }
    }

    fn netlist(&self) -> &Netlist {
        &self.netlist
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use scpg_circuits::generate_multiplier;
    use scpg_liberty::PvtCorner;

    #[test]
    fn baseline_power_is_leakage_plus_dynamic() {
        let lib = Library::ninety_nm();
        let (nl, _) = generate_multiplier(&lib, 8);
        let ctx = PrepareContext {
            lib: &lib,
            baseline: &nl,
            clock: "clk",
            e_dyn: Energy::from_pj(1.0),
            corner: PvtCorner::default(),
        };
        let params = crate::resolve_params(BaselineTechnique.params(), None).unwrap();
        let model = BaselineTechnique.prepare(&ctx, &params).unwrap();
        let f = Frequency::from_khz(100.0);
        let p = model.evaluate(f);
        assert_eq!(p.mode, "no_pg");
        assert!(!p.gated);
        // Power must exceed pure leakage (the dynamic term adds).
        let leak = PowerAnalyzer::new(&nl, &lib, PvtCorner::default())
            .unwrap()
            .leakage(None);
        assert!(p.power.value() > leak.total.value());
        assert_eq!(model.area().overhead_frac, 0.0);
    }
}
