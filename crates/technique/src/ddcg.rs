//! The `ddcg` technique: data-dependent clock gating.
//!
//! The dynamic-power competitor in the bake-off (cf. arXiv 1806.02271):
//! instead of starving idle logic of *supply* (SCPG, CTSG) or stacking
//! transistors (LECTOR), DDCG withholds the *clock* from the design's
//! flops in cycles where no flop input differs from its held state —
//! cycles in which clocking them would change nothing.
//!
//! The inserted integrated-clock-gating (ICG) network is structural:
//!
//! * one `XOR2` per flop comparing its `D` net against its `Q` net,
//! * an `OR2` fold tree reducing the per-flop difference bits to a
//!   single *any-flop-would-change* signal,
//! * the classical glitch-safe latch-AND gate: a transparent-low
//!   `LATCH` samples the enable while the clock is low (enable held via
//!   an `INV` of the clock), and an `AND2` merges it with the clock,
//! * every flop's `CK` pin rewired to the gated clock.
//!
//! The enable probability is *measured*, not assumed: `prepare` runs the
//! settled-simulation activity extractor ([`scpg::extract_activity`],
//! bit-parallel when the design levelizes) over seeded random stimulus
//! on the **baseline** netlist and derives the per-cycle probability
//! that at least one of `n` flops toggles from the observed per-net
//! switching probability. Unlike the power-gating techniques DDCG saves
//! clock-pin dynamic energy rather than leakage, so its [`TechniquePoint`]s
//! report `gated: false` — at harvester frequencies leakage dominates
//! and DDCG deliberately loses to SCPG, which is the comparison the
//! bake-off exists to make.

use std::sync::Arc;

use scpg_liberty::CellKind;
use scpg_netlist::{InstId, NetId, Netlist};
use scpg_power::{LeakageReport, PowerAnalyzer};
use scpg_sta::TimingReport;
use scpg_units::{Energy, Frequency};

use crate::{
    ensure_untransformed, AreaReport, DelayReport, ParamKind, ParamSpec, PrepareContext,
    ResolvedParams, Technique, TechniqueError, TechniqueModel, TechniquePoint,
};

/// See the [module docs](self).
pub struct DdcgTechnique;

/// Fixed stimulus seed: the measured enable probability must be a pure
/// function of the design, not of when `prepare` ran.
const ACTIVITY_SEED: u64 = 0x5cb9_dd0c_90aa_11e7;

/// Stimulus lanes per activity run (64-bit words leave headroom).
const ACTIVITY_LANES: usize = 16;

const PARAMS: &[ParamSpec] = &[ParamSpec {
    name: "cycles",
    doc: "settled-simulation cycles per stimulus lane used to measure \
          the data-dependent enable probability",
    kind: ParamKind::Int {
        min: 16,
        max: 4096,
        default: 256,
    },
}];

pub(crate) struct DdcgModel {
    netlist: Netlist,
    leak: LeakageReport,
    timing: TimingReport,
    e_dyn: Energy,
    e_icg: Energy,
    e_save: Energy,
    p_en: f64,
    cells: usize,
    area: scpg_units::Area,
    overhead_frac: f64,
}

impl Technique for DdcgTechnique {
    fn name(&self) -> &'static str {
        "ddcg"
    }

    fn summary(&self) -> &'static str {
        "data-dependent clock gating: withhold the clock from flops in \
         cycles where no flop input differs from its held state"
    }

    fn params(&self) -> &'static [ParamSpec] {
        PARAMS
    }

    fn prepare(
        &self,
        ctx: &PrepareContext<'_>,
        params: &ResolvedParams,
    ) -> Result<Arc<dyn TechniqueModel>, TechniqueError> {
        let _span = scpg_trace::Span::start("technique_prepare");
        ensure_untransformed(self.name(), ctx.baseline)?;
        let lib = ctx.lib;
        ctx.baseline
            .validate(lib)
            .map_err(|e| TechniqueError::Engine(format!("netlist validation failed: {e}")))?;

        // Flops to gate: (id, D net, Q net). Both kit flops put `CK` at
        // input pin 1 (`Dff`: [D, CK], `DffR`: [D, CK, RN]).
        let mut flops: Vec<(InstId, NetId, NetId)> = Vec::new();
        for (id, inst) in ctx.baseline.iter_instances() {
            let Some(cell) = lib.cell(inst.cell()) else {
                continue;
            };
            if matches!(cell.kind(), CellKind::Dff | CellKind::DffR) {
                let conns = inst.connections();
                flops.push((id, conns[0], conns[cell.kind().num_inputs()]));
            }
        }
        if flops.is_empty() {
            return Err(TechniqueError::Unsupported(
                "design has no flops to clock-gate".to_string(),
            ));
        }

        // Measure switching activity on the untouched baseline: the
        // enable rate is a property of the data, not of the ICG network.
        let cycles = params.int("cycles") as usize;
        let compiled = scpg_sim::CompiledNetlist::compile(ctx.baseline, lib, ctx.corner)
            .map_err(|e| TechniqueError::Engine(format!("activity compile failed: {e}")))?;
        let activity = scpg::extract_activity(
            &compiled,
            ctx.clock,
            cycles,
            ACTIVITY_LANES,
            ACTIVITY_SEED,
            scpg_sim::EngineChoice::Auto,
        )
        .map_err(|e| TechniqueError::Engine(format!("activity extraction failed: {e}")))?;
        let p_q = activity.switching_probability.clamp(0.0, 1.0);

        let mut out = ctx.baseline.clone();
        let clk = out
            .net_by_name(ctx.clock)
            .ok_or_else(|| TechniqueError::Unsupported(format!("no net named `{}`", ctx.clock)))?;
        let cell_of = |kind: CellKind| -> Result<String, TechniqueError> {
            lib.cell_of_kind(kind)
                .map(|c| c.name().to_string())
                .ok_or_else(|| TechniqueError::Engine(format!("library lacks a {kind:?} cell")))
        };
        let xor2 = cell_of(CellKind::Xor2)?;
        let or2 = cell_of(CellKind::Or2)?;
        let inv = cell_of(CellKind::Inv)?;
        let latch = cell_of(CellKind::Latch)?;
        let and2 = cell_of(CellKind::And2)?;
        let badnl = |e: scpg_netlist::NetlistError| TechniqueError::Engine(format!("{e}"));

        // Per-flop difference bits, then an OR fold to one wire.
        let mut level: Vec<NetId> = Vec::with_capacity(flops.len());
        for (i, &(_, d, q)) in flops.iter().enumerate() {
            let x = out.add_net(format!("ddcg_x_{i}"));
            out.add_instance(format!("ddcg_xor_{i}"), xor2.clone(), &[d, q, x])
                .map_err(badnl)?;
            level.push(x);
        }
        let mut or_count = 0usize;
        while level.len() > 1 {
            let mut next = Vec::with_capacity(level.len().div_ceil(2));
            for pair in level.chunks(2) {
                if let [a, b] = *pair {
                    let y = out.add_net(format!("ddcg_or_{or_count}"));
                    out.add_instance(format!("ddcg_org_{or_count}"), or2.clone(), &[a, b, y])
                        .map_err(badnl)?;
                    or_count += 1;
                    next.push(y);
                } else {
                    next.push(pair[0]);
                }
            }
            level = next;
        }
        // Glitch-safe gate: latch transparent while the clock is low.
        let clkn = out.add_net("ddcg_clkn");
        out.add_instance("ddcg_clkinv", inv.clone(), &[clk, clkn])
            .map_err(badnl)?;
        let en = out.add_net("ddcg_en");
        out.add_instance("ddcg_latch", latch.clone(), &[level[0], clkn, en])
            .map_err(badnl)?;
        let gclk = out.add_net("ddcg_gclk");
        out.add_instance("ddcg_and", and2.clone(), &[clk, en, gclk])
            .map_err(badnl)?;
        for &(id, _, _) in &flops {
            out.rewire_pin(id, 1, gclk);
        }
        out.validate(lib)
            .map_err(|e| TechniqueError::Engine(format!("transformed netlist invalid: {e}")))?;

        let e_dyn = crate::baseline::scale_e_dyn(lib, ctx);
        let timing = scpg_sta::analyze(&out, lib, ctx.corner.voltage)
            .map_err(|e| TechniqueError::Engine(format!("timing analysis failed: {e}")))?;
        let leak = PowerAnalyzer::new(&out, lib, ctx.corner)
            .map_err(|e| TechniqueError::Engine(format!("power analysis failed: {e}")))?
            .leakage(None);

        // Energy bookkeeping, all per cycle at the corner voltage.
        let v = ctx.corner.voltage;
        let n = flops.len() as f64;
        // P(at least one flop would change) from the measured per-net
        // toggle probability, flop inputs approximated as independent.
        let p_en = 1.0 - (1.0 - p_q).powf(n);
        // Clock-pin energy: one rise + one fall of CV² per flop per
        // clocked cycle; gating recovers it in the (1 - p_en) quiet ones.
        let e_clk: f64 = flops
            .iter()
            .map(|&(id, _, _)| {
                let cap = lib.expect_cell(out.instance(id).cell()).input_cap();
                cap.value() * v.as_v() * v.as_v()
            })
            .sum();
        let e_save = Energy::new(e_clk * (1.0 - p_en));
        // What the ICG network itself burns: XORs follow the data, the
        // OR tree and the AND follow the enable, the inverter pays every
        // cycle and the latch only moves when the enable does.
        let wc = lib.wire_cap();
        let e_icg = Energy::new(
            lib.expect_cell(&xor2).switching_energy(v, wc).value() * p_q * n
                + lib.expect_cell(&or2).switching_energy(v, wc).value() * p_en * or_count as f64
                + lib.expect_cell(&inv).switching_energy(v, wc).value()
                + lib.expect_cell(&latch).switching_energy(v, wc).value() * p_en
                + lib.expect_cell(&and2).switching_energy(v, wc).value() * p_en,
        );

        let stats = out.stats(lib);
        let overhead_frac = stats.area_overhead_vs(&ctx.baseline.stats(lib));
        Ok(Arc::new(DdcgModel {
            netlist: out,
            leak,
            timing,
            e_dyn,
            e_icg,
            e_save,
            p_en,
            cells: stats.total(),
            area: stats.area,
            overhead_frac,
        }))
    }
}

impl TechniqueModel for DdcgModel {
    fn evaluate(&self, f: Frequency) -> TechniquePoint {
        let period = f.period();
        // Leakage runs the whole period — DDCG never collapses a rail —
        // and the saving is confined to the dynamic term, floored at
        // zero: gating cannot make switching energy negative.
        let dynamic = (self.e_dyn.value() + self.e_icg.value() - self.e_save.value()).max(0.0);
        let e_cycle = self.leak.total * period + Energy::new(dynamic);
        TechniquePoint {
            frequency: f,
            mode: "ddcg".to_string(),
            duty: self.p_en,
            power: e_cycle * f,
            energy_per_op: e_cycle,
            gated: false,
        }
    }

    fn area(&self) -> AreaReport {
        AreaReport {
            cells: self.cells,
            area: self.area,
            overhead_frac: self.overhead_frac,
        }
    }

    fn delay(&self) -> DelayReport {
        DelayReport {
            min_period: self.timing.min_period,
            f_max: self.timing.f_max(),
        }
    }

    fn netlist(&self) -> &Netlist {
        &self.netlist
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use scpg_circuits::generate_multiplier;
    use scpg_liberty::{Library, PvtCorner};

    fn prepare(nl: &Netlist, lib: &Library) -> Arc<dyn TechniqueModel> {
        let ctx = PrepareContext {
            lib,
            baseline: nl,
            clock: "clk",
            e_dyn: Energy::from_pj(2.3),
            corner: PvtCorner::default(),
        };
        let params = crate::resolve_params(DdcgTechnique.params(), None).unwrap();
        DdcgTechnique.prepare(&ctx, &params).unwrap()
    }

    #[test]
    fn every_flop_is_rewired_to_the_gated_clock() {
        let lib = Library::ninety_nm();
        let (nl, _) = generate_multiplier(&lib, 8);
        let model = prepare(&nl, &lib);
        let out = model.netlist();
        let gclk = out.net_by_name("ddcg_gclk").unwrap();
        let mut flops = 0;
        for (_, inst) in out.iter_instances() {
            let kind = lib.expect_cell(inst.cell()).kind();
            if matches!(
                kind,
                scpg_liberty::CellKind::Dff | scpg_liberty::CellKind::DffR
            ) {
                assert_eq!(inst.connections()[1], gclk, "flop `{}` CK", inst.name());
                flops += 1;
            }
        }
        assert!(flops > 0, "multiplier has flops");
        // One XOR per flop, one latch-AND gate, marker instances present.
        assert!(out.instance_by_name("ddcg_and").is_some());
        assert!(out.instance_by_name("ddcg_latch").is_some());
        assert!(out
            .instance_by_name(&format!("ddcg_xor_{}", flops - 1))
            .is_some());
        assert!(model.area().overhead_frac > 0.0, "ICG network costs area");
    }

    #[test]
    fn enable_rate_is_measured_and_savings_stay_physical() {
        let lib = Library::ninety_nm();
        let (nl, _) = generate_multiplier(&lib, 8);
        let model = prepare(&nl, &lib);
        let f = Frequency::from_mhz(10.0);
        let p = model.evaluate(f);
        assert_eq!(p.mode, "ddcg");
        assert!(!p.gated, "ddcg saves clock energy, not leakage");
        assert!(
            (0.0..=1.0).contains(&p.duty),
            "duty = P(enable) = {}",
            p.duty
        );
        assert!(p.power.value() > 0.0 && p.energy_per_op.value() > 0.0);
        // Energy per op can never drop below the leakage floor.
        let floor = model.evaluate(f).energy_per_op.value();
        assert!(floor >= 0.0);
        // Determinism: a second prepare measures the same enable rate.
        let again = prepare(&nl, &lib).evaluate(f);
        assert_eq!(again.duty, p.duty);
        assert_eq!(again.power, p.power);
    }
}
