//! Pluggable low-power technique framework.
//!
//! SCPG's headline result (paper Fig. 8) is a *comparison*: sub-clock
//! power gating versus a conventional always-on design across frequency.
//! The related work maps a whole design space around that comparison —
//! cluster-based tunable sleep-transistor gating, LECTOR-style leakage
//! control — and the repo already owns all the netlist-surgery machinery
//! each competitor needs. This crate turns that into a first-class
//! abstraction:
//!
//! * [`Technique`] — a named, parameterised low-power scheme: it rewrites
//!   a baseline netlist and produces a [`TechniqueModel`] answering
//!   power/energy at any frequency plus area and delay rollups.
//! * [`TechniqueRegistry`] — the set of registered techniques; the
//!   serving layer's `POST /v1/compare` iterates it to run a bake-off.
//!
//! Registered implementations:
//!
//! | name       | scheme                                               |
//! |------------|------------------------------------------------------|
//! | `baseline` | no gating: the design as handed in                   |
//! | `scpg`     | the paper's sub-clock power gating pipeline          |
//! | `ctsg`     | cluster-based tunable sleep-transistor gating        |
//! | `ddcg`     | data-dependent clock gating on the flop bank         |
//! | `lector`   | LECTOR-style leakage control on flop input stages    |
//!
//! # Transform invariants
//!
//! Every technique's rewrite leaves recognisable **markers** in its
//! output: control instances prefixed `scpg_`/`ctsg_`/`ddcg_`, derived cells
//! suffixed `__LCT`, instances tagged [`Domain::Gated`]. Every technique
//! — including `baseline` — refuses an input that carries any marker
//! ([`TechniqueError::AlreadyTransformed`]), so a transformed netlist can
//! never be silently double-gated; the serving layer surfaces the
//! refusal as a structured 422.
//!
//! [`Domain::Gated`]: scpg_netlist::Domain::Gated

#![warn(missing_docs)]

use std::collections::BTreeMap;
use std::sync::Arc;

use scpg_json::Json;
use scpg_liberty::{Library, PvtCorner};
use scpg_netlist::{Domain, Netlist};
use scpg_units::{Area, Energy, Frequency, Power, Time};

mod baseline;
mod ctsg;
mod ddcg;
mod lector;
mod scpg_impl;

pub use baseline::BaselineTechnique;
pub use ctsg::CtsgTechnique;
pub use ddcg::DdcgTechnique;
pub use lector::LectorTechnique;
pub use scpg_impl::ScpgTechnique;

/// Why a technique refused or failed.
#[derive(Debug, Clone, PartialEq)]
pub enum TechniqueError {
    /// The input netlist already carries a technique transform (see the
    /// crate-level transform invariants). Never applied twice.
    AlreadyTransformed {
        /// The technique that refused.
        technique: String,
        /// The marker found in the input (instance/cell name or domain
        /// tag) — machine-readable evidence for the 422 body.
        marker: String,
    },
    /// A request parameter failed validation against the schema.
    BadParams(String),
    /// The design shape is outside what the technique can handle (no
    /// clock, nothing to gate, no flop stages, ...).
    Unsupported(String),
    /// An engine stage (power, timing, rail solve) failed.
    Engine(String),
}

impl std::fmt::Display for TechniqueError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            TechniqueError::AlreadyTransformed { technique, marker } => write!(
                f,
                "{technique}: input netlist is already technique-transformed ({marker})"
            ),
            TechniqueError::BadParams(d) => write!(f, "bad technique params: {d}"),
            TechniqueError::Unsupported(d) => write!(f, "design unsupported: {d}"),
            TechniqueError::Engine(d) => write!(f, "technique engine failure: {d}"),
        }
    }
}

impl std::error::Error for TechniqueError {}

/// The type and constraints of one technique parameter.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum ParamKind {
    /// One of a fixed set of strings.
    Choice {
        /// The admissible values.
        allowed: &'static [&'static str],
        /// The value used when the parameter is omitted.
        default: &'static str,
    },
    /// An integer in an inclusive range.
    Int {
        /// Smallest admissible value.
        min: i64,
        /// Largest admissible value.
        max: i64,
        /// The value used when the parameter is omitted.
        default: i64,
    },
}

/// One entry of a technique's parameter schema.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct ParamSpec {
    /// Parameter name as it appears in request bodies.
    pub name: &'static str,
    /// One-line description for `GET /v1/designs` discovery.
    pub doc: &'static str,
    /// Type and constraints.
    pub kind: ParamKind,
}

/// A resolved parameter value.
#[derive(Debug, Clone, PartialEq)]
pub enum ParamValue {
    /// A [`ParamKind::Choice`] selection.
    Choice(String),
    /// A [`ParamKind::Int`] value.
    Int(i64),
}

/// A technique's parameters after defaulting and validation.
///
/// Values are stored in schema order, so [`ResolvedParams::canonical`] is
/// a stable cache-key component.
#[derive(Debug, Clone, PartialEq)]
pub struct ResolvedParams {
    values: Vec<(&'static str, ParamValue)>,
}

impl ResolvedParams {
    /// The resolved choice value of `name`.
    ///
    /// # Panics
    ///
    /// Panics when `name` is not a resolved choice parameter — resolve
    /// always materialises every schema entry, so this only fires on a
    /// technique-internal name/kind mismatch.
    pub fn choice(&self, name: &str) -> &str {
        match self.values.iter().find(|(n, _)| *n == name) {
            Some((_, ParamValue::Choice(s))) => s,
            other => panic!("param `{name}` is not a resolved choice ({other:?})"),
        }
    }

    /// The resolved integer value of `name`.
    ///
    /// # Panics
    ///
    /// As for [`ResolvedParams::choice`].
    pub fn int(&self, name: &str) -> i64 {
        match self.values.iter().find(|(n, _)| *n == name) {
            Some((_, ParamValue::Int(i))) => *i,
            other => panic!("param `{name}` is not a resolved int ({other:?})"),
        }
    }

    /// The canonical `name=value,...` form (schema order, defaults
    /// materialised) — the params component of compare cache keys.
    pub fn canonical(&self) -> String {
        let parts: Vec<String> = self
            .values
            .iter()
            .map(|(n, v)| match v {
                ParamValue::Choice(s) => format!("{n}={s}"),
                ParamValue::Int(i) => format!("{n}={i}"),
            })
            .collect();
        parts.join(",")
    }
}

/// Validates `given` (a JSON object or null) against `specs`, filling in
/// defaults for omitted parameters.
///
/// # Errors
///
/// [`TechniqueError::BadParams`] on unknown names, wrong types, values
/// outside the schema's range, or a non-object `given`.
pub fn resolve_params(
    specs: &'static [ParamSpec],
    given: Option<&Json>,
) -> Result<ResolvedParams, TechniqueError> {
    let mut supplied: BTreeMap<&str, &Json> = BTreeMap::new();
    if let Some(json) = given {
        if !json.is_null() {
            let Some(pairs) = json.as_object() else {
                return Err(TechniqueError::BadParams(
                    "params must be a JSON object".to_string(),
                ));
            };
            for (k, v) in pairs {
                supplied.insert(k.as_str(), v);
            }
        }
    }
    for name in supplied.keys() {
        if !specs.iter().any(|s| s.name == *name) {
            let known: Vec<&str> = specs.iter().map(|s| s.name).collect();
            return Err(TechniqueError::BadParams(format!(
                "unknown param `{name}` (known: {known:?})"
            )));
        }
    }
    let mut values = Vec::with_capacity(specs.len());
    for spec in specs {
        let value = match (spec.kind, supplied.get(spec.name)) {
            (ParamKind::Choice { default, .. }, None) => ParamValue::Choice(default.to_string()),
            (ParamKind::Choice { allowed, .. }, Some(j)) => {
                let Some(s) = j.as_str() else {
                    return Err(TechniqueError::BadParams(format!(
                        "param `{}` must be a string",
                        spec.name
                    )));
                };
                if !allowed.contains(&s) {
                    return Err(TechniqueError::BadParams(format!(
                        "param `{}` must be one of {allowed:?}, got `{s}`",
                        spec.name
                    )));
                }
                ParamValue::Choice(s.to_string())
            }
            (ParamKind::Int { default, .. }, None) => ParamValue::Int(default),
            (ParamKind::Int { min, max, .. }, Some(j)) => {
                let ok = j.as_f64().filter(|v| v.fract() == 0.0 && v.is_finite());
                let Some(v) = ok else {
                    return Err(TechniqueError::BadParams(format!(
                        "param `{}` must be an integer",
                        spec.name
                    )));
                };
                let v = v as i64;
                if v < min || v > max {
                    return Err(TechniqueError::BadParams(format!(
                        "param `{}` must be in {min}..={max}, got {v}",
                        spec.name
                    )));
                }
                ParamValue::Int(v)
            }
        };
        values.push((spec.name, value));
    }
    Ok(ResolvedParams { values })
}

/// A parameter schema rendered as JSON for `GET /v1/designs` discovery.
pub fn params_schema_json(specs: &[ParamSpec]) -> Json {
    Json::array(specs.iter().map(|s| match s.kind {
        ParamKind::Choice { allowed, default } => Json::object([
            ("name", Json::from(s.name)),
            ("doc", Json::from(s.doc)),
            ("type", Json::from("choice")),
            (
                "allowed",
                Json::array(allowed.iter().map(|&a| Json::from(a))),
            ),
            ("default", Json::from(default)),
        ]),
        ParamKind::Int { min, max, default } => Json::object([
            ("name", Json::from(s.name)),
            ("doc", Json::from(s.doc)),
            ("type", Json::from("int")),
            ("min", Json::from(min as f64)),
            ("max", Json::from(max as f64)),
            ("default", Json::from(default as f64)),
        ]),
    }))
}

/// Everything a technique needs to rewrite and model one design.
#[derive(Debug, Clone, Copy)]
pub struct PrepareContext<'a> {
    /// The cell library.
    pub lib: &'a Library,
    /// The untransformed design.
    pub baseline: &'a Netlist,
    /// The clock net's name.
    pub clock: &'a str,
    /// Measured workload dynamic energy per cycle (at the library's
    /// characterisation supply; techniques V²-scale to the corner).
    pub e_dyn: Energy,
    /// The operating corner.
    pub corner: PvtCorner,
}

/// One operating point of a technique's power model.
#[derive(Debug, Clone, PartialEq)]
pub struct TechniquePoint {
    /// Clock frequency.
    pub frequency: Frequency,
    /// The technique's mode key for this point (`"no_pg"`, `"scpg"`,
    /// `"ctsg"`, ... — falls back to an ungated key when timing forbids
    /// gating).
    pub mode: String,
    /// Clock duty cycle in effect.
    pub duty: f64,
    /// Average power.
    pub power: Power,
    /// Energy per operation (one per cycle).
    pub energy_per_op: Energy,
    /// Whether the technique's gating was actually active here.
    pub gated: bool,
}

/// Area rollup of a transformed design.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct AreaReport {
    /// Instance count after the transform.
    pub cells: usize,
    /// Total placed area after the transform.
    pub area: Area,
    /// Fractional area overhead versus the baseline (0.039 ⇒ "+3.9 %").
    pub overhead_frac: f64,
}

/// Delay rollup of a transformed design.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct DelayReport {
    /// Critical-path minimum clock period.
    pub min_period: Time,
    /// Maximum clock frequency.
    pub f_max: Frequency,
}

/// The prepared, evaluable form of one (design, technique, params)
/// triple. Evaluation is deterministic and side-effect free, so models
/// are safely shared across threads and cached by the serving layer.
pub trait TechniqueModel: Send + Sync {
    /// Computes the operating point at `f`.
    fn evaluate(&self, f: Frequency) -> TechniquePoint;
    /// Area after the transform.
    fn area(&self) -> AreaReport;
    /// Timing after the transform.
    fn delay(&self) -> DelayReport;
    /// The transformed netlist (the baseline itself for `baseline`).
    fn netlist(&self) -> &Netlist;
}

/// A named, parameterised low-power scheme.
pub trait Technique: Send + Sync {
    /// Stable registry name (`"scpg"`, ...).
    fn name(&self) -> &'static str;
    /// One-line description for discovery.
    fn summary(&self) -> &'static str;
    /// Parameter schema (empty when the technique takes none).
    fn params(&self) -> &'static [ParamSpec];
    /// Rewrites the baseline and builds the power/area/delay model.
    ///
    /// # Errors
    ///
    /// [`TechniqueError::AlreadyTransformed`] on marked inputs (see the
    /// crate-level invariants), [`TechniqueError::Unsupported`] on
    /// design shapes the scheme cannot handle, and
    /// [`TechniqueError::Engine`] on analysis failures.
    fn prepare(
        &self,
        ctx: &PrepareContext<'_>,
        params: &ResolvedParams,
    ) -> Result<Arc<dyn TechniqueModel>, TechniqueError>;
}

/// Scans a netlist for technique-transform markers: `scpg_`/`ctsg_`/
/// `ddcg_` instance prefixes, `__LCT` cell suffixes, [`Domain::Gated`]
/// tags. Returns a human/machine-readable account of the first marker
/// found.
pub fn detect_transform_marker(nl: &Netlist) -> Option<String> {
    for inst in nl.instances() {
        if inst.name().starts_with("scpg_") {
            return Some(format!("scpg control instance `{}`", inst.name()));
        }
        if inst.name().starts_with("ctsg_") {
            return Some(format!("ctsg control instance `{}`", inst.name()));
        }
        if inst.name().starts_with("ddcg_") {
            return Some(format!("ddcg control instance `{}`", inst.name()));
        }
        if inst.cell().ends_with("__LCT") {
            return Some(format!(
                "lector-derived cell `{}` on instance `{}`",
                inst.cell(),
                inst.name()
            ));
        }
        if inst.domain() == Domain::Gated {
            return Some(format!("gated domain tag on instance `{}`", inst.name()));
        }
    }
    None
}

/// The shared idempotence guard: every technique calls this first.
///
/// # Errors
///
/// [`TechniqueError::AlreadyTransformed`] naming the marker.
pub fn ensure_untransformed(technique: &str, nl: &Netlist) -> Result<(), TechniqueError> {
    match detect_transform_marker(nl) {
        Some(marker) => Err(TechniqueError::AlreadyTransformed {
            technique: technique.to_string(),
            marker,
        }),
        None => Ok(()),
    }
}

/// The set of registered techniques, iterated in registration order.
pub struct TechniqueRegistry {
    list: Vec<Box<dyn Technique>>,
}

impl TechniqueRegistry {
    /// The standard kit: `baseline`, `scpg`, `ctsg`, `ddcg`, `lector`.
    pub fn standard() -> Self {
        Self {
            list: vec![
                Box::new(BaselineTechnique),
                Box::new(ScpgTechnique),
                Box::new(CtsgTechnique),
                Box::new(DdcgTechnique),
                Box::new(LectorTechnique),
            ],
        }
    }

    /// An empty registry (extend with [`TechniqueRegistry::register`]).
    pub fn empty() -> Self {
        Self { list: Vec::new() }
    }

    /// Adds a technique. Registration order is iteration order; a name
    /// collision replaces the earlier entry (latest wins).
    pub fn register(&mut self, t: Box<dyn Technique>) {
        self.list.retain(|e| e.name() != t.name());
        self.list.push(t);
    }

    /// Looks a technique up by name.
    pub fn get(&self, name: &str) -> Option<&dyn Technique> {
        self.list.iter().find(|t| t.name() == name).map(|t| &**t)
    }

    /// Iterates techniques in registration order.
    pub fn iter(&self) -> impl Iterator<Item = &dyn Technique> {
        self.list.iter().map(|t| &**t)
    }

    /// Registered names in order.
    pub fn names(&self) -> Vec<&'static str> {
        self.list.iter().map(|t| t.name()).collect()
    }

    /// Number of registered techniques.
    pub fn len(&self) -> usize {
        self.list.len()
    }

    /// Whether the registry is empty.
    pub fn is_empty(&self) -> bool {
        self.list.is_empty()
    }
}

impl Default for TechniqueRegistry {
    fn default() -> Self {
        Self::standard()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use scpg_circuits::generate_multiplier;

    fn ctx<'a>(lib: &'a Library, nl: &'a Netlist) -> PrepareContext<'a> {
        PrepareContext {
            lib,
            baseline: nl,
            clock: "clk",
            e_dyn: Energy::from_pj(2.3),
            corner: PvtCorner::default(),
        }
    }

    #[test]
    fn standard_registry_has_four_techniques() {
        let reg = TechniqueRegistry::standard();
        assert_eq!(reg.names(), ["baseline", "scpg", "ctsg", "ddcg", "lector"]);
        assert!(reg.get("scpg").is_some());
        assert!(reg.get("nope").is_none());
    }

    #[test]
    fn params_resolve_defaults_and_reject_bad_values() {
        let reg = TechniqueRegistry::standard();
        let ctsg = reg.get("ctsg").unwrap();
        let p = resolve_params(ctsg.params(), None).unwrap();
        assert_eq!(p.canonical(), "clusters=4,header=auto");

        let body = Json::parse(r#"{"clusters": 2, "header": "x4"}"#).unwrap();
        let p = resolve_params(ctsg.params(), Some(&body)).unwrap();
        assert_eq!(p.int("clusters"), 2);
        assert_eq!(p.choice("header"), "x4");
        assert_eq!(p.canonical(), "clusters=2,header=x4");

        for bad in [
            r#"{"clusters": 0}"#,
            r#"{"clusters": 2.5}"#,
            r#"{"header": "x3"}"#,
            r#"{"unknown": 1}"#,
            r#"[1]"#,
        ] {
            let body = Json::parse(bad).unwrap();
            assert!(
                matches!(
                    resolve_params(ctsg.params(), Some(&body)),
                    Err(TechniqueError::BadParams(_))
                ),
                "{bad} must be rejected"
            );
        }
    }

    #[test]
    fn schema_json_lists_every_param() {
        let reg = TechniqueRegistry::standard();
        let schema = params_schema_json(reg.get("lector").unwrap().params());
        let arr = schema.as_array().unwrap();
        assert_eq!(arr.len(), 2);
        assert_eq!(arr[0].get("name").unwrap().as_str(), Some("stages"));
        assert_eq!(arr[0].get("type").unwrap().as_str(), Some("int"));
    }

    #[test]
    fn every_technique_evaluates_the_multiplier() {
        let lib = Library::ninety_nm();
        let (nl, _) = generate_multiplier(&lib, 8);
        let reg = TechniqueRegistry::standard();
        let f = Frequency::from_khz(100.0);
        for tech in reg.iter() {
            let params = resolve_params(tech.params(), None).unwrap();
            let model = tech.prepare(&ctx(&lib, &nl), &params).unwrap();
            let point = model.evaluate(f);
            assert!(
                point.power.value() > 0.0,
                "{}: power must be positive",
                tech.name()
            );
            assert!(point.energy_per_op.value() > 0.0);
            assert_eq!(point.frequency, f);
            let area = model.area();
            assert!(area.cells > 0);
            assert!(area.area.value() > 0.0);
            let delay = model.delay();
            assert!(delay.f_max.value() > 0.0);
            assert!(delay.min_period.value() > 0.0);
        }
    }

    #[test]
    fn gating_techniques_beat_baseline_at_low_frequency() {
        let lib = Library::ninety_nm();
        let (nl, _) = generate_multiplier(&lib, 8);
        let reg = TechniqueRegistry::standard();
        let f = Frequency::from_khz(10.0);
        let c = ctx(&lib, &nl);
        let eval = |name: &str| {
            let t = reg.get(name).unwrap();
            let p = resolve_params(t.params(), None).unwrap();
            t.prepare(&c, &p).unwrap().evaluate(f)
        };
        let base = eval("baseline");
        let scpg = eval("scpg");
        let ctsg = eval("ctsg");
        let lector = eval("lector");
        assert!(scpg.gated, "scpg gates at 10 kHz");
        assert!(ctsg.gated, "ctsg gates at 10 kHz");
        assert!(
            scpg.power.value() < base.power.value(),
            "scpg {} vs base {}",
            scpg.power,
            base.power
        );
        assert!(
            ctsg.power.value() < base.power.value(),
            "ctsg {} vs base {}",
            ctsg.power,
            base.power
        );
        assert!(
            lector.power.value() < base.power.value(),
            "lector leaks less: {} vs {}",
            lector.power,
            base.power
        );
    }

    /// Every technique rejects every technique's transformed output —
    /// the idempotence invariant behind the serving layer's 422.
    #[test]
    fn transforms_are_idempotent_safe_pairwise() {
        let lib = Library::ninety_nm();
        let (nl, _) = generate_multiplier(&lib, 4);
        let reg = TechniqueRegistry::standard();
        let c = ctx(&lib, &nl);
        for first in reg.iter() {
            if first.name() == "baseline" {
                continue; // identity transform: output carries no marker
            }
            let params = resolve_params(first.params(), None).unwrap();
            let model = first.prepare(&c, &params).unwrap();
            let transformed = model.netlist().clone();
            assert!(
                detect_transform_marker(&transformed).is_some(),
                "{} output must carry a marker",
                first.name()
            );
            for second in reg.iter() {
                let p2 = resolve_params(second.params(), None).unwrap();
                let ctx2 = PrepareContext {
                    baseline: &transformed,
                    ..c
                };
                let err = match second.prepare(&ctx2, &p2) {
                    Err(e) => e,
                    Ok(_) => panic!(
                        "{} accepted {}-transformed input",
                        second.name(),
                        first.name()
                    ),
                };
                assert!(
                    matches!(err, TechniqueError::AlreadyTransformed { .. }),
                    "{} on {}-transformed input: {err}",
                    second.name(),
                    first.name()
                );
            }
        }
    }

    #[test]
    fn marker_detection_spots_each_marker_kind() {
        let mut nl = Netlist::new("t");
        let a = nl.add_input("a");
        let y = nl.add_output("y");
        nl.add_instance("u0", "INV_X1", &[a, y]).unwrap();
        assert_eq!(detect_transform_marker(&nl), None);

        let mut tagged = nl.clone();
        let id = tagged.instance_by_name("u0").unwrap();
        tagged.set_domain(id, Domain::Gated);
        assert!(detect_transform_marker(&tagged).unwrap().contains("gated"));

        let mut lct = nl.clone();
        let id = lct.instance_by_name("u0").unwrap();
        lct.set_cell(id, "INV_X1__LCT");
        assert!(detect_transform_marker(&lct).unwrap().contains("__LCT"));

        for prefix in ["scpg_x", "ctsg_x", "ddcg_x"] {
            let mut named = nl.clone();
            let b = named.add_fresh_net();
            named.add_instance(prefix, "INV_X1", &[y, b]).unwrap();
            assert!(detect_transform_marker(&named).is_some(), "{prefix}");
        }
    }
}
