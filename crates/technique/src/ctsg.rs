//! The `ctsg` technique: cluster-based tunable sleep-transistor gating.
//!
//! The classical coarse-grained competitor to SCPG (cf. arXiv
//! 1310.3203): the combinational cloud is partitioned into clusters,
//! each powered through its **own** sleep header sized to that cluster's
//! electrical profile — smaller clusters draw smaller in-rush spikes and
//! tolerate smaller (cheaper, less leaky) headers, at the cost of one
//! header's gate-switching energy per cluster per cycle.
//!
//! The control scheme mirrors SCPG so the comparison isolates the
//! *clustering* decision: one shared `clock AND override_n` sleep
//! signal, per-cluster headers and virtual rails, the Fig. 3 adaptive
//! isolation controller sensing rail 0, and an AND-clamp on every
//! gated→always-on crossing. Per-cluster sizing reuses the
//! `scpg-analog` rail solver ([`recommend_header`]).

use std::sync::Arc;

use scpg::duty::DutyPlanner;
use scpg_analog::{recommend_header, DomainProfile, GatingCycle, RailModel, SizingConstraints};
use scpg_liberty::{CellKind, HeaderCell, HeaderSize};
use scpg_netlist::{Domain, InstId, Netlist, PortDirection};
use scpg_power::{LeakageReport, PowerAnalyzer};
use scpg_sta::TimingReport;
use scpg_units::{Capacitance, Current, Energy, Frequency, Time, Voltage};

use crate::{
    ensure_untransformed, AreaReport, DelayReport, ParamKind, ParamSpec, PrepareContext,
    ResolvedParams, Technique, TechniqueError, TechniqueModel, TechniquePoint,
};

/// See the [module docs](self).
pub struct CtsgTechnique;

const PARAMS: &[ParamSpec] = &[
    ParamSpec {
        name: "clusters",
        doc: "number of independently-headered clusters the combinational \
              cloud is partitioned into",
        kind: ParamKind::Int {
            min: 1,
            max: 8,
            default: 4,
        },
    },
    ParamSpec {
        name: "header",
        doc: "per-cluster header size: auto picks the smallest acceptable \
              size per cluster via the rail solver",
        kind: ParamKind::Choice {
            allowed: &["auto", "x1", "x2", "x4", "x8"],
            default: "auto",
        },
    },
];

/// Same predicate as the SCPG transform: pure-logic cells, excluding
/// ties and isolation circuitry.
fn is_gateable(kind: CellKind) -> bool {
    kind.is_combinational()
        && !matches!(
            kind,
            CellKind::TieHi
                | CellKind::TieLo
                | CellKind::IsoAnd
                | CellKind::IsoOr
                | CellKind::IsoCtl
        )
}

struct Cluster {
    rail: RailModel,
}

pub(crate) struct CtsgModel {
    netlist: Netlist,
    leak: LeakageReport,
    timing: TimingReport,
    planner: DutyPlanner,
    clusters: Vec<Cluster>,
    e_dyn: Energy,
    e_iso: Energy,
    cells: usize,
    area: scpg_units::Area,
    overhead_frac: f64,
}

impl Technique for CtsgTechnique {
    fn name(&self) -> &'static str {
        "ctsg"
    }

    fn summary(&self) -> &'static str {
        "cluster-based tunable sleep-transistor gating: per-cluster headers \
         sized to each cluster's rail profile"
    }

    fn params(&self) -> &'static [ParamSpec] {
        PARAMS
    }

    fn prepare(
        &self,
        ctx: &PrepareContext<'_>,
        params: &ResolvedParams,
    ) -> Result<Arc<dyn TechniqueModel>, TechniqueError> {
        let _span = scpg_trace::Span::start("technique_prepare");
        ensure_untransformed(self.name(), ctx.baseline)?;
        let lib = ctx.lib;
        ctx.baseline
            .validate(lib)
            .map_err(|e| TechniqueError::Engine(format!("netlist validation failed: {e}")))?;

        let mut out = ctx.baseline.clone();
        let clk = out
            .net_by_name(ctx.clock)
            .ok_or_else(|| TechniqueError::Unsupported(format!("no net named `{}`", ctx.clock)))?;

        // Partition the gateable cloud into contiguous clusters. InstId
        // order is deterministic, so the partition (and everything
        // downstream) is too.
        let gateable: Vec<InstId> = out
            .iter_instances()
            .filter(|(_, inst)| lib.cell(inst.cell()).is_some_and(|c| is_gateable(c.kind())))
            .map(|(id, _)| id)
            .collect();
        if gateable.is_empty() {
            return Err(TechniqueError::Unsupported(
                "design has no gateable combinational cells".to_string(),
            ));
        }
        let n_clusters = (params.int("clusters") as usize).min(gateable.len());
        let chunk = gateable.len().div_ceil(n_clusters);
        let members: Vec<Vec<InstId>> = gateable.chunks(chunk).map(|c| c.to_vec()).collect();
        for id in &gateable {
            out.set_domain(*id, Domain::Gated);
        }

        // Control network: shared sleep AND, one header + rail per
        // cluster, the Fig. 3 controller sensing rail 0.
        let cell_of = |kind: CellKind| -> Result<String, TechniqueError> {
            lib.cell_of_kind(kind)
                .map(|c| c.name().to_string())
                .ok_or_else(|| TechniqueError::Engine(format!("library lacks a {kind:?} cell")))
        };
        let and2 = cell_of(CellKind::And2)?;
        let isoctl = cell_of(CellKind::IsoCtl)?;
        let iso_cell = cell_of(CellKind::IsoAnd)?;
        let badnl = |e: scpg_netlist::NetlistError| TechniqueError::Engine(format!("{e}"));

        let override_n = out.add_input("ctsg_override_n");
        let sleep = out.add_net("ctsg_sleep");
        out.add_instance("ctsg_sleep_and", and2, &[clk, override_n, sleep])
            .map_err(badnl)?;
        // Provisional X2 headers; sizes are tuned after profiling (all
        // kit headers share the (SLEEP) -> VVDD pin interface).
        let mut rails = Vec::with_capacity(members.len());
        for k in 0..members.len() {
            let vddv = out.add_net(format!("ctsg_vddv_{k}"));
            out.add_instance(
                format!("ctsg_header_{k}"),
                HeaderSize::X2.cell_name(),
                &[sleep, vddv],
            )
            .map_err(badnl)?;
            rails.push(vddv);
        }
        let iso = out.add_net("ctsg_iso");
        out.add_instance("ctsg_isoctl", isoctl, &[clk, rails[0], iso])
            .map_err(badnl)?;

        // Isolation on every gated→always-on crossing, exactly as the
        // SCPG transform plans it.
        let conn = out.connectivity(lib).map_err(badnl)?;
        let mut planned: Vec<(scpg_netlist::NetId, bool, Vec<scpg_netlist::PinRef>)> = Vec::new();
        for (idx, _net) in out.nets().iter().enumerate() {
            let net = scpg_netlist::NetId::from_index(idx);
            let Some(driver) = conn.driver(net) else {
                continue;
            };
            if out.instance(driver.inst).domain() != Domain::Gated {
                continue;
            }
            let aon_sinks: Vec<_> = conn
                .loads(net)
                .iter()
                .copied()
                .filter(|pin| out.instance(pin.inst).domain() == Domain::AlwaysOn)
                .collect();
            let drives_port = out
                .ports()
                .iter()
                .any(|p| p.net == net && p.direction == PortDirection::Output);
            if drives_port || !aon_sinks.is_empty() {
                planned.push((net, drives_port, aon_sinks));
            }
        }
        let mut iso_count = 0usize;
        for (net, drives_port, aon_sinks) in planned {
            let inst_name = format!("ctsg_iso_{iso_count}");
            iso_count += 1;
            if drives_port {
                let drv = out
                    .connectivity(lib)
                    .map_err(badnl)?
                    .driver(net)
                    .expect("driver known from planning");
                let inner = out.add_fresh_net();
                out.rewire_pin(drv.inst, drv.pin, inner);
                out.add_instance(inst_name, iso_cell.clone(), &[inner, iso, net])
                    .map_err(badnl)?;
            } else {
                let clamped = out.add_fresh_net();
                out.add_instance(inst_name, iso_cell.clone(), &[net, iso, clamped])
                    .map_err(badnl)?;
                for pin in aon_sinks {
                    out.rewire_pin(pin.inst, pin.pin, clamped);
                }
            }
        }
        out.validate(lib)
            .map_err(|e| TechniqueError::Engine(format!("transformed netlist invalid: {e}")))?;

        // Profile each cluster and tune its header.
        let e_dyn = crate::baseline::scale_e_dyn(lib, ctx);
        let timing = scpg_sta::analyze(&out, lib, ctx.corner.voltage)
            .map_err(|e| TechniqueError::Engine(format!("timing analysis failed: {e}")))?;
        let v = ctx.corner.voltage;
        let total_area: f64 = members
            .iter()
            .flatten()
            .map(|&id| lib.expect_cell(out.instance(id).cell()).area().as_um2())
            .sum();
        let fixed_size = match params.choice("header") {
            "x1" => Some(HeaderSize::X1),
            "x2" => Some(HeaderSize::X2),
            "x4" => Some(HeaderSize::X4),
            "x8" => Some(HeaderSize::X8),
            _ => None,
        };
        let constraints = SizingConstraints::default();
        let mut clusters = Vec::with_capacity(members.len());
        for (k, ids) in members.iter().enumerate() {
            let area_um2: f64 = ids
                .iter()
                .map(|&id| lib.expect_cell(out.instance(id).cell()).area().as_um2())
                .sum();
            let frac = area_um2 / total_area;
            let i_leak: f64 = ids
                .iter()
                .map(|&id| {
                    lib.expect_cell(out.instance(id).cell())
                        .leakage_current(v, ctx.corner.temperature)
                        .value()
                })
                .sum();
            let e_share = Energy::new(e_dyn.value() * frac);
            let i_eval_avg = if timing.t_eval.value() > 0.0 {
                Current::new(e_share.value() / (v.as_v() * timing.t_eval.value()))
            } else {
                Current::ZERO
            };
            let profile = DomainProfile {
                n_gates: ids.len(),
                c_vddv: Capacitance::new(lib.rail_cap_density().value() * area_um2),
                i_leak_full: Current::new(i_leak),
                i_eval_avg,
                i_eval_peak: i_eval_avg * 2.5,
            };
            let size = fixed_size.unwrap_or_else(|| {
                let (reports, pick) = recommend_header(&profile, v, &constraints);
                // No acceptable size: take the strongest — a too-weak
                // header would starve the cluster outright.
                pick.map_or(HeaderSize::X8, |i| reports[i].size)
            });
            let hid = out
                .instance_by_name(&format!("ctsg_header_{k}"))
                .expect("header inserted above");
            out.set_cell(hid, size.cell_name());
            clusters.push(Cluster {
                rail: RailModel::new(profile, HeaderCell::ninety_nm(size), v),
            });
        }
        out.validate(lib)
            .map_err(|e| TechniqueError::Engine(format!("header retune invalid: {e}")))?;

        let leak = PowerAnalyzer::new(&out, lib, ctx.corner)
            .map_err(|e| TechniqueError::Engine(format!("power analysis failed: {e}")))?
            .leakage(None);
        let iso_lib_cell = lib
            .cell_of_kind(CellKind::IsoAnd)
            .expect("kit has isolation cells");
        let e_iso = iso_lib_cell.switching_energy(v, lib.wire_cap()) * iso_count as f64;
        let t_restore = clusters
            .iter()
            .map(|c| c.rail.restore_time(Voltage::ZERO))
            .fold(
                Time::new(0.0),
                |a, b| if b.value() > a.value() { b } else { a },
            );
        let planner = DutyPlanner::new(&timing, t_restore);
        let stats = out.stats(lib);
        let overhead_frac = stats.area_overhead_vs(&ctx.baseline.stats(lib));
        Ok(Arc::new(CtsgModel {
            netlist: out,
            leak,
            timing,
            planner,
            clusters,
            e_dyn,
            e_iso,
            cells: stats.total(),
            area: stats.area,
            overhead_frac,
        }))
    }
}

impl TechniqueModel for CtsgModel {
    fn evaluate(&self, f: Frequency) -> TechniquePoint {
        let period = f.period();
        match self.planner.plan_scpg(f) {
            Ok(plan) => {
                let aon_leak = self.leak.total - self.leak.gated_domain;
                let mut e_cycle = aon_leak * period
                    + self.leak.gated_domain * plan.t_on
                    + self.e_dyn
                    + self.e_iso;
                // Each cluster's rail collapses and recharges on its own
                // header, so the per-cycle overheads add.
                for cluster in &self.clusters {
                    e_cycle += GatingCycle::new(&cluster.rail)
                        .analyze(plan.t_off)
                        .overhead();
                }
                TechniquePoint {
                    frequency: f,
                    mode: "ctsg".to_string(),
                    duty: plan.duty,
                    power: e_cycle * f,
                    energy_per_op: e_cycle,
                    gated: true,
                }
            }
            Err(_) => {
                // Timing leaves no gating room: always-on fallback paying
                // the technique's static overheads.
                let e_cycle = self.leak.total * period + self.e_dyn;
                TechniquePoint {
                    frequency: f,
                    mode: "ctsg".to_string(),
                    duty: 0.5,
                    power: e_cycle * f,
                    energy_per_op: e_cycle,
                    gated: false,
                }
            }
        }
    }

    fn area(&self) -> AreaReport {
        AreaReport {
            cells: self.cells,
            area: self.area,
            overhead_frac: self.overhead_frac,
        }
    }

    fn delay(&self) -> DelayReport {
        DelayReport {
            min_period: self.timing.min_period,
            f_max: self.timing.f_max(),
        }
    }

    fn netlist(&self) -> &Netlist {
        &self.netlist
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use scpg_circuits::generate_multiplier;
    use scpg_json::Json;
    use scpg_liberty::{Library, PvtCorner};

    fn prepare(nl: &Netlist, lib: &Library, body: &str) -> Arc<dyn TechniqueModel> {
        let ctx = PrepareContext {
            lib,
            baseline: nl,
            clock: "clk",
            e_dyn: Energy::from_pj(2.3),
            corner: PvtCorner::default(),
        };
        let body = Json::parse(body).unwrap();
        let params = crate::resolve_params(CtsgTechnique.params(), Some(&body)).unwrap();
        CtsgTechnique.prepare(&ctx, &params).unwrap()
    }

    #[test]
    fn ctsg_inserts_one_header_per_cluster_and_isolates_crossings() {
        let lib = Library::ninety_nm();
        let (nl, _) = generate_multiplier(&lib, 8);
        let model = prepare(&nl, &lib, r#"{"clusters": 3}"#);
        let out = model.netlist();
        for k in 0..3 {
            assert!(
                out.instance_by_name(&format!("ctsg_header_{k}")).is_some(),
                "header {k}"
            );
        }
        assert!(out.instance_by_name("ctsg_header_3").is_none());
        // Every gated→always-on crossing is clamped (validated netlist +
        // the same planning loop as the SCPG transform's own test).
        let conn = out.connectivity(&lib).unwrap();
        for (idx, _) in out.nets().iter().enumerate() {
            let net = scpg_netlist::NetId::from_index(idx);
            let Some(driver) = conn.driver(net) else {
                continue;
            };
            if out.instance(driver.inst).domain() != Domain::Gated {
                continue;
            }
            for pin in conn.loads(net) {
                let sink = out.instance(pin.inst);
                if sink.domain() == Domain::AlwaysOn {
                    let kind = lib.expect_cell(sink.cell()).kind();
                    assert!(
                        matches!(kind, CellKind::IsoAnd | CellKind::IsoOr),
                        "gated net reaches `{}` ({kind:?}) unclamped",
                        sink.name()
                    );
                }
            }
        }
        assert!(model.area().overhead_frac > 0.0, "headers+clamps cost area");
    }

    #[test]
    fn fixed_header_param_overrides_auto_sizing() {
        let lib = Library::ninety_nm();
        let (nl, _) = generate_multiplier(&lib, 4);
        let model = prepare(&nl, &lib, r#"{"clusters": 2, "header": "x8"}"#);
        let out = model.netlist();
        for k in 0..2 {
            let id = out.instance_by_name(&format!("ctsg_header_{k}")).unwrap();
            assert_eq!(out.instance(id).cell(), "HDR_X8");
        }
    }

    #[test]
    fn more_clusters_means_more_headers_but_gating_still_wins_at_low_f() {
        let lib = Library::ninety_nm();
        let (nl, _) = generate_multiplier(&lib, 8);
        let f = Frequency::from_khz(10.0);
        let p1 = prepare(&nl, &lib, r#"{"clusters": 1}"#).evaluate(f);
        let p8 = prepare(&nl, &lib, r#"{"clusters": 8}"#).evaluate(f);
        assert!(p1.gated && p8.gated);
        assert!(p8.power.value() > 0.0 && p1.power.value() > 0.0);
        // Both must beat an ungated cycle (total leakage over the whole
        // period) at 10 kHz — the whole point of gating down there.
        let lib2 = Library::ninety_nm();
        let leak = scpg_power::PowerAnalyzer::new(&nl, &lib2, PvtCorner::default())
            .unwrap()
            .leakage(None);
        for p in [&p1, &p8] {
            assert!(
                p.power.value() < leak.total.value(),
                "gated power {} must beat baseline leakage {}",
                p.power,
                leak.total
            );
        }
    }

    #[test]
    fn single_cluster_ctsg_brackets_scpg_class_savings() {
        // One cluster with the same control story should land in the
        // same savings class as SCPG at harvester frequencies.
        let lib = Library::ninety_nm();
        let (nl, _) = generate_multiplier(&lib, 8);
        let f = Frequency::from_khz(10.0);
        let ctsg = prepare(&nl, &lib, r#"{"clusters": 1}"#).evaluate(f);
        let ctx = PrepareContext {
            lib: &lib,
            baseline: &nl,
            clock: "clk",
            e_dyn: Energy::from_pj(2.3),
            corner: PvtCorner::default(),
        };
        let params = crate::resolve_params(crate::BaselineTechnique.params(), None).unwrap();
        let base = crate::BaselineTechnique
            .prepare(&ctx, &params)
            .unwrap()
            .evaluate(f);
        let saving = 1.0 - ctsg.power.value() / base.power.value();
        assert!(
            (0.05..0.95).contains(&saving),
            "ctsg saving {saving:.3} out of plausible band"
        );
    }
}
