//! Deterministic parallel execution for embarrassingly-parallel sweeps.
//!
//! Every experiment in this reproduction — frequency sweeps, Monte-Carlo
//! variation studies, header sizing, VDD sweeps, Dhrystone vector-group
//! simulation — evaluates many independent points. This crate runs those
//! points across a scoped thread pool built purely on [`std::thread::scope`]
//! (the environment is offline, so no `crossbeam`): workers self-schedule
//! items from a shared atomic counter (work stealing in its simplest form —
//! an idle worker takes the next undone item, so load imbalance never
//! leaves a core idle), and results are written back by item index, making
//! the output order — and therefore every downstream reduction —
//! **bit-identical to the serial path** regardless of worker count or
//! scheduling.
//!
//! Thread count comes from the `SCPG_THREADS` environment variable when
//! set, else from [`std::thread::available_parallelism`]. Nested calls
//! (a parallel sweep whose items themselves call [`par_map`]) degrade to
//! inline serial execution instead of oversubscribing the machine.
//!
//! ```
//! let squares = scpg_exec::par_map(&[1u64, 2, 3, 4], |_, &x| x * x);
//! assert_eq!(squares, vec![1, 4, 9, 16]);
//! ```

#![warn(missing_docs)]

use std::cell::Cell;
use std::sync::atomic::{AtomicU64, AtomicUsize, Ordering};
use std::sync::{Arc, Once, OnceLock};
use std::time::Instant;

thread_local! {
    /// Set while executing inside a pool worker so nested parallel calls
    /// run inline instead of spawning a second tier of threads.
    static IN_POOL: Cell<bool> = const { Cell::new(false) };
}

/// Items evaluated through the pool entry points since process start
/// (serial fallback included). See [`tasks_executed`].
static TASKS_EXECUTED: AtomicU64 = AtomicU64::new(0);
/// Fan-outs that actually ran on more than one worker. See
/// [`parallel_jobs`].
static PARALLEL_JOBS: AtomicU64 = AtomicU64::new(0);
static THREADS_WARNING: Once = Once::new();

/// Cached handle to the process-wide `exec_task` latency histogram
/// (per-item time through the pool). The `OnceLock` keeps the hot loop
/// free of registry lookups — observing is two relaxed atomic adds.
fn task_histogram() -> &'static Arc<scpg_trace::Histogram> {
    static HIST: OnceLock<Arc<scpg_trace::Histogram>> = OnceLock::new();
    HIST.get_or_init(|| scpg_trace::engine_stage("exec_task"))
}

/// Cached handle to the process-wide `exec_fanout` latency histogram
/// (whole fan-out wall-clock, serial fallback included).
fn fanout_histogram() -> &'static Arc<scpg_trace::Histogram> {
    static HIST: OnceLock<Arc<scpg_trace::Histogram>> = OnceLock::new();
    HIST.get_or_init(|| scpg_trace::engine_stage("exec_fanout"))
}

/// Total work items evaluated by [`par_map`] and friends since process
/// start, including the inline serial fallback. Exposed so the serving
/// layer's `/metrics` endpoint can report pool throughput.
pub fn tasks_executed() -> u64 {
    TASKS_EXECUTED.load(Ordering::Relaxed)
}

/// Number of fan-outs that actually used more than one worker thread
/// (single-item, single-thread and nested calls run inline and are not
/// counted). Exposed for `/metrics`.
pub fn parallel_jobs() -> u64 {
    PARALLEL_JOBS.load(Ordering::Relaxed)
}

/// Resolves a raw `SCPG_THREADS` value against a fallback: the parsed
/// count when it is a positive integer, else the fallback plus a warning
/// message naming the rejected value. Pure so the policy is testable
/// without touching the process environment.
fn resolve_threads(raw: Option<&str>, fallback: usize) -> (usize, Option<String>) {
    match raw {
        None => (fallback, None),
        Some(v) => match v.trim().parse::<usize>() {
            Ok(n) if n > 0 => (n, None),
            _ => (
                fallback,
                Some(format!(
                    "SCPG_THREADS={v:?} is not a positive integer; \
                     falling back to {fallback} worker thread(s)"
                )),
            ),
        },
    }
}

/// The worker count used by [`par_map`] and friends: `SCPG_THREADS` when
/// set to a positive integer, else the machine's available parallelism.
///
/// An unparsable or zero `SCPG_THREADS` does **not** degrade silently: a
/// one-time warning naming the rejected value and the fallback count goes
/// to stderr, then the fallback applies.
pub fn num_threads() -> usize {
    let fallback = std::thread::available_parallelism()
        .map(|n| n.get())
        .unwrap_or(1);
    let raw = std::env::var("SCPG_THREADS").ok();
    let (n, warning) = resolve_threads(raw.as_deref(), fallback);
    if let Some(msg) = warning {
        THREADS_WARNING.call_once(|| eprintln!("[scpg-exec] warning: {msg}"));
    }
    n
}

/// `true` when called from inside a pool worker (nested parallelism).
pub fn in_worker() -> bool {
    IN_POOL.with(|f| f.get())
}

/// Maps `f` over `0..n` on `threads` workers, returning results in index
/// order. The core primitive behind [`par_map`] / [`par_sweep`].
///
/// `f` runs exactly once per index; which worker runs it is unspecified,
/// but the returned `Vec` is always `[f(0), f(1), …, f(n-1)]`.
///
/// # Panics
///
/// Propagates the first panic raised by `f`.
pub fn par_map_indices_with_threads<T, F>(n: usize, threads: usize, f: F) -> Vec<T>
where
    T: Send,
    F: Fn(usize) -> T + Sync,
{
    let threads = threads.max(1).min(n.max(1));
    TASKS_EXECUTED.fetch_add(n as u64, Ordering::Relaxed);
    let task_hist = task_histogram();
    let _fanout_span = scpg_trace::Span::on(Arc::clone(fanout_histogram()));
    if threads <= 1 || n <= 1 || in_worker() {
        return (0..n)
            .map(|i| {
                let started = Instant::now();
                let v = f(i);
                task_hist.observe(started.elapsed());
                v
            })
            .collect();
    }
    PARALLEL_JOBS.fetch_add(1, Ordering::Relaxed);

    let next = AtomicUsize::new(0);
    let mut slots: Vec<Option<T>> = Vec::with_capacity(n);
    slots.resize_with(n, || None);

    std::thread::scope(|scope| {
        let mut handles = Vec::with_capacity(threads);
        for _ in 0..threads {
            let next = &next;
            let f = &f;
            handles.push(scope.spawn(move || {
                IN_POOL.with(|flag| flag.set(true));
                let mut local: Vec<(usize, T)> = Vec::new();
                loop {
                    let i = next.fetch_add(1, Ordering::Relaxed);
                    if i >= n {
                        break;
                    }
                    let started = Instant::now();
                    let v = f(i);
                    task_hist.observe(started.elapsed());
                    local.push((i, v));
                }
                local
            }));
        }
        for handle in handles {
            let local = match handle.join() {
                Ok(v) => v,
                Err(payload) => std::panic::resume_unwind(payload),
            };
            for (i, v) in local {
                slots[i] = Some(v);
            }
        }
    });

    slots
        .into_iter()
        .map(|s| s.expect("every index produced exactly once"))
        .collect()
}

/// [`par_map_indices_with_threads`] at the default worker count.
pub fn par_map_indices<T, F>(n: usize, f: F) -> Vec<T>
where
    T: Send,
    F: Fn(usize) -> T + Sync,
{
    par_map_indices_with_threads(n, num_threads(), f)
}

/// Maps `f(index, item)` over a slice in parallel, preserving order.
pub fn par_map<I, T, F>(items: &[I], f: F) -> Vec<T>
where
    I: Sync,
    T: Send,
    F: Fn(usize, &I) -> T + Sync,
{
    par_map_indices(items.len(), |i| f(i, &items[i]))
}

/// Parallel sweep over parameter points: like [`par_map`] but the closure
/// only sees the point — the common shape of frequency/voltage sweeps.
pub fn par_sweep<I, T, F>(points: &[I], f: F) -> Vec<T>
where
    I: Sync,
    T: Send,
    F: Fn(&I) -> T + Sync,
{
    par_map(points, |_, p| f(p))
}

/// Fallible parallel map: evaluates every item, then returns the first
/// error in **index order** (not completion order), so failures are as
/// deterministic as successes.
///
/// # Errors
///
/// Returns the error of the lowest-indexed failing item.
pub fn par_try_map<I, T, E, F>(items: &[I], f: F) -> Result<Vec<T>, E>
where
    I: Sync,
    T: Send,
    E: Send,
    F: Fn(usize, &I) -> Result<T, E> + Sync,
{
    let results = par_map(items, |i, item| f(i, item));
    let mut out = Vec::with_capacity(results.len());
    for r in results {
        out.push(r?);
    }
    Ok(out)
}

/// Fallible indexed map, mirroring [`par_map_indices`].
///
/// # Errors
///
/// Returns the error of the lowest-indexed failing item.
pub fn par_try_map_indices<T, E, F>(n: usize, f: F) -> Result<Vec<T>, E>
where
    T: Send,
    E: Send,
    F: Fn(usize) -> Result<T, E> + Sync,
{
    let results = par_map_indices(n, f);
    let mut out = Vec::with_capacity(results.len());
    for r in results {
        out.push(r?);
    }
    Ok(out)
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::AtomicU64;

    #[test]
    fn results_are_in_index_order() {
        for threads in [1, 2, 4, 7] {
            let out = par_map_indices_with_threads(100, threads, |i| i * i);
            let expect: Vec<usize> = (0..100).map(|i| i * i).collect();
            assert_eq!(out, expect, "threads = {threads}");
        }
    }

    #[test]
    fn every_item_runs_exactly_once() {
        let calls = AtomicU64::new(0);
        let out = par_map_indices_with_threads(257, 4, |i| {
            calls.fetch_add(1, Ordering::Relaxed);
            i
        });
        assert_eq!(calls.load(Ordering::Relaxed), 257);
        assert_eq!(out.len(), 257);
    }

    #[test]
    fn empty_and_singleton_inputs() {
        let empty: Vec<u32> = par_map_indices_with_threads(0, 4, |i| i as u32);
        assert!(empty.is_empty());
        let one = par_map_indices_with_threads(1, 4, |i| i + 10);
        assert_eq!(one, vec![10]);
    }

    #[test]
    fn slice_and_sweep_wrappers_agree_with_serial() {
        let items: Vec<u64> = (0..64).collect();
        let serial: Vec<u64> = items.iter().map(|&x| x * 3 + 1).collect();
        assert_eq!(par_map(&items, |_, &x| x * 3 + 1), serial);
        assert_eq!(par_sweep(&items, |&x| x * 3 + 1), serial);
    }

    #[test]
    fn try_map_returns_lowest_index_error() {
        let items: Vec<u32> = (0..32).collect();
        let r: Result<Vec<u32>, u32> =
            par_try_map(&items, |_, &x| if x % 10 == 7 { Err(x) } else { Ok(x) });
        assert_eq!(r, Err(7), "index order, not completion order");
    }

    #[test]
    fn nested_calls_degrade_to_serial() {
        let out = par_map_indices_with_threads(8, 4, |i| {
            assert!(in_worker());
            // Inner call must not deadlock or nest threads.
            let inner = par_map_indices(4, |j| j + i);
            inner.iter().sum::<usize>()
        });
        assert_eq!(out.len(), 8);
        assert!(!in_worker());
    }

    #[test]
    fn resolve_threads_accepts_positive_integers() {
        assert_eq!(resolve_threads(Some("8"), 4), (8, None));
        assert_eq!(resolve_threads(Some(" 2 "), 4), (2, None));
        assert_eq!(resolve_threads(None, 4), (4, None));
    }

    #[test]
    fn resolve_threads_warns_on_bad_values() {
        for bad in ["", "abc", "0", "-3", "1.5", "4x"] {
            let (n, warning) = resolve_threads(Some(bad), 3);
            assert_eq!(n, 3, "fallback applies for {bad:?}");
            let msg = warning.expect("bad value must produce a warning");
            assert!(msg.contains(&format!("{bad:?}")), "names the value: {msg}");
            assert!(msg.contains("3 worker thread"), "names the fallback: {msg}");
        }
    }

    #[test]
    fn per_task_timing_reaches_the_engine_histograms() {
        let tasks = task_histogram();
        let fanouts = fanout_histogram();
        let t0 = tasks.count();
        let f0 = fanouts.count();
        let _ = par_map_indices_with_threads(12, 3, |i| i);
        assert!(tasks.count() >= t0 + 12, "every item is timed");
        assert!(fanouts.count() > f0, "the fan-out itself is timed");
        let text = scpg_trace::global().render();
        assert!(
            text.contains("scpg_engine_stage_duration_seconds_count{stage=\"exec_task\"}"),
            "{text}"
        );
    }

    #[test]
    fn introspection_counters_move() {
        let tasks0 = tasks_executed();
        let jobs0 = parallel_jobs();
        let _ = par_map_indices_with_threads(10, 2, |i| i);
        assert!(tasks_executed() >= tasks0 + 10);
        assert!(parallel_jobs() > jobs0);
        // Serial fallback still counts tasks, not jobs.
        let tasks1 = tasks_executed();
        let _ = par_map_indices_with_threads(5, 1, |i| i);
        assert!(tasks_executed() >= tasks1 + 5);
    }

    #[test]
    #[should_panic(expected = "boom")]
    fn worker_panics_propagate() {
        let _ = par_map_indices_with_threads(16, 4, |i| {
            if i == 5 {
                panic!("boom");
            }
            i
        });
    }
}
