//! Behavioural memories and a cycle driver for the gate-level core.
//!
//! The paper's power scope is the CPU core: memories sit outside the
//! power domains and are modelled behaviourally (the Modelsim testbench
//! role). Per clock cycle the harness:
//!
//! 1. raises the clock (the core's flops sample);
//! 2. shortly after the edge, reads the registered `imem_addr` and drives
//!    `imem_data` with the fetched word;
//! 3. late in the cycle — after the ALU has settled — samples
//!    `dmem_addr`, drives `dmem_rdata` for loads, and latches any store
//!    for commit at the next edge;
//! 4. completes the low phase.
//!
//! [`CpuHarness::record`] captures the per-cycle input trace
//! (`imem_data`, `dmem_rdata`) so SCPG power runs can *replay* identical
//! stimulus through a sub-clock-gated netlist without re-deriving memory
//! behaviour (the same trick the paper uses by extracting VCD activity
//! once and reusing it).

use scpg_liberty::Logic;
use scpg_sim::{
    run_settled, EngineChoice, NetChange, PackedStimulus, Phase, SettledRun, SimConfig, Simulator,
};
use scpg_synth::Word;
use scpg_waveform::Activity;

use crate::cpu::CpuPorts;

/// One cycle of recorded memory stimulus.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct CycleTrace {
    /// Instruction word driven during this cycle.
    pub imem_data: u16,
    /// Load data driven late in this cycle.
    pub dmem_rdata: u32,
}

/// Drives a [`crate::cpu::generate_cpu`] netlist with program and data
/// memories.
#[derive(Debug)]
pub struct CpuHarness {
    program: Vec<u16>,
    mem: Vec<u32>,
    trace: Vec<CycleTrace>,
    pending_store: Option<(usize, u32)>,
    cycles: u64,
}

impl CpuHarness {
    /// Creates a harness with the given program and data image.
    pub fn new(program: Vec<u16>, mem: Vec<u32>) -> Self {
        Self {
            program,
            mem,
            trace: Vec::new(),
            pending_store: None,
            cycles: 0,
        }
    }

    /// Data memory contents (inspect after a run).
    pub fn mem(&self, addr: usize) -> u32 {
        self.mem.get(addr).copied().unwrap_or(0)
    }

    /// Completed cycles.
    pub fn cycles(&self) -> u64 {
        self.cycles
    }

    /// The recorded per-cycle stimulus.
    pub fn trace(&self) -> &[CycleTrace] {
        &self.trace
    }

    fn read_word(sim: &Simulator<'_>, w: &Word) -> u64 {
        let mut v = 0u64;
        for (i, &bit) in w.bits().iter().enumerate() {
            if sim.value(bit) == Logic::One {
                v |= 1 << i;
            }
        }
        v
    }

    fn drive_word(sim: &mut Simulator<'_>, w: &Word, value: u64) {
        for (i, &bit) in w.bits().iter().enumerate() {
            sim.set_input(bit, Logic::from_bool((value >> i) & 1 == 1));
        }
    }

    /// Holds reset for `n` cycles with the clock running.
    ///
    /// Instruction fetch is serviced normally during reset: the PC is
    /// held at 0, so `prog[0]` sits on `imem_data` when the first active
    /// edge simultaneously advances the PC and latches the fetch into
    /// IF/DE — without this, instruction 0 would be skipped.
    pub fn reset(&mut self, sim: &mut Simulator<'_>, ports: &CpuPorts, period_ps: u64, n: u64) {
        sim.set_input(ports.rst_n, Logic::Zero);
        Self::drive_word(sim, &ports.imem_data, 0);
        Self::drive_word(sim, &ports.dmem_rdata, 0);
        for _ in 0..n {
            self.cycle(sim, ports, period_ps, 0.5);
        }
        sim.set_input(ports.rst_n, Logic::One);
    }

    /// Runs one clock cycle with memory servicing. `duty` is the clock's
    /// high fraction; memory responses are placed relative to the period
    /// as described in the module docs.
    pub fn cycle(&mut self, sim: &mut Simulator<'_>, ports: &CpuPorts, period_ps: u64, duty: f64) {
        // Commit the previous cycle's store at this clock edge.
        if let Some((addr, data)) = self.pending_store.take() {
            if let Some(slot) = self.mem.get_mut(addr) {
                *slot = data;
            }
        }
        let t0 = self.cycles * period_ps;
        sim.run_until(t0);
        sim.set_input(ports.clk, Logic::One);

        // Early: fetch. PC is registered, so it is stable just after the
        // edge.
        sim.run_until(t0 + period_ps / 20);
        let pc = Self::read_word(sim, &ports.imem_addr) as usize;
        let inst = self.program.get(pc).copied().unwrap_or(0x8000); // HALT
        Self::drive_word(sim, &ports.imem_data, inst as u64);

        // Falling edge at the duty point.
        let high = (period_ps as f64 * duty).round() as u64;
        sim.run_until(t0 + high);
        sim.set_input(ports.clk, Logic::Zero);

        // Late: data memory. Sample after the ALU settles (90 % of the
        // cycle), drive load data, note stores for commit at the next
        // edge.
        sim.run_until(t0 + period_ps * 9 / 10);
        let addr = Self::read_word(sim, &ports.dmem_addr) as usize;
        let rdata = self.mem.get(addr).copied().unwrap_or(0);
        Self::drive_word(sim, &ports.dmem_rdata, rdata as u64);
        if sim.value(ports.dmem_we) == Logic::One {
            let wdata = Self::read_word(sim, &ports.dmem_wdata) as u32;
            self.pending_store = Some((addr, wdata));
        }

        sim.run_until(t0 + period_ps);
        self.trace.push(CycleTrace {
            imem_data: inst,
            dmem_rdata: rdata,
        });
        self.cycles += 1;
    }

    /// Runs until the core raises `halted` or `max_cycles` elapse.
    /// Returns `true` if the core halted.
    pub fn run_to_halt(
        &mut self,
        sim: &mut Simulator<'_>,
        ports: &CpuPorts,
        period_ps: u64,
        max_cycles: u64,
    ) -> bool {
        for _ in 0..max_cycles {
            self.cycle(sim, ports, period_ps, 0.5);
            if sim.value(ports.halted) == Logic::One {
                return true;
            }
        }
        false
    }

    /// Reads an architectural register from the gate-level core.
    pub fn reg(&self, sim: &Simulator<'_>, ports: &CpuPorts, k: usize) -> u32 {
        Self::read_word(sim, &ports.regs[k]) as u32
    }

    /// Replays a recorded trace on a fresh simulator bound to a shared
    /// pre-compiled netlist. See [`CpuHarness::replay`]; returns the
    /// finished run's per-net activity.
    pub fn replay_compiled(
        compiled: &scpg_sim::CompiledNetlist,
        config: &SimConfig,
        trace: &[CycleTrace],
        ports: &CpuPorts,
        period_ps: u64,
        duty: f64,
        reset_cycles: u64,
    ) -> Activity {
        let mut sim = Simulator::with_compiled(compiled, config.clone());
        Self::replay(trace, &mut sim, ports, period_ps, duty, reset_cycles);
        sim.finish().activity
    }

    /// Splits a recorded trace into `group_size`-cycle **vector groups**
    /// (the paper's Fig. 7 groups of 10 vectors) and replays each group
    /// on its own simulator, fanned out across the [`scpg_exec`] pool.
    /// All groups share one [`scpg_sim::CompiledNetlist`], so the netlist
    /// is compiled once instead of once per group.
    ///
    /// Each group starts from an all-`X` state — activity within a group
    /// reflects only that group's vectors, which is exactly the per-group
    /// switching-probability measurement the paper makes. The returned
    /// activities are in group order; fold them with
    /// [`Activity::merge_all`] for whole-workload counters. Results are
    /// bit-identical to [`CpuHarness::replay_groups_serial`] for any
    /// worker count.
    ///
    /// # Panics
    ///
    /// Panics if `group_size` is zero.
    pub fn replay_groups(
        compiled: &scpg_sim::CompiledNetlist,
        config: &SimConfig,
        trace: &[CycleTrace],
        ports: &CpuPorts,
        period_ps: u64,
        duty: f64,
        group_size: usize,
    ) -> Vec<Activity> {
        Self::replay_groups_with_threads(
            compiled,
            config,
            trace,
            ports,
            period_ps,
            duty,
            group_size,
            scpg_exec::num_threads(),
        )
    }

    /// [`CpuHarness::replay_groups`] pinned to one worker — the baseline
    /// for determinism and speedup comparisons.
    pub fn replay_groups_serial(
        compiled: &scpg_sim::CompiledNetlist,
        config: &SimConfig,
        trace: &[CycleTrace],
        ports: &CpuPorts,
        period_ps: u64,
        duty: f64,
        group_size: usize,
    ) -> Vec<Activity> {
        Self::replay_groups_with_threads(
            compiled, config, trace, ports, period_ps, duty, group_size, 1,
        )
    }

    /// [`CpuHarness::replay_groups`] at an explicit worker count.
    #[allow(clippy::too_many_arguments)]
    pub fn replay_groups_with_threads(
        compiled: &scpg_sim::CompiledNetlist,
        config: &SimConfig,
        trace: &[CycleTrace],
        ports: &CpuPorts,
        period_ps: u64,
        duty: f64,
        group_size: usize,
        threads: usize,
    ) -> Vec<Activity> {
        assert!(group_size > 0, "vector groups must be non-empty");
        let groups: Vec<&[CycleTrace]> = trace.chunks(group_size).collect();
        scpg_exec::par_map_indices_with_threads(groups.len(), threads, |g| {
            Self::replay_compiled(compiled, config, groups[g], ports, period_ps, duty, 0)
        })
    }

    /// Settled activity extraction over vector groups: the
    /// repeated-stimulus fast path. Groups become stimulus *lanes* of one
    /// [`PackedStimulus`] (batches of up to 64), observed at cycle
    /// boundaries only, and run through [`scpg_sim::run_settled`] — the
    /// bit-parallel engine when the netlist levelizes (the baseline core
    /// does), the per-lane event engine otherwise (an SCPG-transformed
    /// core always falls back: header wake/sleep edges are sub-clock
    /// timing detail).
    ///
    /// Unlike [`CpuHarness::replay_groups`] — which stays on the event
    /// engine because its glitch-inclusive intra-cycle counts feed the
    /// dynamic-power calibration — this records cycle-boundary (settled)
    /// toggles, which is what pure activity extraction needs. Per-lane
    /// results are bit-identical between the two engines under this
    /// observation protocol.
    ///
    /// # Errors
    ///
    /// Only when `choice` forces the bit-parallel engine on a netlist
    /// that does not levelize.
    ///
    /// # Panics
    ///
    /// Panics if `group_size` is zero.
    pub fn replay_groups_settled(
        compiled: &scpg_sim::CompiledNetlist,
        trace: &[CycleTrace],
        ports: &CpuPorts,
        period_ps: u64,
        duty: f64,
        group_size: usize,
        choice: EngineChoice,
    ) -> Result<SettledRun, String> {
        assert!(group_size > 0, "vector groups must be non-empty");
        let groups: Vec<&[CycleTrace]> = trace.chunks(group_size).collect();
        let mut activities = Vec::with_capacity(groups.len());
        let mut engine = None;
        for batch in groups.chunks(64) {
            let program = Self::settled_program(batch, ports, period_ps, duty);
            let run = run_settled(compiled, &program, None, choice)?;
            debug_assert!(engine.is_none_or(|e| e == run.engine));
            engine = Some(run.engine);
            activities.extend(run.activities);
        }
        let engine = match engine {
            Some(e) => e,
            // Empty trace: report what Auto would have picked.
            None => match choice {
                EngineChoice::Event => scpg_sim::SettledEngine::Event,
                EngineChoice::BitParallel => {
                    compiled.levelized()?;
                    scpg_sim::SettledEngine::BitParallel
                }
                EngineChoice::Auto => {
                    if compiled.levelized().is_ok() {
                        scpg_sim::SettledEngine::BitParallel
                    } else {
                        scpg_sim::SettledEngine::Event
                    }
                }
            },
        };
        Ok(SettledRun { activities, engine })
    }

    /// Builds the packed replay stimulus for up to 64 vector groups: the
    /// exact phase/change sequence [`CpuHarness::replay`] (with
    /// `reset_cycles = 0`) applies, with each group on its own lane and
    /// observation at every cycle boundary.
    fn settled_program(
        groups: &[&[CycleTrace]],
        ports: &CpuPorts,
        period_ps: u64,
        duty: f64,
    ) -> PackedStimulus {
        assert!(groups.len() <= 64, "at most 64 lanes per program");
        let all: u64 = if groups.len() == 64 {
            !0
        } else {
            (1u64 << groups.len()) - 1
        };
        let alive = |cycle: usize| -> u64 {
            groups
                .iter()
                .enumerate()
                .filter(|(_, g)| g.len() > cycle)
                .fold(0u64, |m, (lane, _)| m | (1u64 << lane))
        };
        let word_changes = |w: &Word, mask: u64, value_of: &dyn Fn(usize) -> u64| {
            w.bits()
                .iter()
                .enumerate()
                .map(|(bit, &net)| {
                    let mut plane = 0u64;
                    for lane in 0..groups.len() {
                        if mask & (1 << lane) != 0 && (value_of(lane) >> bit) & 1 == 1 {
                            plane |= 1 << lane;
                        }
                    }
                    NetChange::word(net, mask, plane)
                })
                .collect::<Vec<_>>()
        };

        let maxlen = groups.iter().map(|g| g.len()).max().unwrap_or(0);
        let high = (period_ps as f64 * duty).round() as u64;
        let mut phases = Vec::with_capacity(3 * maxlen + 2);

        // t = 0 merges replay()'s pre-loop batch with cycle 0's edge: no
        // combinational event can fire between them (all delays ≥ 1 ps),
        // so same-timestamp list order is all that matters.
        let mut init = vec![NetChange::level(ports.rst_n, all, false)];
        init.extend(word_changes(&ports.imem_data, all, &|_| 0));
        init.extend(word_changes(&ports.dmem_rdata, all, &|_| 0));
        init.push(NetChange::level(ports.rst_n, all, true));
        init.push(NetChange::level(ports.clk, all, true));
        phases.push(Phase {
            t: 0,
            observe: false,
            changes: init,
        });

        // `i` indexes the *inner* per-lane vectors (`groups[lane][i]`)
        // from several closures, not `groups` itself.
        #[allow(clippy::needless_range_loop)]
        for i in 0..maxlen {
            let t0 = i as u64 * period_ps;
            let mask = alive(i);
            if i > 0 {
                phases.push(Phase {
                    t: t0,
                    observe: true,
                    changes: vec![NetChange::level(ports.clk, mask, true)],
                });
            }
            let mut data = word_changes(&ports.imem_data, mask, &|lane| {
                groups[lane][i].imem_data as u64
            });
            data.extend(word_changes(&ports.dmem_rdata, mask, &|lane| {
                groups[lane][i].dmem_rdata as u64
            }));
            phases.push(Phase {
                t: t0 + period_ps / 20,
                observe: false,
                changes: data,
            });
            phases.push(Phase {
                t: t0 + high,
                observe: false,
                changes: vec![NetChange::level(ports.clk, mask, false)],
            });
        }
        phases.push(Phase {
            t: maxlen as u64 * period_ps,
            observe: true,
            changes: Vec::new(),
        });

        PackedStimulus {
            phases,
            lane_ends: groups.iter().map(|g| g.len() as u64 * period_ps).collect(),
        }
    }

    /// Replays a recorded trace through another simulator of the same
    /// core (e.g. the SCPG-transformed netlist): inputs are applied just
    /// after each rising edge, with the clock at the given duty cycle.
    /// Memory is not modelled — the trace already contains its responses.
    pub fn replay(
        trace: &[CycleTrace],
        sim: &mut Simulator<'_>,
        ports: &CpuPorts,
        period_ps: u64,
        duty: f64,
        reset_cycles: u64,
    ) {
        sim.set_input(ports.rst_n, Logic::Zero);
        Self::drive_word(sim, &ports.imem_data, 0);
        Self::drive_word(sim, &ports.dmem_rdata, 0);
        for (i, t) in trace.iter().enumerate() {
            let t0 = i as u64 * period_ps;
            sim.run_until(t0);
            if i as u64 == reset_cycles {
                sim.set_input(ports.rst_n, Logic::One);
            }
            sim.set_input(ports.clk, Logic::One);
            sim.run_until(t0 + period_ps / 20);
            Self::drive_word(sim, &ports.imem_data, t.imem_data as u64);
            Self::drive_word(sim, &ports.dmem_rdata, t.dmem_rdata as u64);
            let high = (period_ps as f64 * duty).round() as u64;
            sim.run_until(t0 + high);
            sim.set_input(ports.clk, Logic::Zero);
            sim.run_until(t0 + period_ps);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::cpu::generate_cpu;
    use scpg_isa::{dhrystone, Assembler, Iss};
    use scpg_liberty::Library;
    use scpg_sim::SimConfig;

    const PERIOD: u64 = 1_000_000; // 1 µs: generous at 0.6 V

    fn run_program(src: &str, mem: Vec<u32>, max_cycles: u64) -> (CpuHarness, Vec<u32>) {
        let lib = Library::ninety_nm();
        let (nl, ports) = generate_cpu(&lib);
        let words = Assembler::assemble(src).unwrap();
        let mut sim = Simulator::new(&nl, &lib, SimConfig::default()).unwrap();
        let mut h = CpuHarness::new(words, mem);
        h.reset(&mut sim, &ports, PERIOD, 3);
        let halted = h.run_to_halt(&mut sim, &ports, PERIOD, max_cycles);
        assert!(halted, "core must halt");
        let regs = (0..8).map(|k| h.reg(&sim, &ports, k)).collect();
        (h, regs)
    }

    #[test]
    fn straight_line_arithmetic() {
        let (_h, regs) = run_program(
            "MOVI r0, 7
             MOVI r1, 5
             ADD  r0, r1
             SUB  r1, r0
             HALT",
            vec![0; 64],
            50,
        );
        assert_eq!(regs[0], 12);
        assert_eq!(regs[1], 5u32.wrapping_sub(12));
    }

    #[test]
    fn raw_hazard_bypass_works() {
        // Back-to-back dependent instructions stress the EX→DE bypass.
        let (_h, regs) = run_program(
            "MOVI r0, 1
             ADD  r0, r0    ; 2
             ADD  r0, r0    ; 4
             ADD  r0, r0    ; 8
             ADD  r0, r0    ; 16
             HALT",
            vec![0; 64],
            50,
        );
        assert_eq!(regs[0], 16);
    }

    #[test]
    fn branch_flush_discards_wrong_path() {
        let (_h, regs) = run_program(
            "        MOVI r0, 1
                    MOVI r1, 1
                    BEQ  r0, r1, skip
                    MOVI r2, 99     ; wrong path
                    MOVI r3, 99     ; wrong path
            skip:   MOVI r4, 42
                    HALT",
            vec![0; 64],
            50,
        );
        assert_eq!(regs[2], 0, "wrong-path instruction must be flushed");
        assert_eq!(regs[3], 0);
        assert_eq!(regs[4], 42);
    }

    #[test]
    fn loads_and_stores_round_trip() {
        let mut mem = vec![0u32; 64];
        mem[5] = 1234;
        let (h, regs) = run_program(
            "MOVI r0, 5
             LD   r1, [r0]      ; 1234
             ADDI r1, 1         ; 1235
             ST   r1, [r0 + 1]  ; mem[6] = 1235
             LD   r2, [r0 + 1]
             HALT",
            mem,
            60,
        );
        assert_eq!(regs[1], 1235);
        assert_eq!(regs[2], 1235, "load sees the committed store");
        assert_eq!(h.mem(6), 1235);
    }

    #[test]
    fn loop_matches_iss() {
        let src = "        MOVI r0, 6
                          MOVI r1, 0
                  loop:   ADD  r1, r0
                          ADDI r0, -1
                          BNE  r0, r7, loop
                          HALT";
        let (_h, regs) = run_program(src, vec![0; 64], 200);
        let words = Assembler::assemble(src).unwrap();
        let mut iss = Iss::new(&words);
        iss.run(10_000);
        for (k, &r) in regs.iter().enumerate().take(8) {
            assert_eq!(r, iss.reg(k), "r{k} mismatch vs ISS");
        }
    }

    #[test]
    fn mul_instruction_computes_in_hardware() {
        let (_h, regs) = run_program(
            "MOVI r0, 123
             MOVI r1, 456
             MUL  r0, r1        ; 56 088
             MOVI r2, 0x1ff
             SHL  r2, r2        ; junk in high bits
             MUL  r2, r2        ; (r2 & 0xffff)² — exercises masking
             HALT",
            vec![0; 64],
            60,
        );
        assert_eq!(regs[0], 123 * 456);
        let r2 = 0x1ffu32.wrapping_shl(0x1ff & 31) & 0xffff;
        assert_eq!(regs[2], r2.wrapping_mul(r2));
    }

    #[test]
    fn load_use_hazard_bypasses_correctly() {
        let mut mem = vec![0u32; 64];
        mem[3] = 777;
        let (_h, regs) = run_program(
            "MOVI r0, 3
             LD   r1, [r0]      ; load…
             ADD  r1, r1        ; …used immediately (distance-1 bypass)
             ADDI r1, 1
             HALT",
            mem,
            60,
        );
        assert_eq!(regs[1], 777 * 2 + 1);
    }

    #[test]
    fn backward_jmp_loops() {
        let (_h, regs) = run_program(
            "        MOVI r0, 4
                    MOVI r1, 0
            top:    ADDI r1, 10
                    ADDI r0, -1
                    BEQ  r0, r7, out
                    JMP  top        ; backward jump through the pipeline
            out:    HALT",
            vec![0; 64],
            200,
        );
        assert_eq!(regs[1], 40);
        assert_eq!(regs[0], 0);
    }

    #[test]
    fn store_then_immediate_reload_sees_old_value_until_commit() {
        // Stores commit at the next clock edge (memory is behavioural);
        // a load in the very next instruction still sees the committed
        // value because the harness commits before servicing.
        let (h, regs) = run_program(
            "MOVI r0, 9
             MOVI r1, 42
             ST   r1, [r0]
             LD   r2, [r0]
             HALT",
            vec![0; 64],
            60,
        );
        assert_eq!(regs[2], 42);
        assert_eq!(h.mem(9), 42);
    }

    #[test]
    fn parallel_group_replay_is_bit_identical_to_serial() {
        let lib = Library::ninety_nm();
        let (nl, ports) = generate_cpu(&lib);
        let src = "        MOVI r0, 6
                          MOVI r1, 0
                  loop:   ADD  r1, r0
                          ADDI r0, -1
                          BNE  r0, r7, loop
                          HALT";
        let words = Assembler::assemble(src).unwrap();
        let mut sim = Simulator::new(&nl, &lib, SimConfig::default()).unwrap();
        let mut h = CpuHarness::new(words, vec![0; 64]);
        h.reset(&mut sim, &ports, PERIOD, 3);
        assert!(h.run_to_halt(&mut sim, &ports, PERIOD, 200));

        let cfg = SimConfig::default();
        let compiled = scpg_sim::CompiledNetlist::compile(&nl, &lib, cfg.corner).unwrap();
        let serial =
            CpuHarness::replay_groups_serial(&compiled, &cfg, h.trace(), &ports, PERIOD, 0.5, 10);
        assert_eq!(serial.len(), h.trace().len().div_ceil(10));
        for threads in [2, 5] {
            let par = CpuHarness::replay_groups_with_threads(
                &compiled,
                &cfg,
                h.trace(),
                &ports,
                PERIOD,
                0.5,
                10,
                threads,
            );
            assert_eq!(serial, par, "threads = {threads}");
        }
        // The merged record covers the whole replayed workload.
        let merged = Activity::merge_all(&serial).unwrap();
        assert_eq!(merged.duration_ps(), h.trace().len() as u64 * PERIOD);
        assert!(merged.total_toggles() > 0);
    }

    #[test]
    fn settled_group_replay_is_bit_identical_across_engines() {
        let lib = Library::ninety_nm();
        let (nl, ports) = generate_cpu(&lib);
        let src = "        MOVI r0, 6
                          MOVI r1, 0
                  loop:   ADD  r1, r0
                          ADDI r0, -1
                          BNE  r0, r7, loop
                          HALT";
        let words = Assembler::assemble(src).unwrap();
        let mut sim = Simulator::new(&nl, &lib, SimConfig::default()).unwrap();
        let mut h = CpuHarness::new(words, vec![0; 64]);
        h.reset(&mut sim, &ports, PERIOD, 3);
        assert!(h.run_to_halt(&mut sim, &ports, PERIOD, 200));

        let cfg = SimConfig::default();
        let compiled = scpg_sim::CompiledNetlist::compile(&nl, &lib, cfg.corner).unwrap();
        let fast = CpuHarness::replay_groups_settled(
            &compiled,
            h.trace(),
            &ports,
            PERIOD,
            0.5,
            10,
            EngineChoice::Auto,
        )
        .unwrap();
        assert_eq!(
            fast.engine,
            scpg_sim::SettledEngine::BitParallel,
            "the baseline core must take the fast path"
        );
        let slow = CpuHarness::replay_groups_settled(
            &compiled,
            h.trace(),
            &ports,
            PERIOD,
            0.5,
            10,
            EngineChoice::Event,
        )
        .unwrap();
        assert_eq!(slow.engine, scpg_sim::SettledEngine::Event);
        assert_eq!(fast.activities.len(), h.trace().len().div_ceil(10));
        assert_eq!(
            fast.activities, slow.activities,
            "per-group settled activity must be bit-identical across engines"
        );

        // Settled (cycle-boundary) toggles are a subset of the
        // glitch-inclusive event replay's.
        let raw =
            CpuHarness::replay_groups_serial(&compiled, &cfg, h.trace(), &ports, PERIOD, 0.5, 10);
        let settled_total: u64 = fast.activities.iter().map(Activity::total_toggles).sum();
        let raw_total: u64 = raw.iter().map(Activity::total_toggles).sum();
        assert!(settled_total > 0);
        assert!(
            settled_total <= raw_total,
            "settled {settled_total} vs glitch-inclusive {raw_total}"
        );
    }

    #[test]
    fn dhrystone_matches_iss_checksum() {
        // 2 iterations keeps the gate-level runtime reasonable in a unit
        // test; the bench harness runs the full-length workload.
        let iters = 2;
        let words = dhrystone::assemble(iters).unwrap();
        let lib = Library::ninety_nm();
        let (nl, ports) = generate_cpu(&lib);
        let mut sim = Simulator::new(&nl, &lib, SimConfig::default()).unwrap();
        let mut h = CpuHarness::new(words, dhrystone::memory_image());
        h.reset(&mut sim, &ports, PERIOD, 3);
        let halted = h.run_to_halt(&mut sim, &ports, PERIOD, 5_000);
        assert!(halted, "dhrystone must halt");
        assert_eq!(
            h.mem(dhrystone::CHECKSUM_ADDR),
            dhrystone::expected_checksum(iters),
            "gate-level checksum vs native model"
        );
    }
}
