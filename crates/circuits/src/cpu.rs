//! The tm16 gate-level core: a 3-stage pipelined CPU (case study 2).
//!
//! Microarchitecture, mirroring the Cortex-M0's 3-stage organisation:
//!
//! * **IF** — registered PC drives `imem_addr`; the fetched 16-bit word
//!   and the fetch PC land in the IF/DE pipeline register.
//! * **DE** — field extraction, register-file read (8 × 32-bit flops)
//!   with a distance-1 bypass from EX, operand/immediate selection and
//!   branch-target adder; everything lands in the DE/EX register.
//! * **EX** — shared add/sub ALU, logic unit, 32-bit barrel shifter,
//!   equality comparator for branches, load/store address = the ALU add,
//!   write-back into the register file at the stage-ending clock edge.
//!
//! Taken branches resolve in EX and flush the two younger stages (2
//! bubbles). `HALT` sets a sticky flag that freezes the PC and squashes
//! all later side effects.
//!
//! Instruction and data memories are *behavioural* and live outside the
//! core (see [`crate::harness`]), exactly as the paper's power analysis
//! scopes the CPU core without its memories.

use scpg_liberty::Library;
use scpg_netlist::{NetId, Netlist};
use scpg_synth::{LogicBuilder, Word};

/// Net handles of the generated core.
#[derive(Debug, Clone)]
pub struct CpuPorts {
    /// Clock.
    pub clk: NetId,
    /// Active-low reset.
    pub rst_n: NetId,
    /// Instruction address (instruction index), registered.
    pub imem_addr: Word,
    /// Fetched instruction word (input, driven by the harness).
    pub imem_data: Word,
    /// Data address (word address, low 16 bits of the ALU add).
    pub dmem_addr: Word,
    /// Store data.
    pub dmem_wdata: Word,
    /// Store strobe.
    pub dmem_we: NetId,
    /// Load data (input, driven by the harness).
    pub dmem_rdata: Word,
    /// Sticky halt flag.
    pub halted: NetId,
    /// Architectural register file outputs (`q` nets), r0–r7 — visible
    /// for verification against the ISS.
    pub regs: Vec<Word>,
    /// The program counter register (for debug/verification).
    pub pc: Word,
}

const XLEN: usize = 32;
const PC_BITS: usize = 16;

/// 3→8 one-hot decode of a 3-bit field.
fn decode3(b: &mut LogicBuilder<'_>, field: &Word) -> Vec<NetId> {
    let n0 = b.not(field.bit(0));
    let n1 = b.not(field.bit(1));
    let n2 = b.not(field.bit(2));
    let lit = |k: usize, bit: usize, inv: [NetId; 3]| -> NetId {
        if (k >> bit) & 1 == 1 {
            [field.bit(0), field.bit(1), field.bit(2)][bit]
        } else {
            inv[bit]
        }
    };
    (0..8)
        .map(|k| {
            let l0 = lit(k, 0, [n0, n1, n2]);
            let l1 = lit(k, 1, [n0, n1, n2]);
            let l2 = lit(k, 2, [n0, n1, n2]);
            let a = b.and(l0, l1);
            b.and(a, l2)
        })
        .collect()
}

/// Checks `op == k` for the 4-bit opcode field.
fn op_is(b: &mut LogicBuilder<'_>, op: &Word, k: u16) -> NetId {
    let lits: Vec<NetId> = (0..4)
        .map(|i| {
            if (k >> i) & 1 == 1 {
                op.bit(i)
            } else {
                b.not(op.bit(i))
            }
        })
        .collect();
    b.reduce_and(&lits)
}

/// Sign-extends `w` to `n` bits by replicating its top bit.
fn sign_extend(w: &Word, n: usize) -> Word {
    let mut bits = w.bits().to_vec();
    let top = *bits.last().expect("sign_extend of empty word");
    bits.resize(n, top);
    Word::new(bits)
}

/// Generates the tm16 core netlist.
///
/// # Panics
///
/// Panics if the library lacks required cells.
pub fn generate_cpu(lib: &Library) -> (Netlist, CpuPorts) {
    let mut b = LogicBuilder::new("tm16", lib);

    let clk = b.input("clk");
    let rst_n = b.input("rst_n");
    let imem_data = b.input_word("imem_data", 16);
    let dmem_rdata = b.input_word("dmem_rdata", XLEN);
    let zero = b.zero();
    let one = b.one();

    // ---- Register file (8 × 32 resettable flops) -----------------------
    // Declared first so DE can read it and EX can write it; the write
    // data/select nets are created up front and driven later via
    // buffer-free wiring (we collect the D expressions after EX exists).
    // To keep construction single-pass, the write port is expressed with
    // placeholder nets that EX drives through the mux tree below.

    // EX write-back signals are needed textually before EX computes them;
    // allocate their nets now.
    let wb_val_nets: Word = (0..XLEN).map(|_| b.netlist_mut().add_fresh_net()).collect();
    let wb_en_gated = b.netlist_mut().add_fresh_net();
    let wb_reg_ex: Word = (0..3).map(|_| b.netlist_mut().add_fresh_net()).collect();

    let wb_dec = decode3(&mut b, &wb_reg_ex);
    let mut regs: Vec<Word> = Vec::with_capacity(8);
    for (k, &dec_k) in wb_dec.iter().enumerate() {
        let we_k = b.and(wb_en_gated, dec_k);
        // q = dffr(mux(we, q, wb_val)) — build with explicit feedback nets.
        let q: Word = (0..XLEN).map(|_| b.netlist_mut().add_fresh_net()).collect();
        for bit in 0..XLEN {
            let d = b.mux(we_k, q.bit(bit), wb_val_nets.bit(bit));
            let q_cell = b.dff_r(d, clk, rst_n);
            // Tie the pre-allocated q net to the flop output via a buffer
            // (the feedback net needs a driver; a buffer keeps ids stable).
            let cell_name = lib
                .cell_of_kind(scpg_liberty::CellKind::Buf)
                .expect("library has a buffer")
                .name()
                .to_string();
            let inst = format!("rfq_{k}_{bit}");
            b.netlist_mut()
                .add_instance(inst, cell_name, &[q_cell, q.bit(bit)])
                .expect("unique regfile buffer name");
        }
        regs.push(q);
    }

    // ---- IF stage ------------------------------------------------------
    // PC register with feedback through the next-PC mux (nets allocated
    // now, driven at the end).
    let pc_q: Word = (0..PC_BITS)
        .map(|_| b.netlist_mut().add_fresh_net())
        .collect();
    let pc_d: Word = (0..PC_BITS)
        .map(|_| b.netlist_mut().add_fresh_net())
        .collect();
    for bit in 0..PC_BITS {
        let q = b.dff_r(pc_d.bit(bit), clk, rst_n);
        let cell_name = lib
            .cell_of_kind(scpg_liberty::CellKind::Buf)
            .expect("library has a buffer")
            .name()
            .to_string();
        b.netlist_mut()
            .add_instance(format!("pcq_{bit}"), cell_name, &[q, pc_q.bit(bit)])
            .expect("unique pc buffer name");
    }

    // Flush/halt control nets (driven by EX below).
    let flush = b.netlist_mut().add_fresh_net();
    let halted_next = b.netlist_mut().add_fresh_net();

    // IF/DE pipeline register.
    let instr = b.dff_word(&imem_data, clk, rst_n);
    let pc_de = b.dff_word(&pc_q, clk, rst_n);
    let nf = b.not(flush);
    let nh = b.not(halted_next);
    let if_valid_d = b.and(nf, nh);
    let valid_de = b.dff_r(if_valid_d, clk, rst_n);

    // ---- DE stage ------------------------------------------------------
    let op = instr.slice(12, 16);
    let rd_sel = instr.slice(9, 12);
    let rs_sel = instr.slice(6, 9);

    let is_movi = op_is(&mut b, &op, 0);
    let is_addi = op_is(&mut b, &op, 1);
    let is_alu = op_is(&mut b, &op, 2);
    let is_ld = op_is(&mut b, &op, 3);
    let is_st = op_is(&mut b, &op, 4);
    let is_beq = op_is(&mut b, &op, 5);
    let is_bne = op_is(&mut b, &op, 6);
    let is_jmp = op_is(&mut b, &op, 7);
    let is_halt = op_is(&mut b, &op, 8);
    let is_mul = op_is(&mut b, &op, 10);

    // Register read with one-hot muxes.
    let rd_dec = decode3(&mut b, &rd_sel);
    let rs_dec = decode3(&mut b, &rs_sel);
    let reg_refs: Vec<&Word> = regs.iter().collect();
    let rd_raw = b.onehot_mux(&rd_dec, &reg_refs);
    let rs_raw = b.onehot_mux(&rs_dec, &reg_refs);

    // Distance-1 bypass from EX write-back.
    let rd_match = b.eq_words(&wb_reg_ex, &rd_sel);
    let rs_match = b.eq_words(&wb_reg_ex, &rs_sel);
    let byp_rd = b.and(wb_en_gated, rd_match);
    let byp_rs = b.and(wb_en_gated, rs_match);
    let rd_val = b.mux_words(byp_rd, &rd_raw, &wb_val_nets);
    let rs_val = b.mux_words(byp_rs, &rs_raw, &wb_val_nets);

    // Immediates (LSB-first words, extended to 32 bits).
    let imm9 = instr.slice(0, 9).resize(XLEN, zero);
    let simm9 = sign_extend(&instr.slice(0, 9), XLEN);
    let off6 = instr.slice(0, 6).resize(XLEN, zero);
    let soff6 = sign_extend(&instr.slice(0, 6), PC_BITS);
    let soff12 = sign_extend(&instr.slice(0, 12), PC_BITS);

    // Operand A: base register for memory ops, rd otherwise.
    let is_mem = b.or(is_ld, is_st);
    let a_de = b.mux_words(is_mem, &rd_val, &rs_val);

    // Operand B: imm9 (MOVI), simm9 (ADDI), off6 (LD/ST), else rs.
    let mut b_de = rs_val.clone();
    b_de = b.mux_words(is_mem, &b_de, &off6);
    b_de = b.mux_words(is_addi, &b_de, &simm9);
    b_de = b.mux_words(is_movi, &b_de, &imm9);

    // ALU function: instruction field for ALU ops, MOV (101) for MOVI,
    // ADD (000) otherwise.
    let fn_field = instr.slice(3, 6);
    let f0a = b.and(is_alu, fn_field.bit(0));
    let fn0 = b.or(f0a, is_movi);
    let fn1 = b.and(is_alu, fn_field.bit(1));
    let f2a = b.and(is_alu, fn_field.bit(2));
    let fn2 = b.or(f2a, is_movi);
    let fn_de = Word::new(vec![fn0, fn1, fn2]);

    // Branch/jump target: pc_de + 1 + offset (carry-in implements the +1).
    let off_mux = b.mux_words(is_jmp, &soff6, &soff12);
    let (target_de, _c) = b.add_words(&pc_de, &off_mux, one);

    // Write-back intent.
    let wb1 = b.or(is_movi, is_addi);
    let wb2 = b.or(is_alu, is_ld);
    let wb12 = b.or(wb1, wb2);
    let wb_any = b.or(wb12, is_mul);
    let wb_en_de = b.and(wb_any, valid_de);

    // DE/EX pipeline register.
    let a_ex = b.dff_word(&a_de, clk, rst_n);
    let b_ex = b.dff_word(&b_de, clk, rst_n);
    let sd_ex = b.dff_word(&rd_val, clk, rst_n);
    let fn_ex = b.dff_word(&fn_de, clk, rst_n);
    let wb_reg_d = b.dff_word(&rd_sel, clk, rst_n);
    let target_ex = b.dff_word(&target_de, clk, rst_n);
    let de_valid_d = {
        let nf = b.not(flush);
        let nh = b.not(halted_next);
        let v = b.and(valid_de, nf);
        b.and(v, nh)
    };
    let valid_ex = b.dff_r(de_valid_d, clk, rst_n);
    let wb_en_d = b.and(wb_en_de, de_valid_d);
    let wb_en_ex = b.dff_r(wb_en_d, clk, rst_n);
    let ld_d = b.and(is_ld, de_valid_d);
    let ld_ex = b.dff_r(ld_d, clk, rst_n);
    let st_d = b.and(is_st, de_valid_d);
    let st_ex = b.dff_r(st_d, clk, rst_n);
    let beq_d = b.and(is_beq, de_valid_d);
    let beq_ex = b.dff_r(beq_d, clk, rst_n);
    let bne_d = b.and(is_bne, de_valid_d);
    let bne_ex = b.dff_r(bne_d, clk, rst_n);
    let jmp_d = b.and(is_jmp, de_valid_d);
    let jmp_ex = b.dff_r(jmp_d, clk, rst_n);
    let halt_d = b.and(is_halt, de_valid_d);
    let halt_ex = b.dff_r(halt_d, clk, rst_n);
    let mul_d = b.and(is_mul, de_valid_d);
    let mul_ex = b.dff_r(mul_d, clk, rst_n);

    // Tie the pre-allocated write-back register-select nets to the flops.
    for bit in 0..3 {
        let cell_name = lib
            .cell_of_kind(scpg_liberty::CellKind::Buf)
            .expect("library has a buffer")
            .name()
            .to_string();
        b.netlist_mut()
            .add_instance(
                format!("wbr_{bit}"),
                cell_name,
                &[wb_reg_d.bit(bit), wb_reg_ex.bit(bit)],
            )
            .expect("unique wb-reg buffer name");
    }

    // ---- EX stage ------------------------------------------------------
    let fn_dec = decode3(&mut b, &fn_ex);
    let is_sub = fn_dec[1];

    // Shared adder: A + (B ^ sub_mask) + is_sub.
    let sub_mask = Word::new(vec![is_sub; XLEN]);
    let b_eff = b.xor_words(&b_ex, &sub_mask);
    let (arith, _carry) = b.add_words(&a_ex, &b_eff, is_sub);

    let and_r = b.and_words(&a_ex, &b_ex);
    let or_r = b.or_words(&a_ex, &b_ex);
    let xor_r = b.xor_words(&a_ex, &b_ex);
    let shift_r = {
        let amount = b_ex.slice(0, 5);
        b.shift_words(&a_ex, &amount, fn_ex.bit(0))
    };

    let sel_arith = b.or(fn_dec[0], fn_dec[1]);
    let sel_shift = b.or(fn_dec[6], fn_dec[7]);
    let alu_mux = b.onehot_mux(
        &[
            sel_arith, fn_dec[2], fn_dec[3], fn_dec[4], fn_dec[5], sel_shift,
        ],
        &[&arith, &and_r, &or_r, &xor_r, &b_ex, &shift_r],
    );

    // Single-cycle 16×16→32 hardware multiplier (the M0's MULS): an AND
    // partial-product matrix reduced by ripple rows, like the standalone
    // case-study array.
    let mul_r = {
        let a_lo = a_ex.slice(0, 16);
        let b_lo = b_ex.slice(0, 16);
        let mut acc = Word::new(vec![zero; XLEN]);
        for i in 0..16 {
            let row: Word = (0..16).map(|j| b.and(a_lo.bit(j), b_lo.bit(i))).collect();
            let mut bits = vec![zero; i];
            bits.extend_from_slice(row.bits());
            let shifted = Word::new(bits).resize(XLEN, zero);
            let (sum, _c) = b.add_words(&acc, &shifted, zero);
            acc = sum;
        }
        acc
    };
    let alu_result = b.mux_words(mul_ex, &alu_mux, &mul_r);

    // Sticky halt.
    let halted_q = {
        let h_q: NetId = b.netlist_mut().add_fresh_net();
        let halt_now = b.and(halt_ex, valid_ex);
        let h_d = b.or(h_q, halt_now);
        let q = b.dff_r(h_d, clk, rst_n);
        let cell_name = lib
            .cell_of_kind(scpg_liberty::CellKind::Buf)
            .expect("library has a buffer")
            .name()
            .to_string();
        b.netlist_mut()
            .add_instance("haltq", cell_name, &[q, h_q])
            .expect("unique halt buffer name");
        // halted_next = halted_q | halt_now (drives fetch gating).
        let hn = b.or(h_q, halt_now);
        let cell_name2 = lib
            .cell_of_kind(scpg_liberty::CellKind::Buf)
            .expect("library has a buffer")
            .name()
            .to_string();
        b.netlist_mut()
            .add_instance("haltn", cell_name2, &[hn, halted_next])
            .expect("unique halted_next buffer name");
        h_q
    };

    // Branch resolution.
    let eq = b.eq_words(&a_ex, &b_ex);
    let neq = b.not(eq);
    let beq_taken = b.and(beq_ex, eq);
    let bne_taken = b.and(bne_ex, neq);
    let br = b.or(beq_taken, bne_taken);
    let any_jump = b.or(br, jmp_ex);
    let live = {
        let nh = b.not(halted_q);
        b.and(valid_ex, nh)
    };
    let taken = b.and(any_jump, live);
    {
        let cell_name = lib
            .cell_of_kind(scpg_liberty::CellKind::Buf)
            .expect("library has a buffer")
            .name()
            .to_string();
        b.netlist_mut()
            .add_instance("flushb", cell_name, &[taken, flush])
            .expect("unique flush buffer name");
    }

    // Write-back value and strobes (driving the pre-allocated nets).
    let wb_val = b.mux_words(ld_ex, &alu_result, &dmem_rdata);
    for bit in 0..XLEN {
        let cell_name = lib
            .cell_of_kind(scpg_liberty::CellKind::Buf)
            .expect("library has a buffer")
            .name()
            .to_string();
        b.netlist_mut()
            .add_instance(
                format!("wbv_{bit}"),
                cell_name,
                &[wb_val.bit(bit), wb_val_nets.bit(bit)],
            )
            .expect("unique wb-val buffer name");
    }
    let wb_live = b.and(wb_en_ex, live);
    {
        let cell_name = lib
            .cell_of_kind(scpg_liberty::CellKind::Buf)
            .expect("library has a buffer")
            .name()
            .to_string();
        b.netlist_mut()
            .add_instance("wbeb", cell_name, &[wb_live, wb_en_gated])
            .expect("unique wb-en buffer name");
    }

    // Next PC: hold on halt; branch target on taken; else PC + 1.
    let one_pc = {
        let mut bits = vec![one];
        bits.resize(PC_BITS, zero);
        Word::new(bits)
    };
    let (pc_inc, _c2) = b.add_words(&pc_q, &one_pc, zero);
    let pc_br = b.mux_words(taken, &pc_inc, &target_ex);
    let pc_next = {
        let hn = Word::new(vec![halted_next; PC_BITS]);
        let hold = b.and_words(&hn, &pc_q);
        let nhn: Word = {
            let inv = b.not(halted_next);
            Word::new(vec![inv; PC_BITS])
        };
        let go = b.and_words(&nhn, &pc_br);
        b.or_words(&hold, &go)
    };
    for bit in 0..PC_BITS {
        let cell_name = lib
            .cell_of_kind(scpg_liberty::CellKind::Buf)
            .expect("library has a buffer")
            .name()
            .to_string();
        b.netlist_mut()
            .add_instance(
                format!("pcd_{bit}"),
                cell_name,
                &[pc_next.bit(bit), pc_d.bit(bit)],
            )
            .expect("unique pc-d buffer name");
    }

    // ---- Ports ---------------------------------------------------------
    b.output_word("imem_addr", &pc_q);
    let dmem_addr = arith.slice(0, PC_BITS);
    b.output_word("dmem_addr", &dmem_addr);
    b.output_word("dmem_wdata", &sd_ex);
    let st_live = b.and(st_ex, live);
    b.output("dmem_we", st_live);
    b.output("halted", halted_q);

    let nl = b.finish();
    (
        nl,
        CpuPorts {
            clk,
            rst_n,
            imem_addr: pc_q.clone(),
            imem_data,
            dmem_addr,
            dmem_wdata: sd_ex,
            dmem_we: st_live,
            dmem_rdata,
            halted: halted_q,
            regs,
            pc: pc_q,
        },
    )
}

#[cfg(test)]
mod tests {
    use super::*;
    use scpg_liberty::Library;

    #[test]
    fn netlist_is_well_formed() {
        let lib = Library::ninety_nm();
        let (nl, _) = generate_cpu(&lib);
        nl.validate(&lib).unwrap();
    }

    #[test]
    fn size_is_cpu_class() {
        let lib = Library::ninety_nm();
        let (nl, _) = generate_cpu(&lib);
        let s = nl.stats(&lib);
        // Register-heavy, thousands of combinational gates — the Cortex-M0
        // class the paper studies (6 747 comb gates; ours is a leaner core
        // but in the same regime).
        assert!(s.sequential >= 400, "flops = {}", s.sequential);
        assert!(
            (1_500..12_000).contains(&s.combinational),
            "combinational gates = {}",
            s.combinational
        );
    }

    #[test]
    fn no_combinational_loops() {
        let lib = Library::ninety_nm();
        let (nl, _) = generate_cpu(&lib);
        let report = scpg_sta::analyze(&nl, &lib, scpg_units::Voltage::from_mv(600.0)).unwrap();
        assert!(report.t_eval.as_ns() > 1.0, "t_eval = {}", report.t_eval);
    }
}
