//! The 16×16 registered array multiplier (case study 1).

use scpg_liberty::Library;
use scpg_netlist::{NetId, Netlist};
use scpg_synth::{LogicBuilder, Word};

/// Net handles of the generated multiplier.
#[derive(Debug, Clone)]
pub struct MultiplierPorts {
    /// Clock input.
    pub clk: NetId,
    /// Active-low reset.
    pub rst_n: NetId,
    /// Operand A (LSB first).
    pub a: Word,
    /// Operand B.
    pub b: Word,
    /// Registered 2n-bit product.
    pub product: Word,
}

/// Generates an `n`×`n` array multiplier with input and output registers.
///
/// Pipeline latency is 2 cycles: operands are captured into input
/// registers, the combinational array evaluates, and the product is
/// captured into output registers. At n = 16 the combinational cloud is
/// ≈550 cells — the size class the paper quotes (556 gates).
///
/// # Panics
///
/// Panics if `n == 0` or the library lacks required cells.
pub fn generate_multiplier(lib: &Library, n: usize) -> (Netlist, MultiplierPorts) {
    assert!(n > 0, "multiplier width must be positive");
    let mut b = LogicBuilder::new(format!("mult{n}x{n}"), lib);

    let clk = b.input("clk");
    let rst_n = b.input("rst_n");
    let a_in = b.input_word("a", n);
    let b_in = b.input_word("b", n);

    // Input registers.
    let ra = b.dff_word(&a_in, clk, rst_n);
    let rb = b.dff_word(&b_in, clk, rst_n);

    // Partial-product matrix: pp[i][j] = ra[j] & rb[i].
    // Row i is worth 2^i; accumulate rows into a 2n-bit sum.
    let zero = b.zero();
    let mut acc = Word::new(vec![zero; 2 * n]);
    for i in 0..n {
        let row: Word = (0..n)
            .map(|j| b.and(ra.bit(j), rb.bit(i)))
            .collect::<Vec<_>>()
            .into_iter()
            .collect();
        // Shift row up by i and zero-extend to 2n bits.
        let mut bits = vec![zero; i];
        bits.extend_from_slice(row.bits());
        let shifted = Word::new(bits).resize(2 * n, zero);
        let (sum, _c) = b.add_words(&acc, &shifted, zero);
        acc = sum;
    }

    // Output registers.
    let product = b.dff_word(&acc, clk, rst_n);
    b.output_word("p", &product);

    let nl = b.finish();
    (
        nl,
        MultiplierPorts {
            clk,
            rst_n,
            a: a_in,
            b: b_in,
            product,
        },
    )
}

/// Generates an `n`×`n` **Wallace-tree** multiplier with input and output
/// registers — the fast-architecture ablation to [`generate_multiplier`]'s
/// ripple array.
///
/// Partial products are reduced column-wise with 3:2 (full-adder) and
/// 2:2 (half-adder) compressors until every column holds at most two
/// bits, then a single carry-propagate add finishes. `T_eval` grows
/// `O(log n)` instead of `O(n)`, which under SCPG converts directly into
/// a wider gating window at the same clock.
///
/// # Panics
///
/// Panics if `n == 0` or the library lacks required cells.
pub fn generate_wallace_multiplier(lib: &Library, n: usize) -> (Netlist, MultiplierPorts) {
    assert!(n > 0, "multiplier width must be positive");
    let mut b = LogicBuilder::new(format!("wallace{n}x{n}"), lib);

    let clk = b.input("clk");
    let rst_n = b.input("rst_n");
    let a_in = b.input_word("a", n);
    let b_in = b.input_word("b", n);
    let ra = b.dff_word(&a_in, clk, rst_n);
    let rb = b.dff_word(&b_in, clk, rst_n);

    // Column bins: columns[w] holds the bits of weight 2^w.
    let mut columns: Vec<Vec<NetId>> = vec![Vec::new(); 2 * n];
    for i in 0..n {
        for j in 0..n {
            let pp = b.and(ra.bit(j), rb.bit(i));
            columns[i + j].push(pp);
        }
    }

    // Reduce until every column has ≤ 2 bits.
    loop {
        let worst = columns.iter().map(Vec::len).max().unwrap_or(0);
        if worst <= 2 {
            break;
        }
        let mut next: Vec<Vec<NetId>> = vec![Vec::new(); columns.len()];
        for (w, col) in columns.iter().enumerate() {
            let mut it = col.chunks_exact(3);
            for triple in it.by_ref() {
                let (s, c) = b.full_add(triple[0], triple[1], triple[2]);
                next[w].push(s);
                if w + 1 < next.len() {
                    next[w + 1].push(c);
                }
            }
            match it.remainder() {
                [x] => next[w].push(*x),
                [x, y] => {
                    let (s, c) = b.half_add(*x, *y);
                    next[w].push(s);
                    if w + 1 < next.len() {
                        next[w + 1].push(c);
                    }
                }
                _ => {}
            }
        }
        columns = next;
    }

    // Final carry-propagate addition over the two remaining rows, using
    // the carry-select adder so the CPA does not dominate the tree.
    let zero = b.zero();
    let row0: Word = columns
        .iter()
        .map(|c| c.first().copied().unwrap_or(zero))
        .collect();
    let row1: Word = columns
        .iter()
        .map(|c| c.get(1).copied().unwrap_or(zero))
        .collect();
    let (acc, _c) = b.add_words_fast(&row0, &row1, zero);

    let product = b.dff_word(&acc, clk, rst_n);
    b.output_word("p", &product);
    let nl = b.finish();
    (
        nl,
        MultiplierPorts {
            clk,
            rst_n,
            a: a_in,
            b: b_in,
            product,
        },
    )
}

#[cfg(test)]
mod tests {
    use super::*;
    use scpg_liberty::{Library, Logic};
    use scpg_sim::{ClockedTestbench, SimConfig, Simulator};

    fn drive_word(pairs: &mut Vec<(NetId, Logic)>, w: &Word, value: u64) {
        for (i, &bit) in w.bits().iter().enumerate() {
            pairs.push((bit, Logic::from_bool((value >> i) & 1 == 1)));
        }
    }

    fn read_word(sim: &Simulator<'_>, w: &Word) -> Option<u64> {
        let mut v = 0u64;
        for (i, &bit) in w.bits().iter().enumerate() {
            match sim.value(bit).to_bool() {
                Some(true) => v |= 1 << i,
                Some(false) => {}
                None => return None,
            }
        }
        Some(v)
    }

    #[test]
    fn gate_count_matches_paper_size_class() {
        let lib = Library::ninety_nm();
        let (nl, _) = generate_multiplier(&lib, 16);
        nl.validate(&lib).unwrap();
        let stats = nl.stats(&lib);
        // Paper: 556 combinational gates. Our array lands in the same
        // class (AND matrix ≈256 + adder array ≈300).
        assert!(
            (450..700).contains(&stats.combinational),
            "combinational gates = {}",
            stats.combinational
        );
        // 2×16 input + 32 output flops.
        assert_eq!(stats.sequential, 64);
    }

    #[test]
    fn multiplies_correctly_through_the_pipeline() {
        let lib = Library::ninety_nm();
        let (nl, ports) = generate_multiplier(&lib, 8);
        let sim = Simulator::new(&nl, &lib, SimConfig::default()).unwrap();
        // 1 µs period is far above this array's T_eval at 0.6 V.
        let mut tb = ClockedTestbench::new(sim, ports.clk, 1_000_000, 0.5);

        // Reset pulse.
        tb.sim_mut().set_input(ports.rst_n, Logic::Zero);
        tb.idle_cycles(2);
        tb.sim_mut().set_input(ports.rst_n, Logic::One);

        let cases: [(u64, u64); 5] = [(0, 0), (1, 1), (7, 9), (255, 255), (123, 200)];
        let mut results = Vec::new();
        for (i, &(x, y)) in cases.iter().enumerate() {
            let mut stim = Vec::new();
            drive_word(&mut stim, &ports.a, x);
            drive_word(&mut stim, &ports.b, y);
            tb.cycle(&stim);
            // Latency 2: capture the product two cycles later.
            if i >= 2 {
                results.push(read_word(tb.sim(), &ports.product));
            }
        }
        tb.idle_cycles(2);
        results.push(read_word(tb.sim(), &ports.product));
        // The last case's product is now present.
        let last = results.last().unwrap();
        assert_eq!(*last, Some(123 * 200), "pipelined product");
    }

    #[test]
    fn wallace_tree_is_faster_than_the_array() {
        let lib = Library::ninety_nm();
        let (array, _) = generate_multiplier(&lib, 16);
        let (wallace, _) = generate_wallace_multiplier(&lib, 16);
        wallace.validate(&lib).unwrap();
        let v = scpg_units::Voltage::from_mv(600.0);
        let t_array = scpg_sta::analyze(&array, &lib, v).unwrap().t_eval;
        let t_wallace = scpg_sta::analyze(&wallace, &lib, v).unwrap().t_eval;
        assert!(
            t_wallace.value() < 0.6 * t_array.value(),
            "log-depth tree must beat the ripple array: {t_wallace} vs {t_array}"
        );
    }

    #[test]
    fn wallace_tree_multiplies_exhaustively_at_4_bits() {
        let lib = Library::ninety_nm();
        let (nl, ports) = generate_wallace_multiplier(&lib, 4);
        let sim = Simulator::new(&nl, &lib, SimConfig::default()).unwrap();
        let mut tb = ClockedTestbench::new(sim, ports.clk, 500_000, 0.5);
        tb.sim_mut().set_input(ports.rst_n, Logic::Zero);
        tb.idle_cycles(2);
        tb.sim_mut().set_input(ports.rst_n, Logic::One);

        let mut fed: Vec<(u64, u64)> = Vec::new();
        for x in 0..16u64 {
            for y in 0..16u64 {
                let mut stim = Vec::new();
                drive_word(&mut stim, &ports.a, x);
                drive_word(&mut stim, &ports.b, y);
                tb.cycle(&stim);
                fed.push((x, y));
                if fed.len() >= 3 {
                    let (px, py) = fed[fed.len() - 3];
                    assert_eq!(
                        read_word(tb.sim(), &ports.product),
                        Some(px * py),
                        "{px} × {py}"
                    );
                }
            }
        }
    }

    #[test]
    fn exhaustive_small_multiplier() {
        let lib = Library::ninety_nm();
        let (nl, ports) = generate_multiplier(&lib, 4);
        let sim = Simulator::new(&nl, &lib, SimConfig::default()).unwrap();
        let mut tb = ClockedTestbench::new(sim, ports.clk, 500_000, 0.5);
        tb.sim_mut().set_input(ports.rst_n, Logic::Zero);
        tb.idle_cycles(2);
        tb.sim_mut().set_input(ports.rst_n, Logic::One);

        // Feed all 256 operand pairs; check with a 2-cycle delay.
        let mut fed: Vec<(u64, u64)> = Vec::new();
        for x in 0..16u64 {
            for y in 0..16u64 {
                let mut stim = Vec::new();
                drive_word(&mut stim, &ports.a, x);
                drive_word(&mut stim, &ports.b, y);
                tb.cycle(&stim);
                fed.push((x, y));
                if fed.len() >= 3 {
                    let (px, py) = fed[fed.len() - 3];
                    assert_eq!(
                        read_word(tb.sim(), &ports.product),
                        Some(px * py),
                        "{px} × {py}"
                    );
                }
            }
        }
    }
}
