//! The paper's two case-study designs, generated as gate-level netlists.
//!
//! * [`multiplier`] — a registered 16×16 **array multiplier** (paper
//!   §III-A): an AND partial-product matrix reduced by rows of full/half
//!   adders, chosen by the authors "because of its large concentration of
//!   combinational logic".
//! * [`cpu`] — the **tm16 core**, a 3-stage (fetch/decode/execute)
//!   pipelined RISC CPU standing in for the ARM Cortex-M0 (§III-B):
//!   8×32-bit register file, ALU with barrel shifter, loads/stores and
//!   branches, built entirely from library cells via [`scpg_synth`].
//! * [`harness`] — behavioural instruction/data memories and a cycle
//!   driver so programs assembled with [`scpg_isa`] run on the gate-level
//!   core, with the ISS as the golden reference.

#![warn(missing_docs)]

pub mod cpu;
pub mod harness;
pub mod multiplier;

pub use cpu::{generate_cpu, CpuPorts};
pub use harness::CpuHarness;
pub use multiplier::{generate_multiplier, generate_wallace_multiplier, MultiplierPorts};
