//! Vendored std-only JSON for the SCPG serving and bench layers.
//!
//! The build environment is offline, so `serde_json` is unavailable; this
//! crate supplies the small subset the workspace needs:
//!
//! * a [`Json`] value type whose objects **preserve insertion order**
//!   (they are `Vec<(String, Json)>`, not a map), so hand-built documents
//!   like `BENCH_sim.json` render in the order they were assembled;
//! * a recursive-descent [`Json::parse`] with full string-escape handling
//!   (including `\uXXXX` surrogate pairs), strict JSON number grammar and
//!   a nesting-depth limit;
//! * compact ([`Json::write`]) and pretty ([`Json::pretty`]) writers whose
//!   number formatting is Rust's shortest round-trip `f64` display, so
//!   `parse(write(x)) == x` bit-for-bit for every finite float;
//! * [`Json::canonical`] — sorted-key compact form, used by the serving
//!   layer as its cache key so that two requests differing only in key
//!   order or whitespace hit the same cache entry.
//!
//! Non-finite numbers (`NaN`, `±inf`) have no JSON representation; the
//! writers emit `null` for them (the same policy as `serde_json`), and the
//! parser never produces them.
//!
//! ```
//! use scpg_json::Json;
//! let v = Json::parse(r#"{"b": 1, "a": [true, "x\n"]}"#).unwrap();
//! assert_eq!(v.get("a").and_then(|a| a.as_array()).map(|a| a.len()), Some(2));
//! assert_eq!(v.canonical(), r#"{"a":[true,"x\n"],"b":1}"#);
//! ```

#![warn(missing_docs)]

use std::fmt;

/// Maximum nesting depth accepted by the parser (arrays + objects).
pub const MAX_DEPTH: usize = 128;

/// A JSON value. Objects preserve insertion order.
#[derive(Debug, Clone, PartialEq)]
pub enum Json {
    /// `null`.
    Null,
    /// `true` / `false`.
    Bool(bool),
    /// Any JSON number (always carried as `f64`).
    Num(f64),
    /// A string (unescaped).
    Str(String),
    /// An array.
    Arr(Vec<Json>),
    /// An object as ordered key/value pairs.
    Obj(Vec<(String, Json)>),
}

/// A parse failure, with the byte offset it occurred at.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct JsonError {
    /// Byte offset into the input.
    pub offset: usize,
    /// What went wrong.
    pub message: String,
}

impl fmt::Display for JsonError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "JSON error at byte {}: {}", self.offset, self.message)
    }
}

impl std::error::Error for JsonError {}

impl From<bool> for Json {
    fn from(v: bool) -> Self {
        Json::Bool(v)
    }
}
impl From<f64> for Json {
    fn from(v: f64) -> Self {
        Json::Num(v)
    }
}
impl From<u64> for Json {
    fn from(v: u64) -> Self {
        Json::Num(v as f64)
    }
}
impl From<usize> for Json {
    fn from(v: usize) -> Self {
        Json::Num(v as f64)
    }
}
impl From<&str> for Json {
    fn from(v: &str) -> Self {
        Json::Str(v.to_string())
    }
}
impl From<String> for Json {
    fn from(v: String) -> Self {
        Json::Str(v)
    }
}
impl From<Vec<Json>> for Json {
    fn from(v: Vec<Json>) -> Self {
        Json::Arr(v)
    }
}

impl Json {
    /// Builds an object from `(key, value)` pairs, preserving order.
    pub fn object<K: Into<String>, V: Into<Json>>(pairs: impl IntoIterator<Item = (K, V)>) -> Self {
        Json::Obj(
            pairs
                .into_iter()
                .map(|(k, v)| (k.into(), v.into()))
                .collect(),
        )
    }

    /// Builds an array from values.
    pub fn array<V: Into<Json>>(items: impl IntoIterator<Item = V>) -> Self {
        Json::Arr(items.into_iter().map(Into::into).collect())
    }

    /// Object field lookup (first match; `None` for non-objects).
    pub fn get(&self, key: &str) -> Option<&Json> {
        match self {
            Json::Obj(pairs) => pairs.iter().find(|(k, _)| k == key).map(|(_, v)| v),
            _ => None,
        }
    }

    /// The number, if this is a number.
    pub fn as_f64(&self) -> Option<f64> {
        match self {
            Json::Num(n) => Some(*n),
            _ => None,
        }
    }

    /// The number as a `u64`, if it is one exactly (integral, in range).
    pub fn as_u64(&self) -> Option<u64> {
        match self {
            Json::Num(n) if *n >= 0.0 && *n <= u64::MAX as f64 && n.fract() == 0.0 => {
                Some(*n as u64)
            }
            _ => None,
        }
    }

    /// The string, if this is a string.
    pub fn as_str(&self) -> Option<&str> {
        match self {
            Json::Str(s) => Some(s),
            _ => None,
        }
    }

    /// The boolean, if this is a boolean.
    pub fn as_bool(&self) -> Option<bool> {
        match self {
            Json::Bool(b) => Some(*b),
            _ => None,
        }
    }

    /// The elements, if this is an array.
    pub fn as_array(&self) -> Option<&[Json]> {
        match self {
            Json::Arr(items) => Some(items),
            _ => None,
        }
    }

    /// The pairs, if this is an object.
    pub fn as_object(&self) -> Option<&[(String, Json)]> {
        match self {
            Json::Obj(pairs) => Some(pairs),
            _ => None,
        }
    }

    /// `true` for `Json::Null`.
    pub fn is_null(&self) -> bool {
        matches!(self, Json::Null)
    }

    /// Parses a complete JSON document (trailing whitespace allowed,
    /// trailing garbage rejected).
    ///
    /// # Errors
    ///
    /// Returns the first syntax error with its byte offset.
    pub fn parse(input: &str) -> Result<Json, JsonError> {
        let mut p = Parser {
            bytes: input.as_bytes(),
            input,
            pos: 0,
        };
        p.skip_ws();
        let v = p.value(0)?;
        p.skip_ws();
        if p.pos != p.bytes.len() {
            return Err(p.err("trailing characters after the document"));
        }
        Ok(v)
    }

    /// Compact serialization (no whitespace).
    pub fn write(&self) -> String {
        let mut out = String::new();
        self.write_into(&mut out);
        out
    }

    /// Pretty serialization with two-space indentation and a trailing
    /// newline — the house style of the repo's emitted artifacts.
    pub fn pretty(&self) -> String {
        let mut out = String::new();
        self.pretty_into(&mut out, 0);
        out.push('\n');
        out
    }

    /// Recursively sorts every object's keys in place.
    pub fn sort_keys(&mut self) {
        match self {
            Json::Arr(items) => items.iter_mut().for_each(Json::sort_keys),
            Json::Obj(pairs) => {
                pairs.iter_mut().for_each(|(_, v)| v.sort_keys());
                pairs.sort_by(|a, b| a.0.cmp(&b.0));
            }
            _ => {}
        }
    }

    /// The canonical form: sorted keys, compact writing. Two documents
    /// that differ only in key order or whitespace canonicalize to the
    /// same string — the serving layer's cache-key property.
    pub fn canonical(&self) -> String {
        let mut c = self.clone();
        c.sort_keys();
        c.write()
    }

    fn write_into(&self, out: &mut String) {
        match self {
            Json::Null => out.push_str("null"),
            Json::Bool(true) => out.push_str("true"),
            Json::Bool(false) => out.push_str("false"),
            Json::Num(n) => write_number(*n, out),
            Json::Str(s) => write_string(s, out),
            Json::Arr(items) => {
                out.push('[');
                for (i, v) in items.iter().enumerate() {
                    if i > 0 {
                        out.push(',');
                    }
                    v.write_into(out);
                }
                out.push(']');
            }
            Json::Obj(pairs) => {
                out.push('{');
                for (i, (k, v)) in pairs.iter().enumerate() {
                    if i > 0 {
                        out.push(',');
                    }
                    write_string(k, out);
                    out.push(':');
                    v.write_into(out);
                }
                out.push('}');
            }
        }
    }

    fn pretty_into(&self, out: &mut String, indent: usize) {
        const PAD: &str = "  ";
        match self {
            Json::Arr(items) if !items.is_empty() => {
                out.push_str("[\n");
                for (i, v) in items.iter().enumerate() {
                    if i > 0 {
                        out.push_str(",\n");
                    }
                    out.push_str(&PAD.repeat(indent + 1));
                    v.pretty_into(out, indent + 1);
                }
                out.push('\n');
                out.push_str(&PAD.repeat(indent));
                out.push(']');
            }
            Json::Obj(pairs) if !pairs.is_empty() => {
                out.push_str("{\n");
                for (i, (k, v)) in pairs.iter().enumerate() {
                    if i > 0 {
                        out.push_str(",\n");
                    }
                    out.push_str(&PAD.repeat(indent + 1));
                    write_string(k, out);
                    out.push_str(": ");
                    v.pretty_into(out, indent + 1);
                }
                out.push('\n');
                out.push_str(&PAD.repeat(indent));
                out.push('}');
            }
            _ => self.write_into(out),
        }
    }
}

/// Rust's `{}` for `f64` is the shortest string that round-trips, which
/// is exactly the canonical-number property the cache key needs. JSON has
/// no non-finite literals, so those become `null`.
fn write_number(n: f64, out: &mut String) {
    if n.is_finite() {
        out.push_str(&n.to_string());
    } else {
        out.push_str("null");
    }
}

fn write_string(s: &str, out: &mut String) {
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            '\u{08}' => out.push_str("\\b"),
            '\u{0C}' => out.push_str("\\f"),
            c if (c as u32) < 0x20 => {
                out.push_str(&format!("\\u{:04x}", c as u32));
            }
            c => out.push(c),
        }
    }
    out.push('"');
}

struct Parser<'a> {
    bytes: &'a [u8],
    input: &'a str,
    pos: usize,
}

impl<'a> Parser<'a> {
    fn err(&self, message: &str) -> JsonError {
        JsonError {
            offset: self.pos,
            message: message.to_string(),
        }
    }

    fn skip_ws(&mut self) {
        while let Some(&b) = self.bytes.get(self.pos) {
            if matches!(b, b' ' | b'\t' | b'\n' | b'\r') {
                self.pos += 1;
            } else {
                break;
            }
        }
    }

    fn peek(&self) -> Option<u8> {
        self.bytes.get(self.pos).copied()
    }

    fn expect(&mut self, b: u8) -> Result<(), JsonError> {
        if self.peek() == Some(b) {
            self.pos += 1;
            Ok(())
        } else {
            Err(self.err(&format!("expected `{}`", b as char)))
        }
    }

    fn literal(&mut self, word: &str, value: Json) -> Result<Json, JsonError> {
        if self.input[self.pos..].starts_with(word) {
            self.pos += word.len();
            Ok(value)
        } else {
            Err(self.err(&format!("expected `{word}`")))
        }
    }

    fn value(&mut self, depth: usize) -> Result<Json, JsonError> {
        if depth > MAX_DEPTH {
            return Err(self.err("nesting depth limit exceeded"));
        }
        match self.peek() {
            Some(b'n') => self.literal("null", Json::Null),
            Some(b't') => self.literal("true", Json::Bool(true)),
            Some(b'f') => self.literal("false", Json::Bool(false)),
            Some(b'"') => Ok(Json::Str(self.string()?)),
            Some(b'[') => self.array(depth),
            Some(b'{') => self.object(depth),
            Some(b'-') | Some(b'0'..=b'9') => self.number(),
            Some(_) => Err(self.err("unexpected character")),
            None => Err(self.err("unexpected end of input")),
        }
    }

    fn array(&mut self, depth: usize) -> Result<Json, JsonError> {
        self.expect(b'[')?;
        let mut items = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b']') {
            self.pos += 1;
            return Ok(Json::Arr(items));
        }
        loop {
            self.skip_ws();
            items.push(self.value(depth + 1)?);
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b']') => {
                    self.pos += 1;
                    return Ok(Json::Arr(items));
                }
                _ => return Err(self.err("expected `,` or `]`")),
            }
        }
    }

    fn object(&mut self, depth: usize) -> Result<Json, JsonError> {
        self.expect(b'{')?;
        let mut pairs = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b'}') {
            self.pos += 1;
            return Ok(Json::Obj(pairs));
        }
        loop {
            self.skip_ws();
            let key = self.string()?;
            self.skip_ws();
            self.expect(b':')?;
            self.skip_ws();
            let value = self.value(depth + 1)?;
            pairs.push((key, value));
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b'}') => {
                    self.pos += 1;
                    return Ok(Json::Obj(pairs));
                }
                _ => return Err(self.err("expected `,` or `}`")),
            }
        }
    }

    fn hex4(&mut self) -> Result<u32, JsonError> {
        let end = self.pos + 4;
        if end > self.bytes.len() {
            return Err(self.err("truncated \\u escape"));
        }
        // Decode from raw bytes: slicing `self.input` here could land inside a
        // multi-byte UTF-8 character and panic on untrusted input.
        let mut v: u32 = 0;
        for &b in &self.bytes[self.pos..end] {
            let d = match b {
                b'0'..=b'9' => u32::from(b - b'0'),
                b'a'..=b'f' => u32::from(b - b'a') + 10,
                b'A'..=b'F' => u32::from(b - b'A') + 10,
                _ => return Err(self.err("invalid \\u escape")),
            };
            v = (v << 4) | d;
        }
        self.pos = end;
        Ok(v)
    }

    fn string(&mut self) -> Result<String, JsonError> {
        self.expect(b'"')?;
        let mut out = String::new();
        loop {
            let start = self.pos;
            // Fast path: copy the longest escape-free, control-free run.
            while let Some(&b) = self.bytes.get(self.pos) {
                if b == b'"' || b == b'\\' || b < 0x20 {
                    break;
                }
                self.pos += 1;
            }
            out.push_str(&self.input[start..self.pos]);
            match self.peek() {
                Some(b'"') => {
                    self.pos += 1;
                    return Ok(out);
                }
                Some(b'\\') => {
                    self.pos += 1;
                    let esc = self.peek().ok_or_else(|| self.err("truncated escape"))?;
                    self.pos += 1;
                    match esc {
                        b'"' => out.push('"'),
                        b'\\' => out.push('\\'),
                        b'/' => out.push('/'),
                        b'b' => out.push('\u{08}'),
                        b'f' => out.push('\u{0C}'),
                        b'n' => out.push('\n'),
                        b'r' => out.push('\r'),
                        b't' => out.push('\t'),
                        b'u' => {
                            let hi = self.hex4()?;
                            let c = if (0xD800..0xDC00).contains(&hi) {
                                // Surrogate pair: a second \uXXXX must follow.
                                if self.peek() != Some(b'\\') {
                                    return Err(self.err("unpaired surrogate"));
                                }
                                self.pos += 1;
                                if self.peek() != Some(b'u') {
                                    return Err(self.err("unpaired surrogate"));
                                }
                                self.pos += 1;
                                let lo = self.hex4()?;
                                if !(0xDC00..0xE000).contains(&lo) {
                                    return Err(self.err("invalid low surrogate"));
                                }
                                let cp = 0x10000 + ((hi - 0xD800) << 10) + (lo - 0xDC00);
                                char::from_u32(cp).ok_or_else(|| self.err("invalid code point"))?
                            } else if (0xDC00..0xE000).contains(&hi) {
                                return Err(self.err("unexpected low surrogate"));
                            } else {
                                char::from_u32(hi).ok_or_else(|| self.err("invalid code point"))?
                            };
                            out.push(c);
                        }
                        _ => return Err(self.err("unknown escape")),
                    }
                }
                Some(_) => return Err(self.err("control character in string")),
                None => return Err(self.err("unterminated string")),
            }
        }
    }

    /// Strict JSON number grammar: `-? int frac? exp?`, validated before
    /// handing to `f64::from_str` (which alone would also accept `inf`,
    /// `+1`, `1.` and other non-JSON shapes).
    fn number(&mut self) -> Result<Json, JsonError> {
        let start = self.pos;
        if self.peek() == Some(b'-') {
            self.pos += 1;
        }
        match self.peek() {
            Some(b'0') => self.pos += 1,
            Some(b'1'..=b'9') => {
                while matches!(self.peek(), Some(b'0'..=b'9')) {
                    self.pos += 1;
                }
            }
            _ => return Err(self.err("invalid number")),
        }
        if self.peek() == Some(b'.') {
            self.pos += 1;
            if !matches!(self.peek(), Some(b'0'..=b'9')) {
                return Err(self.err("digit required after decimal point"));
            }
            while matches!(self.peek(), Some(b'0'..=b'9')) {
                self.pos += 1;
            }
        }
        if matches!(self.peek(), Some(b'e') | Some(b'E')) {
            self.pos += 1;
            if matches!(self.peek(), Some(b'+') | Some(b'-')) {
                self.pos += 1;
            }
            if !matches!(self.peek(), Some(b'0'..=b'9')) {
                return Err(self.err("digit required in exponent"));
            }
            while matches!(self.peek(), Some(b'0'..=b'9')) {
                self.pos += 1;
            }
        }
        let text = &self.input[start..self.pos];
        let n: f64 = text.parse().map_err(|_| self.err("unparsable number"))?;
        Ok(Json::Num(n))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parses_scalars() {
        assert_eq!(Json::parse("null").unwrap(), Json::Null);
        assert_eq!(Json::parse(" true ").unwrap(), Json::Bool(true));
        assert_eq!(Json::parse("false").unwrap(), Json::Bool(false));
        assert_eq!(Json::parse("42").unwrap(), Json::Num(42.0));
        assert_eq!(Json::parse("-0.5e3").unwrap(), Json::Num(-500.0));
        assert_eq!(Json::parse("\"hi\"").unwrap(), Json::Str("hi".into()));
    }

    #[test]
    fn parses_nested_structures() {
        let v = Json::parse(r#"{"a": [1, {"b": null}], "c": "d"}"#).unwrap();
        assert_eq!(v.get("c").and_then(Json::as_str), Some("d"));
        let a = v.get("a").and_then(Json::as_array).unwrap();
        assert_eq!(a[0].as_f64(), Some(1.0));
        assert!(a[1].get("b").unwrap().is_null());
    }

    #[test]
    fn object_order_is_preserved() {
        let v = Json::parse(r#"{"z": 1, "a": 2, "m": 3}"#).unwrap();
        let keys: Vec<&str> = v
            .as_object()
            .unwrap()
            .iter()
            .map(|(k, _)| k.as_str())
            .collect();
        assert_eq!(keys, ["z", "a", "m"]);
        assert_eq!(v.write(), r#"{"z":1,"a":2,"m":3}"#);
    }

    #[test]
    fn canonical_sorts_keys_recursively() {
        let a = Json::parse(r#"{"z": {"b": 1, "a": 2}, "a": [{"y": 0, "x": 1}]}"#).unwrap();
        let b =
            Json::parse(r#"{ "a" : [ { "x" : 1, "y" : 0 } ], "z": {"a": 2, "b": 1} }"#).unwrap();
        assert_eq!(a.canonical(), b.canonical());
        assert_eq!(a.canonical(), r#"{"a":[{"x":1,"y":0}],"z":{"a":2,"b":1}}"#);
    }

    #[test]
    fn string_escapes_round_trip() {
        let original = "quote \" backslash \\ newline \n tab \t nul \u{0} unicode \u{1F600} ok";
        let written = Json::Str(original.to_string()).write();
        assert_eq!(Json::parse(&written).unwrap().as_str(), Some(original));
        // Explicit escape forms parse too, including surrogate pairs.
        let v = Json::parse(r#""Aé😀\/\b\f""#).unwrap();
        assert_eq!(v.as_str(), Some("Aé😀/\u{08}\u{0C}"));
    }

    #[test]
    fn unicode_escape_split_by_multibyte_char_errors_not_panics() {
        // The 4 "hex digits" land mid-way through a multi-byte character;
        // byte-offset slicing of the &str here used to panic on a UTF-8
        // boundary. Untrusted server input must get an Err instead.
        for bad in [
            "\"\\u00€\"",
            "\"\\u€000\"",
            "\"\\ud800\\u00€\"",
            "\"\\u😀\"",
        ] {
            assert!(Json::parse(bad).is_err(), "{bad:?} must not panic");
        }
        assert_eq!(Json::parse("\"\\u00e9\"").unwrap().as_str(), Some("é"));
        assert_eq!(Json::parse("\"\\u00E9\"").unwrap().as_str(), Some("é"));
    }

    #[test]
    fn numbers_round_trip_bit_exactly() {
        for n in [
            0.0,
            -0.0,
            1.0,
            -1.5,
            2.3e-12,
            1.0 / 3.0,
            f64::MAX,
            f64::MIN_POSITIVE,
            294.4e-12,
            6.02214076e23,
        ] {
            let s = Json::Num(n).write();
            let back = Json::parse(&s).unwrap().as_f64().unwrap();
            assert_eq!(back.to_bits(), n.to_bits(), "{n} via {s}");
        }
    }

    #[test]
    fn non_finite_numbers_write_as_null() {
        assert_eq!(Json::Num(f64::NAN).write(), "null");
        assert_eq!(Json::Num(f64::INFINITY).write(), "null");
        assert_eq!(Json::Num(f64::NEG_INFINITY).write(), "null");
        assert_eq!(
            Json::array([f64::NAN, 1.0]).write(),
            "[null,1]",
            "non-finite members degrade to null, finite survive"
        );
    }

    #[test]
    fn rejects_malformed_documents() {
        for bad in [
            "",
            "{",
            "[1,]",
            "{\"a\":}",
            "{\"a\" 1}",
            "tru",
            "01",
            "1.",
            ".5",
            "+1",
            "inf",
            "nan",
            "\"unterminated",
            "\"bad \\q escape\"",
            "\"\\ud800 lonely\"",
            "1 2",
            "{\"a\":1,}",
            "'single'",
        ] {
            assert!(Json::parse(bad).is_err(), "must reject {bad:?}");
        }
    }

    #[test]
    fn rejects_excessive_nesting() {
        let deep = "[".repeat(MAX_DEPTH + 2) + &"]".repeat(MAX_DEPTH + 2);
        assert!(Json::parse(&deep).is_err());
        let ok = "[".repeat(MAX_DEPTH - 1) + &"]".repeat(MAX_DEPTH - 1);
        assert!(Json::parse(&ok).is_ok());
    }

    #[test]
    fn as_u64_is_exact_only() {
        assert_eq!(Json::Num(7.0).as_u64(), Some(7));
        assert_eq!(Json::Num(7.5).as_u64(), None);
        assert_eq!(Json::Num(-1.0).as_u64(), None);
        assert_eq!(Json::Num(f64::NAN).as_u64(), None);
    }

    #[test]
    fn pretty_prints_stably() {
        let v = Json::object([
            ("name", Json::from("scpg")),
            ("list", Json::array([1.0, 2.0])),
            ("empty", Json::Arr(vec![])),
            ("nested", Json::object([("k", Json::Null)])),
        ]);
        let p = v.pretty();
        assert_eq!(
            p,
            "{\n  \"name\": \"scpg\",\n  \"list\": [\n    1,\n    2\n  ],\n  \"empty\": [],\n  \"nested\": {\n    \"k\": null\n  }\n}\n"
        );
        assert_eq!(Json::parse(&p).unwrap(), v);
    }

    #[test]
    fn document_round_trip() {
        let src = r#"{"threads":4,"engine":{"events":120356,"speedup":2.043},"ok":true,"tags":["a","b"],"none":null}"#;
        let v = Json::parse(src).unwrap();
        assert_eq!(v.write(), src);
        assert_eq!(Json::parse(&v.pretty()).unwrap(), v);
    }
}
