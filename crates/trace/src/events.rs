//! Wide events, uniform store introspection and per-thread CPU clocks.
//!
//! A histogram answers "how long do requests take in aggregate?" and a
//! trace answers "what did request X do, stage by stage?". The **wide
//! event** sits between the two: one canonical record per request (or
//! per batch-job chunk) carrying everything an operator filters on —
//! endpoint, status, cache disposition, timing breakdown, engine work
//! counters and per-thread CPU time — in a single row. The [`EventLog`]
//! stores them in the same bounded lock-sharded ring shape as
//! `TraceStore`, so memory stays fixed no matter the request rate, and
//! `GET /v1/logs` can filter without scanning more than the ring.
//!
//! The module also defines the [`Introspect`] seam: every bounded
//! in-memory structure in the service (result cache, artifact LRU,
//! technique-model LRUs, library LRU, trace store, work queue, this
//! log) reports the same seven numbers, so `GET /v1/status` and the
//! `scpg_store_*` metric families cover each of them — and any future
//! cache — with one implementation.

use std::collections::VecDeque;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Mutex, OnceLock};
use std::time::Duration;

/// Number of independently locked shards in an [`EventLog`].
const SHARDS: usize = 8;

/// One uniform snapshot of a bounded in-memory structure, as reported
/// by [`Introspect::stats`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct StoreStats {
    /// Stable store identifier (`"result_cache"`, `"trace_store"`, ...)
    /// used as the `store` label on `scpg_store_*` metric families.
    pub name: &'static str,
    /// Entries currently resident.
    pub entries: usize,
    /// Configured entry ceiling.
    pub capacity: usize,
    /// Best-effort resident size in bytes (payloads plus keys; see each
    /// implementation for what it counts).
    pub bytes_estimate: usize,
    /// Lookups (or admissions, for append-only structures) that were
    /// served from the structure.
    pub hits: u64,
    /// Lookups that missed (or were refused, for queues).
    pub misses: u64,
    /// Entries displaced by the capacity bound since construction.
    pub evictions: u64,
}

/// Uniform accounting over every bounded in-memory structure.
///
/// Implementations are expected to be cheap enough to call on every
/// `GET /v1/status` and `/metrics` scrape: counters are relaxed
/// atomics, and `bytes_estimate` may walk the structure under its
/// ordinary locks (all structures here are small by construction).
pub trait Introspect: Send + Sync {
    /// Stable identifier used as the `store` metric label.
    fn store_name(&self) -> &'static str;
    /// Entries currently resident.
    fn entries(&self) -> usize;
    /// Configured entry ceiling.
    fn capacity(&self) -> usize;
    /// Best-effort resident size in bytes.
    fn bytes_estimate(&self) -> usize;
    /// Lookups served from the structure.
    fn hits(&self) -> u64;
    /// Lookups that missed.
    fn misses(&self) -> u64;
    /// Entries displaced by the capacity bound.
    fn evictions(&self) -> u64;

    /// All seven numbers as one row.
    fn stats(&self) -> StoreStats {
        StoreStats {
            name: self.store_name(),
            entries: self.entries(),
            capacity: self.capacity(),
            bytes_estimate: self.bytes_estimate(),
            hits: self.hits(),
            misses: self.misses(),
            evictions: self.evictions(),
        }
    }
}

/// Shared hit/miss/eviction counters for [`Introspect`] implementors.
/// All relaxed atomics: these sit on lookup hot paths and must never
/// contend with the work they count.
#[derive(Debug, Default)]
pub struct StoreCounters {
    /// Lookups served from the structure.
    pub hits: AtomicU64,
    /// Lookups that missed.
    pub misses: AtomicU64,
    /// Entries displaced by the capacity bound.
    pub evictions: AtomicU64,
}

impl StoreCounters {
    /// A fresh zeroed counter set.
    pub const fn new() -> Self {
        StoreCounters {
            hits: AtomicU64::new(0),
            misses: AtomicU64::new(0),
            evictions: AtomicU64::new(0),
        }
    }

    /// Records a hit.
    pub fn hit(&self) {
        self.hits.fetch_add(1, Ordering::Relaxed);
    }

    /// Records a miss.
    pub fn miss(&self) {
        self.misses.fetch_add(1, Ordering::Relaxed);
    }

    /// Records an eviction.
    pub fn evicted(&self) {
        self.evictions.fetch_add(1, Ordering::Relaxed);
    }
}

/// One canonical record of a completed request or batch-job chunk.
///
/// `seq` and `unix_ms` are assigned by [`EventLog::record`]; callers
/// fill everything else. Timing fields that do not apply (e.g.
/// `worker_cpu_us` for a cache hit served on the event loop) stay 0.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct WideEvent {
    /// Monotone sequence number, assigned at record time.
    pub seq: u64,
    /// Wall-clock record time, milliseconds since the Unix epoch;
    /// assigned at record time.
    pub unix_ms: u64,
    /// The trace id shared with the trace store, so one id pivots
    /// between `/v1/logs` and `/v1/traces/{id}`.
    pub trace_id: String,
    /// What produced the event: `"request"`, `"chunk"` or `"watchdog"`.
    pub kind: String,
    /// Endpoint name (`"sweep"`, `"(refused)"`, `"job"`, ...).
    pub endpoint: String,
    /// HTTP status (chunks report 200/500 for ok/failed).
    pub status: u16,
    /// End-to-end wall time in microseconds.
    pub total_us: u64,
    /// Time spent queued behind other work, microseconds.
    pub queue_wait_us: u64,
    /// Artifact compilation time, microseconds.
    pub compile_us: u64,
    /// Analysis execution time, microseconds.
    pub execute_us: u64,
    /// Thread CPU time consumed on the event loop for this request,
    /// microseconds ([`thread_cpu_time`] delta).
    pub loop_cpu_us: u64,
    /// Thread CPU time consumed on the worker that ran the job,
    /// microseconds ([`thread_cpu_time`] delta).
    pub worker_cpu_us: u64,
    /// Free-form `key=value` columns (`cache=hit`, `design=...`,
    /// `sim_events=...`, `lib=...`, `backend=...`).
    pub fields: Vec<(String, String)>,
}

impl WideEvent {
    /// A zeroed event for `endpoint`/`status`; callers fill the rest.
    pub fn new(kind: &str, endpoint: &str, status: u16) -> Self {
        WideEvent {
            seq: 0,
            unix_ms: 0,
            trace_id: String::new(),
            kind: kind.to_string(),
            endpoint: endpoint.to_string(),
            status,
            total_us: 0,
            queue_wait_us: 0,
            compile_us: 0,
            execute_us: 0,
            loop_cpu_us: 0,
            worker_cpu_us: 0,
            fields: Vec::new(),
        }
    }

    /// The value of field `key`, when present.
    pub fn field(&self, key: &str) -> Option<&str> {
        self.fields
            .iter()
            .find(|(k, _)| k == key)
            .map(|(_, v)| v.as_str())
    }

    /// Renders the event as one logfmt line (the stderr mirror format).
    pub fn logfmt(&self) -> String {
        use std::fmt::Write;
        let mut line = format!(
            "ts_ms={} seq={} trace={} kind={} endpoint={} status={} total_us={} \
             queue_wait_us={} compile_us={} execute_us={} loop_cpu_us={} worker_cpu_us={}",
            self.unix_ms,
            self.seq,
            if self.trace_id.is_empty() {
                "-"
            } else {
                &self.trace_id
            },
            self.kind,
            self.endpoint,
            self.status,
            self.total_us,
            self.queue_wait_us,
            self.compile_us,
            self.execute_us,
            self.loop_cpu_us,
            self.worker_cpu_us,
        );
        for (k, v) in &self.fields {
            if v.contains(' ') {
                let _ = write!(line, " {k}={v:?}");
            } else {
                let _ = write!(line, " {k}={v}");
            }
        }
        line
    }

    fn bytes_estimate(&self) -> usize {
        std::mem::size_of::<WideEvent>()
            + self.trace_id.len()
            + self.kind.len()
            + self.endpoint.len()
            + self
                .fields
                .iter()
                .map(|(k, v)| k.len() + v.len() + std::mem::size_of::<(String, String)>())
                .sum::<usize>()
    }
}

/// Filters applied by [`EventLog::query`]; `None` means "any".
#[derive(Debug, Clone, Default)]
pub struct EventFilter {
    /// Exact endpoint match.
    pub endpoint: Option<String>,
    /// Exact status match.
    pub status: Option<u16>,
    /// Keep events with `total_us >=` this.
    pub min_duration_us: Option<u64>,
    /// Keep events recorded at or after this Unix-epoch millisecond.
    pub since_unix_ms: Option<u64>,
    /// Most events returned (recent-first); `None` = everything stored.
    pub limit: Option<usize>,
}

impl EventFilter {
    fn matches(&self, e: &WideEvent) -> bool {
        self.endpoint.as_deref().is_none_or(|ep| e.endpoint == ep)
            && self.status.is_none_or(|s| e.status == s)
            && self.min_duration_us.is_none_or(|d| e.total_us >= d)
            && self.since_unix_ms.is_none_or(|t| e.unix_ms >= t)
    }
}

/// Bounded, lock-sharded ring of recent [`WideEvent`]s.
///
/// Events are append-only, so sharding is round-robin by sequence
/// number: concurrent recorders from the event loop, the workers and
/// the job runner usually take different locks. Each shard is a
/// fixed-capacity `VecDeque` ring; recording into a full shard pops its
/// oldest event. Memory is bounded for the life of the process.
pub struct EventLog {
    shards: Vec<Mutex<VecDeque<WideEvent>>>,
    per_shard: usize,
    seq: AtomicU64,
    evicted: AtomicU64,
    recorded: AtomicU64,
}

impl EventLog {
    /// A log retaining roughly `capacity` events in total (rounded up
    /// to a multiple of the shard count; minimum one per shard).
    pub fn new(capacity: usize) -> Self {
        let per_shard = capacity.div_ceil(SHARDS).max(1);
        EventLog {
            shards: (0..SHARDS)
                .map(|_| Mutex::new(VecDeque::with_capacity(per_shard)))
                .collect(),
            per_shard,
            seq: AtomicU64::new(0),
            evicted: AtomicU64::new(0),
            recorded: AtomicU64::new(0),
        }
    }

    /// Total event capacity (shard count × per-shard ring size).
    pub fn capacity(&self) -> usize {
        self.per_shard * SHARDS
    }

    /// Events currently stored.
    pub fn len(&self) -> usize {
        self.shards
            .iter()
            .map(|s| s.lock().expect("event log poisoned").len())
            .sum()
    }

    /// `true` when no events are stored.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Events evicted from full shards since construction.
    pub fn evicted(&self) -> u64 {
        self.evicted.load(Ordering::Relaxed)
    }

    /// Events recorded since construction (stored + since evicted).
    pub fn recorded(&self) -> u64 {
        self.recorded.load(Ordering::Relaxed)
    }

    /// Stamps `seq`/`unix_ms`, stores the event, mirrors it to stderr
    /// when [`log_events_enabled`], and returns its sequence number.
    pub fn record(&self, mut event: WideEvent) -> u64 {
        let seq = self.seq.fetch_add(1, Ordering::Relaxed);
        event.seq = seq;
        if event.unix_ms == 0 {
            event.unix_ms = crate::store::unix_ms_now();
        }
        if log_events_enabled() {
            eprintln!("[scpg-event] {}", event.logfmt());
        }
        self.recorded.fetch_add(1, Ordering::Relaxed);
        let mut shard = self.shards[(seq as usize) % SHARDS]
            .lock()
            .expect("event log poisoned");
        if shard.len() >= self.per_shard {
            shard.pop_front();
            self.evicted.fetch_add(1, Ordering::Relaxed);
        }
        shard.push_back(event);
        seq
    }

    /// Recent-first events passing `filter`.
    pub fn query(&self, filter: &EventFilter) -> Vec<WideEvent> {
        let mut all: Vec<WideEvent> = Vec::new();
        for shard in &self.shards {
            let shard = shard.lock().expect("event log poisoned");
            all.extend(shard.iter().filter(|e| filter.matches(e)).cloned());
        }
        all.sort_by_key(|e| std::cmp::Reverse(e.seq));
        if let Some(limit) = filter.limit {
            all.truncate(limit);
        }
        all
    }
}

impl Introspect for EventLog {
    fn store_name(&self) -> &'static str {
        "event_log"
    }

    fn entries(&self) -> usize {
        self.len()
    }

    fn capacity(&self) -> usize {
        EventLog::capacity(self)
    }

    fn bytes_estimate(&self) -> usize {
        self.shards
            .iter()
            .map(|s| {
                s.lock()
                    .expect("event log poisoned")
                    .iter()
                    .map(WideEvent::bytes_estimate)
                    .sum::<usize>()
            })
            .sum()
    }

    // An append-only ring has no lookup path: admissions count as hits
    // so the hit column still tracks throughput, and misses stay 0.
    fn hits(&self) -> u64 {
        self.recorded()
    }

    fn misses(&self) -> u64 {
        0
    }

    fn evictions(&self) -> u64 {
        self.evicted()
    }
}

/// Resolves a raw `SCPG_LOG` value: the mirror is on for any value
/// except the conventional "off" spellings. Pure so the policy is
/// testable without touching the process environment.
fn resolve_log_events(raw: Option<&str>) -> bool {
    match raw.map(str::trim) {
        None => false,
        Some(v) => {
            !v.is_empty()
                && v != "0"
                && !v.eq_ignore_ascii_case("false")
                && !v.eq_ignore_ascii_case("off")
        }
    }
}

/// Whether wide events are mirrored to stderr: `SCPG_LOG` set to
/// anything except `0`/`false`/`off`/empty. Read once per process.
pub fn log_events_enabled() -> bool {
    static ENABLED: OnceLock<bool> = OnceLock::new();
    *ENABLED.get_or_init(|| resolve_log_events(std::env::var("SCPG_LOG").ok().as_deref()))
}

/// CPU time consumed by the calling thread, via
/// `clock_gettime(CLOCK_THREAD_CPUTIME_ID)`. Two reads bracketing a
/// stretch of work give that thread's CPU cost of the work — unlike
/// wall time, unaffected by preemption or blocking. Returns
/// [`Duration::ZERO`] when the clock is unavailable (non-Linux).
#[cfg(target_os = "linux")]
pub fn thread_cpu_time() -> Duration {
    #[repr(C)]
    struct Timespec {
        tv_sec: i64,
        tv_nsec: i64,
    }
    extern "C" {
        fn clock_gettime(clockid: i32, tp: *mut Timespec) -> i32;
    }
    const CLOCK_THREAD_CPUTIME_ID: i32 = 3;
    let mut ts = Timespec {
        tv_sec: 0,
        tv_nsec: 0,
    };
    let rc = unsafe { clock_gettime(CLOCK_THREAD_CPUTIME_ID, &mut ts) };
    if rc != 0 {
        return Duration::ZERO;
    }
    Duration::new(
        u64::try_from(ts.tv_sec).unwrap_or(0),
        u32::try_from(ts.tv_nsec).unwrap_or(0).min(999_999_999),
    )
}

/// CPU time consumed by the calling thread (unavailable off Linux:
/// always [`Duration::ZERO`], so deltas are zero rather than wrong).
#[cfg(not(target_os = "linux"))]
pub fn thread_cpu_time() -> Duration {
    Duration::ZERO
}

#[cfg(test)]
mod tests {
    use super::*;

    fn ev(endpoint: &str, status: u16, total_us: u64) -> WideEvent {
        let mut e = WideEvent::new("request", endpoint, status);
        e.total_us = total_us;
        e
    }

    #[test]
    fn record_assigns_seq_and_timestamp() {
        let log = EventLog::new(16);
        let a = log.record(ev("sweep", 200, 100));
        let b = log.record(ev("table", 422, 50));
        assert_eq!((a, b), (0, 1));
        let all = log.query(&EventFilter::default());
        assert_eq!(all.len(), 2);
        assert_eq!(all[0].endpoint, "table", "recent first");
        assert!(all[0].unix_ms > 0, "timestamp stamped");
        assert_eq!(log.recorded(), 2);
    }

    #[test]
    fn filters_compose() {
        let log = EventLog::new(64);
        log.record(ev("sweep", 200, 10));
        log.record(ev("sweep", 200, 5_000));
        log.record(ev("sweep", 422, 7));
        log.record(ev("table", 200, 9_000));
        let f = |filter: EventFilter| log.query(&filter).len();
        assert_eq!(
            f(EventFilter {
                endpoint: Some("sweep".into()),
                ..Default::default()
            }),
            3
        );
        assert_eq!(
            f(EventFilter {
                endpoint: Some("sweep".into()),
                status: Some(200),
                ..Default::default()
            }),
            2
        );
        assert_eq!(
            f(EventFilter {
                min_duration_us: Some(1_000),
                ..Default::default()
            }),
            2
        );
        assert_eq!(
            f(EventFilter {
                limit: Some(1),
                ..Default::default()
            }),
            1
        );
        let future = EventFilter {
            since_unix_ms: Some(u64::MAX),
            ..Default::default()
        };
        assert_eq!(f(future), 0);
    }

    #[test]
    fn full_shards_evict_oldest_and_never_grow() {
        let log = EventLog::new(8); // one slot per shard
        assert_eq!(EventLog::capacity(&log), 8);
        for i in 0..100 {
            log.record(ev("sweep", 200, i));
        }
        assert!(log.len() <= EventLog::capacity(&log), "len {}", log.len());
        assert_eq!(log.evicted(), 100 - log.len() as u64);
        let newest = &log.query(&EventFilter::default())[0];
        assert_eq!(newest.total_us, 99, "newest survives");
    }

    #[test]
    fn introspect_reports_the_ring() {
        let log = EventLog::new(8);
        log.record(ev("sweep", 200, 1));
        let stats = log.stats();
        assert_eq!(stats.name, "event_log");
        assert_eq!(stats.entries, 1);
        assert_eq!(stats.capacity, 8);
        assert!(stats.bytes_estimate > 0);
        assert_eq!(stats.hits, 1);
        assert_eq!(stats.misses, 0);
        assert_eq!(stats.evictions, 0);
    }

    #[test]
    fn logfmt_quotes_only_when_needed() {
        let mut e = ev("sweep", 200, 42);
        e.trace_id = "t1".into();
        e.fields.push(("cache".into(), "miss".into()));
        e.fields.push(("note".into(), "two words".into()));
        let line = e.logfmt();
        assert!(line.contains("endpoint=sweep"), "{line}");
        assert!(line.contains("total_us=42"), "{line}");
        assert!(line.contains("cache=miss"), "{line}");
        assert!(line.contains("note=\"two words\""), "{line}");
    }

    #[test]
    fn resolve_log_events_policy() {
        assert!(!resolve_log_events(None));
        for off in ["", "0", "false", "FALSE", "off", " off "] {
            assert!(!resolve_log_events(Some(off)), "{off:?} disables");
        }
        for on in ["1", "true", "events", "stderr"] {
            assert!(resolve_log_events(Some(on)), "{on:?} enables");
        }
    }

    #[test]
    fn thread_cpu_time_advances_under_load() {
        let before = thread_cpu_time();
        // Burn a little CPU; volatile-ish accumulation defeats LLVM
        // constant folding.
        let mut acc = 0u64;
        for i in 0..2_000_000u64 {
            acc = acc.wrapping_mul(6364136223846793005).wrapping_add(i);
        }
        assert!(acc != 42, "keep the loop alive");
        let after = thread_cpu_time();
        if cfg!(target_os = "linux") {
            assert!(
                after > before,
                "CPU clock advances: {before:?} -> {after:?}"
            );
        }
    }
}
