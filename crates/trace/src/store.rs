//! Trace contexts: ids, span events and a bounded in-memory store.
//!
//! Histograms (the rest of this crate) answer "how long do requests
//! take in aggregate?"; the trace store answers "what did request X
//! actually do?". Every HTTP request and batch job gets a **trace id**
//! — client-supplied via the `x-scpg-trace-id` header or generated —
//! and accumulates [`SpanEvent`]s (stage name, start offset, duration,
//! `key=value` annotations) under that id in a [`TraceStore`].
//!
//! The store is a lock-sharded ring buffer with a fixed total capacity:
//! shards are `VecDeque`s pre-allocated at construction, recording a
//! span into an existing trace never allocates ring space, and creating
//! a trace in a full shard evicts that shard's oldest trace. Per-trace
//! span lists are bounded by [`MAX_SPANS_PER_TRACE`]; spans past the
//! bound are counted, not stored. Memory use is therefore bounded for
//! the life of the process no matter how many requests flow through.

use std::collections::VecDeque;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Mutex;
use std::time::{Duration, Instant, SystemTime};

use crate::events::{Introspect, StoreCounters};

/// Longest accepted trace id (client-supplied ids past this are
/// rejected and replaced with a generated one).
pub const TRACE_ID_MAX_LEN: usize = 64;

/// Most spans retained per trace; later spans increment a drop counter
/// instead of growing the list.
pub const MAX_SPANS_PER_TRACE: usize = 128;

/// Number of independently locked shards in a [`TraceStore`].
const SHARDS: usize = 8;

/// Is `id` acceptable as a trace id? Rules: 1..=[`TRACE_ID_MAX_LEN`]
/// bytes drawn from `[A-Za-z0-9_.-]`. The alphabet is safe to echo in
/// an HTTP header, embed in a URL path segment and print in a logfmt
/// line without escaping.
pub fn valid_trace_id(id: &str) -> bool {
    !id.is_empty()
        && id.len() <= TRACE_ID_MAX_LEN
        && id
            .bytes()
            .all(|b| b.is_ascii_alphanumeric() || b == b'_' || b == b'.' || b == b'-')
}

/// Generates a fresh trace id: `"t"` + 16 lowercase hex digits, unique
/// within the process and seeded from the wall clock so ids from
/// successive process incarnations do not collide in practice.
pub fn generate_trace_id() -> String {
    static COUNTER: AtomicU64 = AtomicU64::new(0);
    let seed = SystemTime::UNIX_EPOCH
        .elapsed()
        .map(|d| d.as_nanos() as u64)
        .unwrap_or(0);
    let n = COUNTER.fetch_add(1, Ordering::Relaxed);
    // splitmix64 over (seed ^ counter-offset): well mixed, zero deps.
    let mut z = seed.wrapping_add(n.wrapping_mul(0x9e37_79b9_7f4a_7c15));
    z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
    z ^= z >> 31;
    format!("t{z:016x}")
}

/// One timed stage within a trace.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct SpanEvent {
    /// Stage name (`"parse"`, `"execute"`, `"chunk"`, ...).
    pub stage: String,
    /// Microseconds from the trace's (current-incarnation) origin to
    /// the span's start.
    pub start_us: u64,
    /// Span duration in microseconds.
    pub duration_us: u64,
    /// Free-form `key=value` annotations (`cache=hit`, `chunk=3/16`,
    /// `design=multiplier16`, ...).
    pub annotations: Vec<(String, String)>,
}

/// A one-line view of a trace for `GET /v1/traces`.
#[derive(Debug, Clone)]
pub struct TraceSummary {
    /// The trace id.
    pub id: String,
    /// What started the trace (endpoint name or `"job"`).
    pub kind: String,
    /// Creation order within this store; recent-first listings sort by
    /// it descending, and `before=` pagination cursors carry it.
    pub seq: u64,
    /// Wall-clock start, milliseconds since the Unix epoch.
    pub started_unix_ms: u64,
    /// Spans currently stored.
    pub spans: usize,
    /// Furthest span end seen, microseconds from the trace origin.
    pub total_us: u64,
}

/// The full record behind `GET /v1/traces/{id}`.
#[derive(Debug, Clone)]
pub struct TraceDetail {
    /// The trace id.
    pub id: String,
    /// What started the trace (endpoint name or `"job"`).
    pub kind: String,
    /// Wall-clock start, milliseconds since the Unix epoch.
    pub started_unix_ms: u64,
    /// Spans that exceeded [`MAX_SPANS_PER_TRACE`] and were dropped.
    pub dropped_spans: u64,
    /// Stored spans, in recording order.
    pub spans: Vec<SpanEvent>,
}

struct TraceEntry {
    id: String,
    kind: String,
    started_unix_ms: u64,
    origin: Instant,
    seq: u64,
    dropped: u64,
    spans: Vec<SpanEvent>,
}

impl TraceEntry {
    fn total_us(&self) -> u64 {
        self.spans
            .iter()
            .map(|s| s.start_us.saturating_add(s.duration_us))
            .max()
            .unwrap_or(0)
    }
}

/// Bounded, lock-sharded ring buffer of recent traces.
///
/// A trace id is hashed (FNV-1a) to one of a fixed number of shards;
/// concurrent recordings on different traces usually take different
/// locks. Each shard is a fixed-capacity `VecDeque` used as a ring:
/// inserting into a full shard pops its oldest trace.
pub struct TraceStore {
    shards: Vec<Mutex<VecDeque<TraceEntry>>>,
    per_shard: usize,
    seq: AtomicU64,
    evicted: AtomicU64,
    counters: StoreCounters,
}

impl TraceStore {
    /// A store retaining roughly `capacity` traces in total (rounded up
    /// to a multiple of the shard count; minimum one per shard).
    pub fn new(capacity: usize) -> Self {
        let per_shard = capacity.div_ceil(SHARDS).max(1);
        TraceStore {
            shards: (0..SHARDS)
                .map(|_| Mutex::new(VecDeque::with_capacity(per_shard)))
                .collect(),
            per_shard,
            seq: AtomicU64::new(0),
            evicted: AtomicU64::new(0),
            counters: StoreCounters::new(),
        }
    }

    /// Total trace capacity (shard count × per-shard ring size).
    pub fn capacity(&self) -> usize {
        self.per_shard * SHARDS
    }

    /// Traces currently stored.
    pub fn len(&self) -> usize {
        self.shards
            .iter()
            .map(|s| s.lock().expect("trace store poisoned").len())
            .sum()
    }

    /// `true` when no traces are stored.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Traces evicted from full shards since construction.
    pub fn evicted(&self) -> u64 {
        self.evicted.load(Ordering::Relaxed)
    }

    fn shard(&self, id: &str) -> &Mutex<VecDeque<TraceEntry>> {
        // FNV-1a; stable and dependency-free.
        let mut h: u64 = 0xcbf2_9ce4_8422_2325;
        for b in id.bytes() {
            h ^= u64::from(b);
            h = h.wrapping_mul(0x0000_0100_0000_01b3);
        }
        &self.shards[(h as usize) % SHARDS]
    }

    /// Records a span with an explicit start offset (microseconds from
    /// the trace origin). Creates the trace — evicting the shard's
    /// oldest if full — when `id` is not present; `kind` only applies
    /// at creation.
    pub fn record_at(
        &self,
        id: &str,
        kind: &str,
        stage: &str,
        start_us: u64,
        duration_us: u64,
        annotations: Vec<(String, String)>,
    ) {
        let span = SpanEvent {
            stage: stage.to_string(),
            start_us,
            duration_us,
            annotations,
        };
        let mut shard = self.shard(id).lock().expect("trace store poisoned");
        if let Some(entry) = shard.iter_mut().find(|e| e.id == id) {
            if entry.spans.len() < MAX_SPANS_PER_TRACE {
                entry.spans.push(span);
            } else {
                entry.dropped += 1;
            }
            return;
        }
        if shard.len() >= self.per_shard {
            shard.pop_front();
            self.evicted.fetch_add(1, Ordering::Relaxed);
        }
        shard.push_back(TraceEntry {
            id: id.to_string(),
            kind: kind.to_string(),
            started_unix_ms: unix_ms_now(),
            origin: Instant::now(),
            seq: self.seq.fetch_add(1, Ordering::Relaxed),
            dropped: 0,
            spans: vec![span],
        });
    }

    /// Records a span that just finished (duration `d`, ending now):
    /// its start offset is computed against the trace's origin in this
    /// process incarnation. Creates the trace when absent.
    pub fn record_now(
        &self,
        id: &str,
        kind: &str,
        stage: &str,
        d: Duration,
        annotations: Vec<(String, String)>,
    ) {
        let dur_us = duration_us(d);
        // Resolve the origin first so the offset is computed against
        // the entry we will append to (or 0 for a brand-new trace).
        let start_us = {
            let shard = self.shard(id).lock().expect("trace store poisoned");
            shard
                .iter()
                .find(|e| e.id == id)
                .map(|e| duration_us(e.origin.elapsed()).saturating_sub(dur_us))
                .unwrap_or(0)
        };
        self.record_at(id, kind, stage, start_us, dur_us, annotations);
    }

    /// Recent-first summaries of every stored trace.
    pub fn summaries(&self) -> Vec<TraceSummary> {
        let mut all: Vec<(u64, TraceSummary)> = Vec::with_capacity(self.capacity());
        for shard in &self.shards {
            let shard = shard.lock().expect("trace store poisoned");
            for e in shard.iter() {
                all.push((
                    e.seq,
                    TraceSummary {
                        id: e.id.clone(),
                        kind: e.kind.clone(),
                        seq: e.seq,
                        started_unix_ms: e.started_unix_ms,
                        spans: e.spans.len(),
                        total_us: e.total_us(),
                    },
                ));
            }
        }
        all.sort_by_key(|e| std::cmp::Reverse(e.0));
        all.into_iter().map(|(_, s)| s).collect()
    }

    /// The full span list for `id`, or `None` if unknown (or evicted).
    pub fn detail(&self, id: &str) -> Option<TraceDetail> {
        let shard = self.shard(id).lock().expect("trace store poisoned");
        let found = shard.iter().find(|e| e.id == id).map(|e| TraceDetail {
            id: e.id.clone(),
            kind: e.kind.clone(),
            started_unix_ms: e.started_unix_ms,
            dropped_spans: e.dropped,
            spans: e.spans.clone(),
        });
        if found.is_some() {
            self.counters.hit();
        } else {
            self.counters.miss();
        }
        found
    }
}

impl Introspect for TraceStore {
    fn store_name(&self) -> &'static str {
        "trace_store"
    }

    fn entries(&self) -> usize {
        self.len()
    }

    fn capacity(&self) -> usize {
        TraceStore::capacity(self)
    }

    fn bytes_estimate(&self) -> usize {
        self.shards
            .iter()
            .map(|s| {
                s.lock()
                    .expect("trace store poisoned")
                    .iter()
                    .map(|e| {
                        std::mem::size_of::<TraceEntry>()
                            + e.id.len()
                            + e.kind.len()
                            + e.spans
                                .iter()
                                .map(|sp| {
                                    std::mem::size_of::<SpanEvent>()
                                        + sp.stage.len()
                                        + sp.annotations
                                            .iter()
                                            .map(|(k, v)| k.len() + v.len())
                                            .sum::<usize>()
                                })
                                .sum::<usize>()
                    })
                    .sum::<usize>()
            })
            .sum()
    }

    // Hits/misses count `detail` (`GET /v1/traces/{id}`) lookups: a
    // miss is an operator chasing an evicted or never-recorded id.
    fn hits(&self) -> u64 {
        self.counters.hits.load(Ordering::Relaxed)
    }

    fn misses(&self) -> u64 {
        self.counters.misses.load(Ordering::Relaxed)
    }

    fn evictions(&self) -> u64 {
        self.evicted()
    }
}

/// Microseconds in `d`, saturating.
pub fn duration_us(d: Duration) -> u64 {
    u64::try_from(d.as_micros()).unwrap_or(u64::MAX)
}

pub(crate) fn unix_ms_now() -> u64 {
    SystemTime::UNIX_EPOCH
        .elapsed()
        .map(|d| d.as_millis() as u64)
        .unwrap_or(0)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn trace_id_validation_and_generation() {
        assert!(valid_trace_id("t0123abc"));
        assert!(valid_trace_id("job-7.retry_2"));
        assert!(!valid_trace_id(""));
        assert!(!valid_trace_id("has space"));
        assert!(!valid_trace_id("crlf\r\ninjection"));
        assert!(!valid_trace_id(&"x".repeat(TRACE_ID_MAX_LEN + 1)));

        let a = generate_trace_id();
        let b = generate_trace_id();
        assert!(valid_trace_id(&a), "{a}");
        assert_ne!(a, b, "consecutive ids differ");
        assert_eq!(a.len(), 17);
        assert!(a.starts_with('t'));
    }

    #[test]
    fn spans_accumulate_under_one_id() {
        let store = TraceStore::new(16);
        store.record_at("t1", "sweep", "parse", 0, 30, vec![]);
        store.record_at(
            "t1",
            "sweep",
            "execute",
            30,
            400,
            vec![("cache".into(), "miss".into())],
        );
        let d = store.detail("t1").expect("trace exists");
        assert_eq!(d.kind, "sweep");
        assert_eq!(d.spans.len(), 2);
        assert_eq!(d.spans[1].stage, "execute");
        assert_eq!(d.spans[1].annotations[0].1, "miss");
        assert_eq!(d.dropped_spans, 0);
        assert!(store.detail("t2").is_none());

        let summaries = store.summaries();
        assert_eq!(summaries.len(), 1);
        assert_eq!(summaries[0].id, "t1");
        assert_eq!(summaries[0].spans, 2);
        assert_eq!(summaries[0].total_us, 430);
    }

    #[test]
    fn full_shards_evict_oldest_and_never_grow() {
        let store = TraceStore::new(8); // one slot per shard
        assert_eq!(store.capacity(), 8);
        for i in 0..100 {
            store.record_at(&format!("t{i}"), "k", "s", 0, 1, vec![]);
        }
        assert!(
            store.len() <= store.capacity(),
            "len {} bounded",
            store.len()
        );
        assert_eq!(store.evicted(), 100 - store.len() as u64);
        // Summaries are recent-first by creation order.
        let summaries = store.summaries();
        let newest = &summaries[0].id;
        assert_eq!(newest, "t99");
    }

    #[test]
    fn per_trace_span_lists_are_bounded() {
        let store = TraceStore::new(8);
        for i in 0..(MAX_SPANS_PER_TRACE + 10) {
            store.record_at("t1", "k", "s", i as u64, 1, vec![]);
        }
        let d = store.detail("t1").unwrap();
        assert_eq!(d.spans.len(), MAX_SPANS_PER_TRACE);
        assert_eq!(d.dropped_spans, 10);
    }

    #[test]
    fn record_now_offsets_are_monotone_per_incarnation() {
        let store = TraceStore::new(8);
        store.record_now("t1", "job", "chunk", Duration::from_micros(5), vec![]);
        std::thread::sleep(Duration::from_millis(2));
        store.record_now("t1", "job", "chunk", Duration::from_micros(5), vec![]);
        let d = store.detail("t1").unwrap();
        assert_eq!(d.spans[0].start_us, 0, "first span anchors the origin");
        assert!(
            d.spans[1].start_us > d.spans[0].start_us,
            "later spans start later: {:?}",
            d.spans
        );
    }
}
