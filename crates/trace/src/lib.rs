//! `scpg-trace`: a zero-dependency latency observability core.
//!
//! The paper this repo reproduces lives on per-phase time accounting —
//! `T_eval` vs `T_idle` within a single clock cycle decides whether
//! sub-clock gating pays. The serving stack needs the same discipline:
//! knowing a request took 12 ms is useless without knowing whether the
//! time went to queue wait, artifact compilation, analysis execution or
//! serialization. This crate provides the measuring tools, built only on
//! `std`:
//!
//! * [`Histogram`] — a fixed-bucket latency histogram (lock-free
//!   relaxed atomics on the observe path, so instrumentation never
//!   contends with the work it measures);
//! * [`Registry`] — named histogram families with one label dimension,
//!   rendered as Prometheus `histogram` text (`_bucket`/`_sum`/`_count`);
//! * [`Span`] — a drop-records duration timer:
//!   `let _s = Span::start("compile");` records on scope exit;
//! * [`log_if_slow`] — a structured stderr line for requests exceeding
//!   the `SCPG_SLOW_MS` threshold (default 1000; `0` logs everything).
//!
//! Two registries exist by convention: library code (the analysis
//! engine, the execution pool) records into the process-wide
//! [`global`] registry under the `scpg_engine_stage_duration_seconds`
//! family, while each server instance owns a private [`Registry`] for
//! its per-endpoint and per-stage request series, so tests running
//! several servers in one process never see each other's counts.

#![warn(missing_docs)]

mod events;
mod store;

pub use events::{
    log_events_enabled, thread_cpu_time, EventFilter, EventLog, Introspect, StoreCounters,
    StoreStats, WideEvent,
};
pub use store::{
    duration_us, generate_trace_id, valid_trace_id, SpanEvent, TraceDetail, TraceStore,
    TraceSummary, MAX_SPANS_PER_TRACE, TRACE_ID_MAX_LEN,
};

use std::collections::BTreeMap;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Mutex, OnceLock};
use std::time::{Duration, Instant};

/// Upper bounds (seconds, inclusive) of the fixed histogram buckets.
/// Log-ish spacing from 10 µs to 10 s covers everything from a cache
/// hit to a Monte-Carlo study; an implicit `+Inf` bucket catches the
/// rest. Fixed buckets keep [`Histogram::observe`] allocation-free and
/// make every series in a process directly comparable.
pub const BUCKET_BOUNDS_SECS: [f64; 19] = [
    1e-5, 2.5e-5, 5e-5, 1e-4, 2.5e-4, 5e-4, 1e-3, 2.5e-3, 5e-3, 1e-2, 2.5e-2, 5e-2, 0.1, 0.25, 0.5,
    1.0, 2.5, 5.0, 10.0,
];

/// Bucket count including the `+Inf` overflow bucket.
const BUCKETS: usize = BUCKET_BOUNDS_SECS.len() + 1;

/// The metric family library-level (engine) stages record into on the
/// [`global`] registry. Serving layers should use their own family
/// names on their own registries so per-server counts stay isolated.
pub const ENGINE_STAGE_HISTOGRAM: &str = "scpg_engine_stage_duration_seconds";

const ENGINE_STAGE_HELP: &str = "Wall-clock seconds spent in engine-level stages (process-wide).";

/// The metric family asynchronous batch-job stages record into on the
/// [`global`] registry: chunk execution, checkpoint persistence, final
/// assembly, restart recovery.
pub const JOB_STAGE_HISTOGRAM: &str = "scpg_job_stage_duration_seconds";

const JOB_STAGE_HELP: &str = "Wall-clock seconds spent in async batch-job stages (process-wide).";

/// A fixed-bucket latency histogram. Observation is two relaxed atomic
/// adds; rendering and statistics walk the buckets.
#[derive(Debug)]
pub struct Histogram {
    /// Per-bucket (non-cumulative) counts; the last slot is `+Inf`.
    buckets: [AtomicU64; BUCKETS],
    /// Total observed time in nanoseconds.
    sum_ns: AtomicU64,
}

impl Default for Histogram {
    fn default() -> Self {
        Self::new()
    }
}

impl Histogram {
    /// A fresh, empty histogram.
    pub fn new() -> Self {
        Self {
            buckets: std::array::from_fn(|_| AtomicU64::new(0)),
            sum_ns: AtomicU64::new(0),
        }
    }

    /// Records one duration.
    pub fn observe(&self, d: Duration) {
        let secs = d.as_secs_f64();
        let idx = BUCKET_BOUNDS_SECS
            .iter()
            .position(|&bound| secs <= bound)
            .unwrap_or(BUCKET_BOUNDS_SECS.len());
        self.buckets[idx].fetch_add(1, Ordering::Relaxed);
        let ns = u64::try_from(d.as_nanos()).unwrap_or(u64::MAX);
        self.sum_ns.fetch_add(ns, Ordering::Relaxed);
    }

    /// Total number of observations.
    pub fn count(&self) -> u64 {
        self.buckets.iter().map(|b| b.load(Ordering::Relaxed)).sum()
    }

    /// Total observed time in seconds.
    pub fn sum_seconds(&self) -> f64 {
        self.sum_ns.load(Ordering::Relaxed) as f64 / 1e9
    }

    /// Renders this series into `out` in Prometheus histogram text form,
    /// labelled `{label_name="label_value"}`. The `_count` line equals
    /// the `+Inf` cumulative bucket by construction.
    fn render_series(&self, out: &mut String, name: &str, label_name: &str, label_value: &str) {
        use std::fmt::Write;
        let mut cumulative = 0u64;
        for (i, bound) in BUCKET_BOUNDS_SECS.iter().enumerate() {
            cumulative += self.buckets[i].load(Ordering::Relaxed);
            let _ = writeln!(
                out,
                "{name}_bucket{{{label_name}=\"{label_value}\",le=\"{bound}\"}} {cumulative}"
            );
        }
        cumulative += self.buckets[BUCKETS - 1].load(Ordering::Relaxed);
        let _ = writeln!(
            out,
            "{name}_bucket{{{label_name}=\"{label_value}\",le=\"+Inf\"}} {cumulative}"
        );
        let _ = writeln!(
            out,
            "{name}_sum{{{label_name}=\"{label_value}\"}} {}",
            self.sum_seconds()
        );
        let _ = writeln!(
            out,
            "{name}_count{{{label_name}=\"{label_value}\"}} {cumulative}"
        );
    }
}

/// One metric family: a help string, one label dimension and its series.
struct Family {
    help: &'static str,
    label_name: &'static str,
    series: BTreeMap<String, Arc<Histogram>>,
}

/// A set of named histogram families. Lookup takes a short mutex; the
/// returned [`Arc<Histogram>`] can (and on hot paths should) be cached
/// by the caller so observation itself never locks.
pub struct Registry {
    families: Mutex<BTreeMap<&'static str, Family>>,
}

impl Default for Registry {
    fn default() -> Self {
        Self::new()
    }
}

impl Registry {
    /// A fresh, empty registry. `const` so registries can live in
    /// statics.
    pub const fn new() -> Self {
        Self {
            families: Mutex::new(BTreeMap::new()),
        }
    }

    /// The histogram for `(name, label_value)`, created on first use.
    /// The first caller of a family fixes its `help` and `label_name`;
    /// label values must not need Prometheus escaping (this crate's
    /// callers use fixed identifiers like `"sweep"` or `"compile"`).
    pub fn histogram(
        &self,
        name: &'static str,
        help: &'static str,
        label_name: &'static str,
        label_value: &str,
    ) -> Arc<Histogram> {
        let mut families = self.families.lock().expect("trace registry poisoned");
        let family = families.entry(name).or_insert_with(|| Family {
            help,
            label_name,
            series: BTreeMap::new(),
        });
        if let Some(h) = family.series.get(label_value) {
            return Arc::clone(h);
        }
        let h = Arc::new(Histogram::new());
        family
            .series
            .insert(label_value.to_string(), Arc::clone(&h));
        h
    }

    /// Renders every family as Prometheus `histogram` text
    /// (`# HELP` / `# TYPE histogram` / `_bucket` / `_sum` / `_count`).
    pub fn render(&self) -> String {
        use std::fmt::Write;
        let families = self.families.lock().expect("trace registry poisoned");
        let mut out = String::with_capacity(4096);
        for (name, family) in families.iter() {
            let _ = writeln!(out, "# HELP {name} {}", family.help);
            let _ = writeln!(out, "# TYPE {name} histogram");
            for (value, hist) in &family.series {
                hist.render_series(&mut out, name, family.label_name, value);
            }
        }
        out
    }
}

/// The process-wide registry for library-level instrumentation (the
/// analysis engine, the execution pool). Server front ends should own a
/// private [`Registry`] for per-request series and render both.
pub fn global() -> &'static Registry {
    static GLOBAL: Registry = Registry::new();
    &GLOBAL
}

/// The [`global`] histogram for an engine stage (family
/// [`ENGINE_STAGE_HISTOGRAM`], label `stage`). Hot paths should call
/// this once and cache the `Arc` — observation is then lock-free.
pub fn engine_stage(stage: &str) -> Arc<Histogram> {
    global().histogram(ENGINE_STAGE_HISTOGRAM, ENGINE_STAGE_HELP, "stage", stage)
}

/// The [`global`] histogram for an async batch-job stage (family
/// [`JOB_STAGE_HISTOGRAM`], label `stage`). Pair with [`Span::on`]:
/// `let _span = Span::on(job_stage("chunk"));`.
pub fn job_stage(stage: &str) -> Arc<Histogram> {
    global().histogram(JOB_STAGE_HISTOGRAM, JOB_STAGE_HELP, "stage", stage)
}

/// A duration timer that records into a histogram when dropped (or
/// explicitly via [`Span::finish`]), so early returns and panics are
/// timed like the happy path.
pub struct Span {
    hist: Arc<Histogram>,
    start: Instant,
    recorded: bool,
}

impl Span {
    /// Starts a span on the [`global`] engine-stage histogram:
    /// `let _span = Span::start("compile");`.
    pub fn start(stage: &str) -> Self {
        Self::on(engine_stage(stage))
    }

    /// Starts a span on an explicit histogram (use with a cached `Arc`
    /// on hot paths, or with a per-server registry's series).
    pub fn on(hist: Arc<Histogram>) -> Self {
        Self {
            hist,
            start: Instant::now(),
            recorded: false,
        }
    }

    /// Time elapsed so far, without recording.
    pub fn elapsed(&self) -> Duration {
        self.start.elapsed()
    }

    /// Records now and returns the duration (instead of waiting for the
    /// drop).
    pub fn finish(mut self) -> Duration {
        let d = self.start.elapsed();
        self.hist.observe(d);
        self.recorded = true;
        d
    }
}

impl Drop for Span {
    fn drop(&mut self) {
        if !self.recorded {
            self.hist.observe(self.start.elapsed());
        }
    }
}

/// Resolves a raw `SCPG_SLOW_MS` value against the default: the parsed
/// threshold when it is a non-negative integer, else the default plus a
/// warning naming the rejected value. Pure so the policy is testable
/// without touching the process environment.
fn resolve_slow_ms(raw: Option<&str>) -> (u64, Option<String>) {
    match raw {
        None => (DEFAULT_SLOW_MS, None),
        Some(v) => match v.trim().parse::<u64>() {
            Ok(ms) => (ms, None),
            Err(_) => (
                DEFAULT_SLOW_MS,
                Some(format!(
                    "SCPG_SLOW_MS={v:?} is not a non-negative integer; \
                     using the default of {DEFAULT_SLOW_MS} ms"
                )),
            ),
        },
    }
}

/// Slow-request threshold applied when `SCPG_SLOW_MS` is unset.
pub const DEFAULT_SLOW_MS: u64 = 1000;

/// The slow-request threshold in milliseconds: `SCPG_SLOW_MS` when set
/// to a non-negative integer (0 logs every request), else
/// [`DEFAULT_SLOW_MS`]. Read once per process; an unparsable value
/// warns once on stderr and falls back to the default.
pub fn slow_threshold_ms() -> u64 {
    static THRESHOLD: OnceLock<u64> = OnceLock::new();
    *THRESHOLD.get_or_init(|| {
        let raw = std::env::var("SCPG_SLOW_MS").ok();
        let (ms, warning) = resolve_slow_ms(raw.as_deref());
        if let Some(msg) = warning {
            eprintln!("[scpg-trace] warning: {msg}");
        }
        ms
    })
}

/// Emits a structured (logfmt) slow-request line on stderr when `total`
/// meets or exceeds the [`slow_threshold_ms`] threshold, e.g.:
///
/// ```text
/// [scpg-slow] endpoint=sweep status=200 total_ms=1523.004 parse_ms=0.031 queue_wait_ms=1204.113 ...
/// ```
///
/// Returns whether the line was logged, so callers can count it.
pub fn log_if_slow(
    endpoint: &str,
    status: u16,
    total: Duration,
    stages: &[(&str, Duration)],
) -> bool {
    let threshold = slow_threshold_ms();
    let total_ms = total.as_secs_f64() * 1e3;
    if total_ms < threshold as f64 {
        return false;
    }
    use std::fmt::Write;
    let mut line =
        format!("[scpg-slow] endpoint={endpoint} status={status} total_ms={total_ms:.3}");
    for (name, d) in stages {
        let _ = write!(line, " {name}_ms={:.3}", d.as_secs_f64() * 1e3);
    }
    eprintln!("{line}");
    true
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn observations_land_in_the_right_buckets() {
        let h = Histogram::new();
        h.observe(Duration::from_micros(5)); // ≤ 10 µs → first bucket
        h.observe(Duration::from_millis(3)); // ≤ 5 ms
        h.observe(Duration::from_secs(20)); // beyond 10 s → +Inf
        assert_eq!(h.count(), 3);
        let sum = h.sum_seconds();
        assert!((sum - 20.003005).abs() < 1e-9, "{sum}");

        let mut out = String::new();
        h.render_series(&mut out, "t", "stage", "x");
        // Cumulative counts: nothing before 5 µs's bucket, everything at +Inf.
        assert!(
            out.contains("t_bucket{stage=\"x\",le=\"0.00001\"} 1"),
            "{out}"
        );
        assert!(
            out.contains("t_bucket{stage=\"x\",le=\"0.005\"} 2"),
            "{out}"
        );
        assert!(out.contains("t_bucket{stage=\"x\",le=\"10\"} 2"), "{out}");
        assert!(out.contains("t_bucket{stage=\"x\",le=\"+Inf\"} 3"), "{out}");
        assert!(out.contains("t_count{stage=\"x\"} 3"), "{out}");
    }

    #[test]
    fn exact_bucket_boundary_is_inclusive() {
        // Prometheus `le` is *inclusive*: an observation exactly equal
        // to a bound belongs in that bound's bucket. Every bound here
        // is an exact multiple of 1 ns, so `Duration::from_secs_f64`
        // round-trips it bit-exactly through `as_secs_f64`.
        for bound in BUCKET_BOUNDS_SECS {
            let h = Histogram::new();
            let d = Duration::from_secs_f64(bound);
            assert_eq!(d.as_secs_f64(), bound, "bound {bound} round-trips");
            h.observe(d);
            let mut out = String::new();
            h.render_series(&mut out, "edge", "stage", "x");
            assert!(
                out.contains(&format!("edge_bucket{{stage=\"x\",le=\"{bound}\"}} 1")),
                "exactly-{bound}s lands in the le={bound} bucket:\n{out}"
            );
        }
    }

    #[test]
    fn registry_shares_series_and_renders_families() {
        let reg = Registry::new();
        let a = reg.histogram("scpg_test_seconds", "Test family.", "stage", "parse");
        let b = reg.histogram("scpg_test_seconds", "Test family.", "stage", "parse");
        assert!(Arc::ptr_eq(&a, &b), "same (name, label) shares a series");
        a.observe(Duration::from_millis(1));
        let _other = reg.histogram("scpg_test_seconds", "Test family.", "stage", "execute");

        let text = reg.render();
        assert!(
            text.contains("# HELP scpg_test_seconds Test family."),
            "{text}"
        );
        assert!(
            text.contains("# TYPE scpg_test_seconds histogram"),
            "{text}"
        );
        assert!(
            text.contains("scpg_test_seconds_count{stage=\"parse\"} 1"),
            "{text}"
        );
        assert!(
            text.contains("scpg_test_seconds_count{stage=\"execute\"} 0"),
            "{text}"
        );
        // Every bucket line is cumulative and ends at +Inf == count.
        assert!(
            text.contains("scpg_test_seconds_bucket{stage=\"parse\",le=\"+Inf\"} 1"),
            "{text}"
        );
    }

    #[test]
    fn spans_record_on_drop_and_on_finish() {
        let reg = Registry::new();
        let h = reg.histogram("scpg_span_seconds", "Span test.", "stage", "s");
        {
            let _span = Span::on(Arc::clone(&h));
        }
        assert_eq!(h.count(), 1, "drop records");
        let span = Span::on(Arc::clone(&h));
        assert!(span.elapsed() < Duration::from_secs(5));
        let d = span.finish();
        assert_eq!(h.count(), 2, "finish records exactly once");
        assert!(h.sum_seconds() >= d.as_secs_f64() * 0.5);
    }

    #[test]
    fn global_engine_stages_accumulate() {
        let h = engine_stage("trace_unit_test_stage");
        let before = h.count();
        {
            let _span = Span::start("trace_unit_test_stage");
        }
        assert_eq!(h.count(), before + 1);
        assert!(global()
            .render()
            .contains("scpg_engine_stage_duration_seconds_bucket{stage=\"trace_unit_test_stage\""));
    }

    #[test]
    fn resolve_slow_ms_policy() {
        assert_eq!(resolve_slow_ms(None), (DEFAULT_SLOW_MS, None));
        assert_eq!(resolve_slow_ms(Some("0")), (0, None));
        assert_eq!(resolve_slow_ms(Some(" 250 ")), (250, None));
        for bad in ["", "abc", "-5", "1.5"] {
            let (ms, warning) = resolve_slow_ms(Some(bad));
            assert_eq!(ms, DEFAULT_SLOW_MS, "fallback for {bad:?}");
            let msg = warning.expect("bad value warns");
            assert!(msg.contains(&format!("{bad:?}")), "names the value: {msg}");
        }
    }

    #[test]
    fn slow_logging_honors_the_threshold() {
        // An hour-long "request" exceeds any configured threshold.
        assert!(log_if_slow(
            "test",
            200,
            Duration::from_secs(3600),
            &[("parse", Duration::from_millis(1))],
        ));
        // A zero-duration request only logs when the threshold is 0
        // (the CI smoke configuration).
        assert_eq!(
            log_if_slow("test", 200, Duration::ZERO, &[]),
            slow_threshold_ms() == 0
        );
    }
}
