//! Static timing analysis.
//!
//! SCPG's whole premise is the gap between the combinational evaluation
//! time `T_eval` and the clock period `T_clk` (paper Fig. 1): frequency
//! scaling below `F_max` opens up `T_idle = T_clk − T_hold − T_eval −
//! T_setup`, which the technique converts into gated time. This crate
//! computes those quantities from the netlist:
//!
//! * [`analyze`] — longest-path analysis at a supply voltage, returning
//!   [`TimingReport`] with `T_eval`, the critical path, and the minimum
//!   clock period;
//! * supply sweeps for the sub-threshold study (Figs. 9/10) fall out of
//!   calling [`analyze`] per voltage, since every cell delay scales with
//!   the shared transistor model.
//!
//! Timing arcs: primary inputs and flop/latch `Q` pins launch at the
//! clock-to-Q delay; flop `D` pins and output ports capture; combinational
//! cells contribute `delay(V, load)` per output. Combinational loops are
//! reported as errors.
//!
//! # Example
//!
//! ```
//! use scpg_liberty::Library;
//! use scpg_netlist::Netlist;
//! use scpg_sta::analyze;
//! use scpg_units::Voltage;
//!
//! let lib = Library::ninety_nm();
//! let mut nl = Netlist::new("t");
//! let a = nl.add_input("a");
//! let y = nl.add_output("y");
//! nl.add_instance("u", "INV_X1", &[a, y])?;
//! let report = analyze(&nl, &lib, Voltage::from_mv(600.0))?;
//! assert!(report.t_eval.as_ps() > 0.0);
//! # Ok::<(), Box<dyn std::error::Error>>(())
//! ```

#![warn(missing_docs)]

use std::error::Error;
use std::fmt;

use scpg_liberty::{CellKind, Library};
use scpg_netlist::{InstId, NetId, Netlist, NetlistError, PortDirection};
use scpg_units::{Frequency, Time, Voltage};

/// Errors from timing analysis.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum StaError {
    /// The netlist does not resolve against the library.
    Netlist(NetlistError),
    /// A purely combinational cycle was found (no flop breaks the loop).
    CombinationalLoop {
        /// Name of a net on the cycle.
        net: String,
    },
    /// The design exceeds the analysis admission limits
    /// ([`analyze_limited`]).
    TooLarge {
        /// Instances in the design.
        instances: usize,
        /// The admission ceiling.
        limit: usize,
    },
}

impl fmt::Display for StaError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            StaError::Netlist(e) => write!(f, "netlist error: {e}"),
            StaError::CombinationalLoop { net } => {
                write!(f, "combinational loop through net `{net}`")
            }
            StaError::TooLarge { instances, limit } => {
                write!(
                    f,
                    "design too large for timing analysis: {instances} instances, limit {limit}"
                )
            }
        }
    }
}

impl Error for StaError {
    fn source(&self) -> Option<&(dyn Error + 'static)> {
        match self {
            StaError::Netlist(e) => Some(e),
            StaError::CombinationalLoop { .. } | StaError::TooLarge { .. } => None,
        }
    }
}

impl From<NetlistError> for StaError {
    fn from(e: NetlistError) -> Self {
        StaError::Netlist(e)
    }
}

/// Result of a longest-path analysis at one supply voltage.
#[derive(Debug, Clone, PartialEq)]
pub struct TimingReport {
    /// The supply the analysis ran at.
    pub voltage: Voltage,
    /// Longest combinational evaluation time (launch to capture),
    /// including the launching flop's clock-to-Q delay.
    pub t_eval: Time,
    /// Largest setup requirement among capturing flops.
    pub t_setup: Time,
    /// Largest hold requirement among flops.
    pub t_hold: Time,
    /// Minimum clock period: `t_eval + t_setup`.
    pub min_period: Time,
    /// Instances along the critical path, launch to capture.
    pub critical_path: Vec<InstId>,
}

impl TimingReport {
    /// Maximum clock frequency at this supply.
    pub fn f_max(&self) -> Frequency {
        self.min_period.frequency()
    }

    /// Idle time inside a clock cycle at frequency `f`
    /// (`T_clk − T_eval − T_setup`, clamped at zero) — the raw material
    /// SCPG converts into leakage saving.
    pub fn t_idle(&self, f: Frequency) -> Time {
        let slack = f.period() - self.min_period;
        slack.max(Time::ZERO)
    }
}

/// Admission limits for [`analyze_limited`] — the hook the serving layer
/// uses so an uploaded netlist cannot demand unbounded timing work.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct StaLimits {
    /// Maximum instances admitted to analysis.
    pub max_instances: usize,
}

impl Default for StaLimits {
    fn default() -> Self {
        // Matches the netlist-parse ceiling: comfortably above the
        // paper's 6 747-gate M0.
        Self {
            max_instances: 20_000,
        }
    }
}

/// [`analyze`] behind an explicit size admission check, for untrusted
/// (uploaded) designs.
///
/// # Errors
///
/// [`StaError::TooLarge`] when the design busts `limits`, otherwise as
/// [`analyze`].
pub fn analyze_limited(
    nl: &Netlist,
    lib: &Library,
    v: Voltage,
    limits: &StaLimits,
) -> Result<TimingReport, StaError> {
    if nl.instances().len() > limits.max_instances {
        return Err(StaError::TooLarge {
            instances: nl.instances().len(),
            limit: limits.max_instances,
        });
    }
    analyze(nl, lib, v)
}

/// Runs longest-path timing analysis at supply `v` (nominal temperature).
///
/// # Errors
///
/// Returns [`StaError::Netlist`] if the netlist does not resolve, or
/// [`StaError::CombinationalLoop`] if combinational cells form a cycle.
pub fn analyze(nl: &Netlist, lib: &Library, v: Voltage) -> Result<TimingReport, StaError> {
    let conn = nl.connectivity(lib)?;
    let n_nets = nl.nets().len();

    // Per-net arrival time (ps) and the instance that set it.
    let mut arrival: Vec<f64> = vec![f64::NEG_INFINITY; n_nets];
    let mut from: Vec<Option<InstId>> = vec![None; n_nets];

    // Sources: primary inputs at t=0; sequential outputs at clock-to-Q;
    // header rails and undriven nets at t=0 (constants).
    let mut t_setup = Time::ZERO;
    let mut t_hold = Time::ZERO;
    for p in nl.ports() {
        if p.direction == PortDirection::Input {
            arrival[p.net.index()] = 0.0;
        }
    }
    for (id, inst) in nl.iter_instances() {
        let cell = lib.expect_cell(inst.cell());
        let kind = cell.kind();
        if kind.is_sequential() {
            t_setup = t_setup.max(cell.setup_time());
            t_hold = t_hold.max(cell.hold_time());
            let n_in = kind.num_inputs();
            for &q in &inst.connections()[n_in..] {
                let clk_q = cell.delay(v, load_of(nl, lib, &conn, q));
                if clk_q.as_ps() > arrival[q.index()] {
                    arrival[q.index()] = clk_q.as_ps();
                    from[q.index()] = Some(id);
                }
            }
        } else if kind == CellKind::Header {
            for &out in &inst.connections()[kind.num_inputs()..] {
                arrival[out.index()] = arrival[out.index()].max(0.0);
            }
        }
    }
    for (i, a) in arrival.iter_mut().enumerate().take(n_nets) {
        if conn.driver(NetId::from_index(i)).is_none() && *a == f64::NEG_INFINITY {
            // Undriven-but-read nets would fail validation; treat as t=0
            // so analysis is robust on partial designs.
            *a = 0.0;
        }
    }

    // Kahn's algorithm over combinational cells.
    let mut pending: Vec<usize> = Vec::with_capacity(nl.instances().len());
    let mut comb: Vec<bool> = Vec::with_capacity(nl.instances().len());
    for (_, inst) in nl.iter_instances() {
        let kind = lib.expect_cell(inst.cell()).kind();
        let is_comb = kind.is_combinational();
        comb.push(is_comb);
        pending.push(if is_comb { kind.num_inputs() } else { 0 });
    }
    // Input readiness: an input is ready when its net has a finite arrival.
    // Start with inputs whose nets are already sourced.
    let mut ready: Vec<InstId> = Vec::new();
    let mut remaining: Vec<usize> = pending.clone();
    for (id, inst) in nl.iter_instances() {
        if !comb[id.index()] {
            continue;
        }
        let kind = lib.expect_cell(inst.cell()).kind();
        let n_ready = inst.connections()[..kind.num_inputs()]
            .iter()
            .filter(|n| arrival[n.index()].is_finite())
            .count();
        remaining[id.index()] = kind.num_inputs() - n_ready;
        if remaining[id.index()] == 0 {
            ready.push(id);
        }
    }

    let mut processed = 0usize;
    let total_comb = comb.iter().filter(|&&c| c).count();
    while let Some(id) = ready.pop() {
        processed += 1;
        let inst = nl.instance(id);
        let cell = lib.expect_cell(inst.cell());
        let kind = cell.kind();
        let n_in = kind.num_inputs();
        let in_arr = inst.connections()[..n_in]
            .iter()
            .map(|n| arrival[n.index()])
            .fold(0.0_f64, f64::max);
        for &out in &inst.connections()[n_in..] {
            let d = cell.delay(v, load_of(nl, lib, &conn, out));
            let t = in_arr + d.as_ps();
            if t > arrival[out.index()] {
                arrival[out.index()] = t;
                from[out.index()] = Some(id);
            }
            // Wake readers whose inputs are now all sourced.
            for pin in conn.loads(out) {
                let r = pin.inst.index();
                if comb[r] && remaining[r] > 0 {
                    remaining[r] -= 1;
                    if remaining[r] == 0 {
                        ready.push(pin.inst);
                    }
                }
            }
        }
    }
    if processed < total_comb {
        // Some combinational cell never became ready: a loop. Identify a
        // net on it for the report.
        let victim = nl
            .iter_instances()
            .find(|(id, _)| comb[id.index()] && remaining[id.index()] > 0)
            .map(|(_, inst)| nl.net(inst.connections()[0]).name().to_string())
            .unwrap_or_default();
        return Err(StaError::CombinationalLoop { net: victim });
    }

    // Capture points: flop D inputs (all non-clock sequential inputs) and
    // output ports.
    let mut worst = 0.0_f64;
    let mut worst_net: Option<NetId> = None;
    for (_, inst) in nl.iter_instances() {
        let kind = lib.expect_cell(inst.cell()).kind();
        if !kind.is_sequential() {
            continue;
        }
        // Data input is pin 0 by convention (D).
        let d_net = inst.connections()[0];
        if arrival[d_net.index()].is_finite() && arrival[d_net.index()] > worst {
            worst = arrival[d_net.index()];
            worst_net = Some(d_net);
        }
    }
    for p in nl.ports() {
        if p.direction == PortDirection::Output
            && arrival[p.net.index()].is_finite()
            && arrival[p.net.index()] > worst
        {
            worst = arrival[p.net.index()];
            worst_net = Some(p.net);
        }
    }

    // Trace the critical path backwards.
    let mut critical_path = Vec::new();
    let mut cursor = worst_net;
    while let Some(net) = cursor {
        match from[net.index()] {
            Some(inst_id) => {
                critical_path.push(inst_id);
                // Predecessor: the input of `inst_id` with max arrival.
                let inst = nl.instance(inst_id);
                let kind = lib.expect_cell(inst.cell()).kind();
                cursor = inst.connections()[..kind.num_inputs()]
                    .iter()
                    .copied()
                    .filter(|n| arrival[n.index()].is_finite())
                    .max_by(|a, b| arrival[a.index()].total_cmp(&arrival[b.index()]));
                // Stop at sequential launch points.
                if kind.is_sequential() {
                    cursor = None;
                }
            }
            None => cursor = None,
        }
    }
    critical_path.reverse();

    let t_eval = Time::from_ps(worst);
    Ok(TimingReport {
        voltage: v,
        t_eval,
        t_setup,
        t_hold,
        min_period: t_eval + t_setup,
        critical_path,
    })
}

fn load_of(
    nl: &Netlist,
    lib: &Library,
    conn: &scpg_netlist::Connectivity,
    net: NetId,
) -> scpg_units::Capacitance {
    let mut load = lib.wire_cap();
    for pin in conn.loads(net) {
        load += lib.expect_cell(nl.instance(pin.inst).cell()).input_cap();
    }
    load
}

/// Maximum operating frequency of `nl` at supply `v`.
///
/// # Errors
///
/// Propagates [`analyze`]'s errors.
pub fn f_max(nl: &Netlist, lib: &Library, v: Voltage) -> Result<Frequency, StaError> {
    Ok(analyze(nl, lib, v)?.f_max())
}

#[cfg(test)]
mod tests {
    use super::*;
    use scpg_liberty::Library;

    fn lib() -> Library {
        Library::ninety_nm()
    }

    /// inv chain of length n between an input and an output port.
    fn chain(n: usize) -> Netlist {
        let mut nl = Netlist::new("chain");
        let mut cur = nl.add_input("a");
        for i in 0..n {
            let next = if i + 1 == n {
                nl.add_output("y")
            } else {
                nl.add_fresh_net()
            };
            nl.add_instance(format!("u{i}"), "INV_X1", &[cur, next])
                .unwrap();
            cur = next;
        }
        nl
    }

    #[test]
    fn analyze_limited_refuses_oversized_designs() {
        let lib = lib();
        let v = Voltage::from_mv(600.0);
        let nl = chain(8);
        let err = analyze_limited(&nl, &lib, v, &StaLimits { max_instances: 4 })
            .expect_err("8 > 4 must refuse");
        assert_eq!(
            err,
            StaError::TooLarge {
                instances: 8,
                limit: 4
            }
        );
        // Within limits the result is the plain analysis, bit-identical.
        let limited = analyze_limited(&nl, &lib, v, &StaLimits::default()).unwrap();
        assert_eq!(limited, analyze(&nl, &lib, v).unwrap());
    }

    #[test]
    fn longer_chains_take_longer() {
        let lib = lib();
        let v = Voltage::from_mv(600.0);
        let t4 = analyze(&chain(4), &lib, v).unwrap().t_eval;
        let t8 = analyze(&chain(8), &lib, v).unwrap().t_eval;
        assert!(t8.as_ps() > 1.9 * t4.as_ps(), "{t4} vs {t8}");
    }

    #[test]
    fn critical_path_is_reported_in_order() {
        let lib = lib();
        let nl = chain(5);
        let r = analyze(&nl, &lib, Voltage::from_mv(600.0)).unwrap();
        assert_eq!(r.critical_path.len(), 5);
        let names: Vec<&str> = r
            .critical_path
            .iter()
            .map(|&id| nl.instance(id).name())
            .collect();
        assert_eq!(names, ["u0", "u1", "u2", "u3", "u4"]);
    }

    #[test]
    fn flop_to_flop_path_includes_clk_q_and_setup() {
        let lib = lib();
        let mut nl = Netlist::new("t");
        let clk = nl.add_input("clk");
        let d = nl.add_input("d");
        let q1 = nl.add_fresh_net();
        let n1 = nl.add_fresh_net();
        let q2 = nl.add_output("q2");
        nl.add_instance("ff1", "DFF_X1", &[d, clk, q1]).unwrap();
        nl.add_instance("inv", "INV_X1", &[q1, n1]).unwrap();
        nl.add_instance("ff2", "DFF_X1", &[n1, clk, q2]).unwrap();
        let r = analyze(&nl, &lib, Voltage::from_mv(600.0)).unwrap();
        assert!(r.t_setup.as_ps() > 0.0, "flop endpoints impose setup");
        assert!(r.t_hold.as_ps() > 0.0);
        // Path = clk→q + inv > inv alone.
        let inv_only = analyze(&chain(1), &lib, Voltage::from_mv(600.0)).unwrap();
        assert!(r.t_eval.as_ps() > inv_only.t_eval.as_ps());
        assert!(r.min_period.as_ps() > r.t_eval.as_ps());
    }

    #[test]
    fn lower_supply_means_lower_fmax() {
        let lib = lib();
        let nl = chain(16);
        let f6 = f_max(&nl, &lib, Voltage::from_mv(600.0)).unwrap();
        let f3 = f_max(&nl, &lib, Voltage::from_mv(310.0)).unwrap();
        let ratio = f6 / f3;
        assert!(
            (4.0..10.0).contains(&ratio),
            "0.6 V / 0.31 V f_max ratio {ratio:.2} (calibration band)"
        );
    }

    #[test]
    fn combinational_loop_is_detected() {
        let lib = lib();
        let mut nl = Netlist::new("t");
        let a = nl.add_input("a");
        let n1 = nl.add_net("loop1");
        let n2 = nl.add_net("loop2");
        let y = nl.add_output("y");
        nl.add_instance("u1", "NAND2_X1", &[a, n2, n1]).unwrap();
        nl.add_instance("u2", "INV_X1", &[n1, n2]).unwrap();
        nl.add_instance("u3", "INV_X1", &[n1, y]).unwrap();
        assert!(matches!(
            analyze(&nl, &lib, Voltage::from_mv(600.0)),
            Err(StaError::CombinationalLoop { .. })
        ));
    }

    #[test]
    fn flops_legally_break_cycles() {
        let lib = lib();
        let mut nl = Netlist::new("t");
        let clk = nl.add_input("clk");
        let q = nl.add_net("q");
        let nq = nl.add_net("nq");
        nl.add_instance("ff", "DFF_X1", &[nq, clk, q]).unwrap();
        nl.add_instance("inv", "INV_X1", &[q, nq]).unwrap();
        let r = analyze(&nl, &lib, Voltage::from_mv(600.0)).unwrap();
        assert!(r.t_eval.as_ps() > 0.0);
    }

    #[test]
    fn t_idle_shrinks_with_frequency() {
        let lib = lib();
        let nl = chain(8);
        let r = analyze(&nl, &lib, Voltage::from_mv(600.0)).unwrap();
        let slow = r.t_idle(Frequency::from_khz(10.0));
        let fast = r.t_idle(r.f_max());
        assert!(slow.as_us() > 99.0, "10 kHz cycle is nearly all idle");
        assert!(fast.as_ps() < 1.0, "no idle at f_max");
    }
}
