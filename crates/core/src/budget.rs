//! Power-budget solving (the paper's headline §III examples).
//!
//! Energy-harvester systems fix the power budget, not the frequency: the
//! paper asks "given 30 µW, how fast can the multiplier run and at what
//! energy per operation?" — no SCPG: 100 kHz / 294.4 pJ; SCPG: ≈2 MHz;
//! SCPG-Max: ≈5 MHz / 6.56 pJ, i.e. ~50× the clock and ~45× the energy
//! efficiency inside the same budget.

use scpg_units::{Frequency, Power};

use crate::analysis::{Mode, OperatingPoint, ScpgAnalysis};

/// A power ceiling (e.g. an energy harvester's output).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct PowerBudget(pub Power);

/// The best operating point found within a budget.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct BudgetSolution {
    /// The point itself.
    pub point: OperatingPoint,
    /// The budget it satisfies.
    pub budget: Power,
}

impl PowerBudget {
    /// The highest frequency whose average power stays within the budget
    /// for the given mode, searched over `[lo, hi]` by bisection (power
    /// is monotone in frequency for every mode). Returns `None` when
    /// even `lo` exceeds the budget.
    pub fn solve(
        &self,
        analysis: &ScpgAnalysis,
        mode: Mode,
        lo: Frequency,
        hi: Frequency,
    ) -> Option<BudgetSolution> {
        let fits = |f: Frequency| analysis.operating_point(f, mode).power.value() <= self.0.value();
        if !fits(lo) {
            return None;
        }
        if fits(hi) {
            return Some(BudgetSolution {
                point: analysis.operating_point(hi, mode),
                budget: self.0,
            });
        }
        let (mut a, mut b) = (lo.value(), hi.value());
        for _ in 0..80 {
            let mid = (a * b).sqrt();
            if fits(Frequency::new(mid)) {
                a = mid;
            } else {
                b = mid;
            }
        }
        Some(BudgetSolution {
            point: analysis.operating_point(Frequency::new(a), mode),
            budget: self.0,
        })
    }

    /// The paper's headline comparison: solve the same budget for all
    /// three modes (in parallel — the bisections are independent) and
    /// report frequency / energy-efficiency gains of the SCPG
    /// configurations over the baseline.
    pub fn headline(
        &self,
        analysis: &ScpgAnalysis,
        lo: Frequency,
        hi: Frequency,
    ) -> Option<Headline> {
        let modes = [Mode::NoPg, Mode::Scpg, Mode::ScpgMax];
        let mut solutions =
            scpg_exec::par_sweep(&modes, |&mode| self.solve(analysis, mode, lo, hi)).into_iter();
        let base = solutions.next().flatten()?;
        let scpg = solutions.next().flatten()?;
        let max = solutions.next().flatten()?;
        Some(Headline {
            speedup_scpg: scpg.point.frequency / base.point.frequency,
            speedup_max: max.point.frequency / base.point.frequency,
            energy_gain_scpg: base.point.energy_per_op / scpg.point.energy_per_op,
            energy_gain_max: base.point.energy_per_op / max.point.energy_per_op,
            no_pg: base,
            scpg,
            scpg_max: max,
        })
    }
}

/// Three-way budget comparison.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Headline {
    /// Baseline solution.
    pub no_pg: BudgetSolution,
    /// 50 %-duty solution.
    pub scpg: BudgetSolution,
    /// Max-duty solution.
    pub scpg_max: BudgetSolution,
    /// Frequency gain of SCPG over baseline.
    pub speedup_scpg: f64,
    /// Frequency gain of SCPG-Max over baseline.
    pub speedup_max: f64,
    /// Energy-per-operation gain of SCPG over baseline.
    pub energy_gain_scpg: f64,
    /// Energy-per-operation gain of SCPG-Max over baseline.
    pub energy_gain_max: f64,
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::transform::{ScpgOptions, ScpgTransform};
    use scpg_circuits::generate_multiplier;
    use scpg_liberty::{Library, PvtCorner};
    use scpg_units::Energy;

    fn analysis() -> ScpgAnalysis {
        let lib = Library::ninety_nm();
        let (nl, _) = generate_multiplier(&lib, 16);
        let design = ScpgTransform::new(&lib)
            .apply(&nl, "clk", &ScpgOptions::default())
            .unwrap();
        ScpgAnalysis::new(
            &lib,
            &nl,
            &design,
            Energy::from_pj(2.3),
            PvtCorner::default(),
        )
        .unwrap()
    }

    #[test]
    fn solution_saturates_the_budget() {
        let a = analysis();
        let budget = PowerBudget(Power::from_uw(30.0));
        let s = budget
            .solve(
                &a,
                Mode::NoPg,
                Frequency::from_hz(100.0),
                Frequency::from_mhz(50.0),
            )
            .expect("30 µW is solvable");
        assert!(s.point.power.value() <= 30.1e-6);
        // And nearly saturated: 1 % more frequency would bust it.
        let p_above = a
            .operating_point(s.point.frequency * 1.05, Mode::NoPg)
            .power;
        assert!(p_above.value() > 30.0e-6 * 0.999);
    }

    #[test]
    fn headline_reproduces_the_30uw_story_shape() {
        // Paper §III-A at a 30 µW budget: ~50× frequency and ~45× energy
        // efficiency from SCPG-Max. Our calibrated model should land in
        // the same order of magnitude.
        let a = analysis();
        let h = PowerBudget(Power::from_uw(30.0))
            .headline(&a, Frequency::from_hz(100.0), Frequency::from_mhz(50.0))
            .expect("solvable");
        assert!(
            h.speedup_max > 8.0,
            "SCPG-Max speedup {:.1}×",
            h.speedup_max
        );
        assert!(
            h.energy_gain_max > 8.0,
            "SCPG-Max energy gain {:.1}×",
            h.energy_gain_max
        );
        assert!(h.speedup_scpg > 1.5, "SCPG speedup {:.1}×", h.speedup_scpg);
        assert!(h.speedup_max >= h.speedup_scpg);
    }

    #[test]
    fn impossible_budget_returns_none() {
        let a = analysis();
        let budget = PowerBudget(Power::from_nw(1.0));
        assert!(budget
            .solve(
                &a,
                Mode::NoPg,
                Frequency::from_hz(100.0),
                Frequency::from_mhz(10.0)
            )
            .is_none());
    }

    #[test]
    fn huge_budget_returns_the_search_ceiling() {
        let a = analysis();
        let budget = PowerBudget(Power::from_mw(100.0));
        let s = budget
            .solve(
                &a,
                Mode::NoPg,
                Frequency::from_hz(100.0),
                Frequency::from_mhz(10.0),
            )
            .unwrap();
        assert!((s.point.frequency.as_mhz() - 10.0).abs() < 1e-9);
    }
}
