//! SCPG error type.

use std::error::Error;
use std::fmt;

use scpg_netlist::NetlistError;
use scpg_sta::StaError;

/// Errors from SCPG transformation and analysis.
#[derive(Debug, Clone, PartialEq)]
pub enum ScpgError {
    /// Underlying netlist problem.
    Netlist(NetlistError),
    /// Underlying timing problem.
    Timing(StaError),
    /// The named clock net does not exist in the design.
    NoSuchClock {
        /// The clock name looked up.
        name: String,
    },
    /// The design has no combinational logic to gate.
    NothingToGate,
    /// No header size satisfies the sizing constraints.
    NoViableHeader,
    /// The requested frequency/duty combination leaves no room for
    /// evaluation (`T_eval` + margins exceed the low phase).
    InfeasibleTiming {
        /// Human-readable account of the violated budget.
        detail: String,
    },
}

impl fmt::Display for ScpgError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ScpgError::Netlist(e) => write!(f, "netlist error: {e}"),
            ScpgError::Timing(e) => write!(f, "timing error: {e}"),
            ScpgError::NoSuchClock { name } => {
                write!(f, "clock net `{name}` not found in the design")
            }
            ScpgError::NothingToGate => {
                write!(f, "design has no combinational cells to power gate")
            }
            ScpgError::NoViableHeader => {
                write!(f, "no header size satisfies the sizing constraints")
            }
            ScpgError::InfeasibleTiming { detail } => {
                write!(f, "infeasible sub-clock timing: {detail}")
            }
        }
    }
}

impl Error for ScpgError {
    fn source(&self) -> Option<&(dyn Error + 'static)> {
        match self {
            ScpgError::Netlist(e) => Some(e),
            ScpgError::Timing(e) => Some(e),
            _ => None,
        }
    }
}

impl From<NetlistError> for ScpgError {
    fn from(e: NetlistError) -> Self {
        ScpgError::Netlist(e)
    }
}

impl From<StaError> for ScpgError {
    fn from(e: StaError) -> Self {
        ScpgError::Timing(e)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn displays_are_lowercase_and_specific() {
        let e = ScpgError::NoSuchClock {
            name: "clkX".into(),
        };
        assert!(e.to_string().contains("clkX"));
        let e = ScpgError::InfeasibleTiming {
            detail: "T_eval 20 ns > low phase 10 ns".into(),
        };
        assert!(e.to_string().contains("20 ns"));
    }

    #[test]
    fn sources_chain() {
        let e = ScpgError::from(NetlistError::UndrivenNet { net: "n".into() });
        assert!(e.source().is_some());
    }
}
