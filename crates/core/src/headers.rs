//! Gated-domain electrical profiling and header selection (paper §III).

use scpg_analog::{recommend_header, DomainProfile, HeaderReport, SizingConstraints};
use scpg_liberty::{HeaderSize, Library, PvtCorner};
use scpg_power::PowerAnalyzer;
use scpg_units::{Capacitance, Current, Energy, Time};

use crate::error::ScpgError;
use crate::transform::ScpgDesign;

/// Extracts the [`DomainProfile`] of an SCPG design's gated domain.
///
/// * `C_VDDV` — the library's rail-capacitance density times the gated
///   area;
/// * `I_leak` — the gated domain's full-rail leakage from the power
///   engine;
/// * evaluation currents — the workload's dynamic energy spread over
///   `T_eval` (average) with a 2.5× crest factor (peak).
///
/// # Errors
///
/// Returns [`ScpgError::Netlist`] if the design does not resolve against
/// the library.
pub fn profile_domain(
    design: &ScpgDesign,
    lib: &Library,
    corner: PvtCorner,
    e_dyn_per_cycle: Energy,
    t_eval: Time,
) -> Result<DomainProfile, ScpgError> {
    let stats = design.netlist.stats(lib);
    let analyzer = PowerAnalyzer::new(&design.netlist, lib, corner)?;
    let leak = analyzer.leakage(None);

    let c_vddv = Capacitance::new(lib.rail_cap_density().value() * stats.gated.area.as_um2());
    let i_eval_avg = if t_eval.value() > 0.0 {
        Current::new(e_dyn_per_cycle.value() / (corner.voltage.as_v() * t_eval.value()))
    } else {
        Current::ZERO
    };
    Ok(DomainProfile {
        n_gates: stats.gated.combinational,
        c_vddv,
        i_leak_full: leak.gated_domain_current,
        i_eval_avg,
        i_eval_peak: i_eval_avg * 2.5,
    })
}

/// Picks the smallest acceptable header for a profiled domain.
///
/// # Errors
///
/// Returns [`ScpgError::NoViableHeader`] when no kit size meets the
/// constraints.
pub fn choose_header(
    profile: &DomainProfile,
    corner: PvtCorner,
    constraints: &SizingConstraints,
) -> Result<(HeaderSize, Vec<HeaderReport>), ScpgError> {
    let (reports, pick) = recommend_header(profile, corner.voltage, constraints);
    match pick {
        Some(i) => Ok((reports[i].size, reports)),
        None => Err(ScpgError::NoViableHeader),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::transform::{ScpgOptions, ScpgTransform};
    use scpg_circuits::generate_multiplier;
    use scpg_liberty::Library;

    fn multiplier_profile() -> (DomainProfile, PvtCorner) {
        let lib = Library::ninety_nm();
        let (nl, _) = generate_multiplier(&lib, 16);
        let design = ScpgTransform::new(&lib)
            .apply(&nl, "clk", &ScpgOptions::default())
            .unwrap();
        let corner = PvtCorner::default();
        let timing = scpg_sta::analyze(&design.netlist, &lib, corner.voltage).unwrap();
        let profile =
            profile_domain(&design, &lib, corner, Energy::from_pj(2.3), timing.t_eval).unwrap();
        (profile, corner)
    }

    #[test]
    fn multiplier_profile_matches_calibration() {
        let (p, _) = multiplier_profile();
        assert!((400..700).contains(&p.n_gates), "gates {}", p.n_gates);
        // DESIGN.md §6: C_VDDV ≈ 1.1 pF, I_leak ≈ 39 µA for the 556-gate
        // multiplier. Allow a generous band — the netlist is ours, not
        // the paper's.
        assert!(
            (0.5..2.5).contains(&p.c_vddv.as_pf()),
            "C_VDDV = {}",
            p.c_vddv
        );
        assert!(
            (15.0..80.0).contains(&p.i_leak_full.as_ua()),
            "I_leak = {}",
            p.i_leak_full
        );
        assert!(p.i_eval_peak.value() > p.i_eval_avg.value());
    }

    #[test]
    fn header_choice_is_x2_class_for_multiplier() {
        let (p, corner) = multiplier_profile();
        let (size, reports) = choose_header(&p, corner, &SizingConstraints::default()).unwrap();
        assert!(
            matches!(size, HeaderSize::X1 | HeaderSize::X2),
            "small header for the small domain, got {size:?}"
        );
        assert_eq!(reports.len(), 4);
    }

    #[test]
    fn impossible_constraints_error() {
        let (p, corner) = multiplier_profile();
        let constraints = SizingConstraints {
            max_ir_drop_frac: 1e-9,
            max_inrush: Current::from_na(1.0),
            ..Default::default()
        };
        assert!(matches!(
            choose_header(&p, corner, &constraints),
            Err(ScpgError::NoViableHeader)
        ));
    }
}
