//! `scpg-flow` — command-line front end to the SCPG design flow.
//!
//! ```text
//! scpg-flow <netlist.v> --clock <net> [--out <dir>] [--energy-pj <E>]
//!           [--fanout <N>]
//! ```
//!
//! Reads a structural Verilog netlist (the subset emitted by this
//! workspace — see `scpg_netlist::parse_verilog`), runs the full Fig. 5
//! flow against the bundled 90 nm kit, and writes next to it:
//!
//! * `<name>_scpg.v`   — the transformed netlist,
//! * `<name>_split.v`  — the two-domain split form (flow step 1),
//! * `<name>.upf`      — the power-intent file,
//! * a stage log on stdout.

use std::path::PathBuf;
use std::process::ExitCode;

use scpg::ScpgFlow;
use scpg_liberty::Library;
use scpg_netlist::{emit_verilog, parse_verilog};
use scpg_units::Energy;

struct Args {
    input: PathBuf,
    clock: String,
    out_dir: Option<PathBuf>,
    energy_pj: f64,
    fanout: usize,
    library: Option<PathBuf>,
}

fn parse_args() -> Result<Args, String> {
    let mut input = None;
    let mut clock = "clk".to_string();
    let mut out_dir = None;
    let mut energy_pj = 2.0;
    let mut fanout = 24;
    let mut library = None;
    let mut it = std::env::args().skip(1);
    while let Some(arg) = it.next() {
        match arg.as_str() {
            "--clock" => clock = it.next().ok_or("--clock needs a net name")?,
            "--library" => {
                library = Some(PathBuf::from(it.next().ok_or("--library needs a file")?))
            }
            "--out" => out_dir = Some(PathBuf::from(it.next().ok_or("--out needs a dir")?)),
            "--energy-pj" => {
                energy_pj = it
                    .next()
                    .ok_or("--energy-pj needs a value")?
                    .parse()
                    .map_err(|e| format!("bad --energy-pj: {e}"))?
            }
            "--fanout" => {
                fanout = it
                    .next()
                    .ok_or("--fanout needs a value")?
                    .parse()
                    .map_err(|e| format!("bad --fanout: {e}"))?
            }
            "--help" | "-h" => {
                return Err("usage: scpg-flow <netlist.v> --clock <net> \
                            [--out <dir>] [--energy-pj <E>] [--fanout <N>] \
                            [--library <file.lib>]"
                    .to_string())
            }
            other if input.is_none() && !other.starts_with('-') => {
                input = Some(PathBuf::from(other))
            }
            other => return Err(format!("unknown argument `{other}`")),
        }
    }
    Ok(Args {
        input: input.ok_or("missing input netlist (try --help)")?,
        clock,
        out_dir,
        energy_pj,
        fanout,
        library,
    })
}

fn run() -> Result<(), String> {
    let args = parse_args()?;
    let text = std::fs::read_to_string(&args.input)
        .map_err(|e| format!("cannot read {}: {e}", args.input.display()))?;
    let lib = match &args.library {
        Some(path) => {
            let lib_text = std::fs::read_to_string(path)
                .map_err(|e| format!("cannot read {}: {e}", path.display()))?;
            let lib = scpg_liberty::parse_library(&lib_text)?;
            println!("loaded library `{}` from {}", lib.name(), path.display());
            lib
        }
        None => Library::ninety_nm(),
    };
    let netlist = parse_verilog(&text, &lib).map_err(|e| e.to_string())?;
    netlist.validate(&lib).map_err(|e| e.to_string())?;
    println!(
        "parsed `{}`: {} cells, {} nets",
        netlist.name(),
        netlist.instances().len(),
        netlist.nets().len()
    );

    let report = ScpgFlow::new(&lib)
        .with_workload_energy(Energy::from_pj(args.energy_pj))
        .with_cts_fanout(args.fanout)
        .run(&netlist, &args.clock)
        .map_err(|e| e.to_string())?;
    for stage in &report.stages {
        println!("[{}] {}", stage.stage, stage.detail);
    }

    let dir = args
        .out_dir
        .or_else(|| args.input.parent().map(PathBuf::from))
        .unwrap_or_else(|| PathBuf::from("."));
    std::fs::create_dir_all(&dir).map_err(|e| e.to_string())?;
    let base = netlist.name().to_string();
    let scpg_v = dir.join(format!("{base}_scpg.v"));
    let split_v = dir.join(format!("{base}_split.v"));
    let upf = dir.join(format!("{base}.upf"));
    std::fs::write(
        &scpg_v,
        emit_verilog(&report.design.netlist, &lib).map_err(|e| e.to_string())?,
    )
    .map_err(|e| e.to_string())?;
    std::fs::write(&split_v, &report.split_verilog).map_err(|e| e.to_string())?;
    std::fs::write(&upf, &report.upf).map_err(|e| e.to_string())?;
    println!(
        "wrote {}, {}, {}",
        scpg_v.display(),
        split_v.display(),
        upf.display()
    );
    Ok(())
}

fn main() -> ExitCode {
    match run() {
        Ok(()) => ExitCode::SUCCESS,
        Err(msg) => {
            eprintln!("scpg-flow: {msg}");
            ExitCode::FAILURE
        }
    }
}
