//! Whole-lifecycle comparison: SCPG versus traditional idle-mode power
//! gating on burst-style workloads.
//!
//! The paper positions SCPG against the classic technique it extends
//! (§I: power gating "is effective at reducing leakage power during idle
//! mode; it has been reported to reduce leakage power by up to 25x in the
//! ARM926EJ"). A sensor node alternates **active bursts** with long
//! **idle gaps**, and the two techniques attack different phases:
//!
//! * *traditional PG* shuts the whole design (combinational + sequential)
//!   down during idle, paying retention registers, a power controller and
//!   a wake latency;
//! * *SCPG* saves leakage inside every **active** cycle — and because its
//!   sequential domain is always on, **parking the clock high during
//!   idle** gates the combinational domain for the whole gap with zero
//!   extra hardware: the always-on flops *are* the retention.
//!
//! [`LifecyclePower::compare`] evaluates the strategies over a duty
//! pattern and finds where each wins.

use scpg_units::{Energy, Frequency, Power, Time};

use crate::analysis::{Mode, ScpgAnalysis};

/// A burst/idle duty pattern.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct DutyPattern {
    /// Clock frequency during active bursts.
    pub frequency: Frequency,
    /// Cycles of work per burst.
    pub active_cycles: u64,
    /// Idle time between bursts.
    pub idle: Time,
}

impl DutyPattern {
    /// Active time per burst.
    pub fn active_time(&self) -> Time {
        self.frequency.period() * self.active_cycles as f64
    }

    /// Fraction of wall-clock time spent active.
    pub fn active_fraction(&self) -> f64 {
        let a = self.active_time();
        a / (a + self.idle)
    }
}

/// System-level power-management strategies.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Strategy {
    /// No power gating at all; the clock is gated during idle, so idle
    /// cost is the full design leakage.
    None,
    /// Classic idle-mode power gating: the whole design behind a header,
    /// retention registers hold state, a controller sequences sleep/wake.
    TraditionalIdle,
    /// Sub-clock power gating during active bursts only; idle with the
    /// clock gated low (combinational domain powered).
    Scpg,
    /// SCPG during bursts **and** the clock parked high during idle, so
    /// the combinational domain stays gated through the gap.
    ScpgParkHigh,
}

impl Strategy {
    /// All strategies, in presentation order.
    pub const ALL: [Strategy; 4] = [
        Strategy::None,
        Strategy::TraditionalIdle,
        Strategy::Scpg,
        Strategy::ScpgParkHigh,
    ];

    /// Display label.
    pub fn label(self) -> &'static str {
        match self {
            Strategy::None => "no power gating",
            Strategy::TraditionalIdle => "traditional idle-mode PG",
            Strategy::Scpg => "SCPG (active only)",
            Strategy::ScpgParkHigh => "SCPG + park-high idle",
        }
    }
}

/// Cost model of the classic power-gating implementation, per the Low
/// Power Methodology Manual's architecture the paper cites.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct TraditionalCosts {
    /// Extra leakage of retention registers relative to the sequential
    /// leakage they shadow (balloon latches leak even in sleep).
    pub retention_leak_frac: f64,
    /// Residual leakage of the slept design as a fraction of its total
    /// (header off-leak + retention cells) — the "25×" reduction class.
    pub sleep_residual_frac: f64,
    /// Always-on power-gating controller drain.
    pub controller: Power,
    /// Energy of one full sleep/wake round trip: save/restore sequencing
    /// plus recharging the whole design's rail.
    pub transition_energy: Energy,
}

impl Default for TraditionalCosts {
    fn default() -> Self {
        Self {
            retention_leak_frac: 0.12,
            sleep_residual_frac: 0.04,
            controller: Power::from_nw(300.0),
            transition_energy: Energy::from_pj(8.0),
        }
    }
}

/// One strategy's lifecycle numbers for a pattern.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct LifecyclePoint {
    /// The evaluated strategy.
    pub strategy: Strategy,
    /// Time-averaged power over the whole burst+idle period.
    pub average_power: Power,
    /// Energy per burst period.
    pub energy_per_period: Energy,
}

/// The lifecycle evaluator.
#[derive(Debug)]
pub struct LifecyclePower<'a> {
    analysis: &'a ScpgAnalysis,
    costs: TraditionalCosts,
}

impl<'a> LifecyclePower<'a> {
    /// Wraps an [`ScpgAnalysis`] with default traditional-PG costs.
    pub fn new(analysis: &'a ScpgAnalysis) -> Self {
        Self {
            analysis,
            costs: TraditionalCosts::default(),
        }
    }

    /// Overrides the traditional-PG cost model.
    pub fn with_costs(mut self, costs: TraditionalCosts) -> Self {
        self.costs = costs;
        self
    }

    /// Evaluates one strategy over a pattern.
    pub fn evaluate(&self, pattern: &DutyPattern, strategy: Strategy) -> LifecyclePoint {
        let f = pattern.frequency;
        let t_active = pattern.active_time();
        let t_idle = pattern.idle;
        let leak_base = self.analysis.baseline_leakage();
        let leak_scpg = self.analysis.scpg_leakage();

        let (e_active, e_idle) = match strategy {
            Strategy::None => {
                let p = self.analysis.operating_point(f, Mode::NoPg).power;
                (p * t_active, leak_base.total * t_idle)
            }
            Strategy::TraditionalIdle => {
                // Active: baseline plus retention-register leak overhead
                // and the controller.
                let extra =
                    leak_base.sequential * self.costs.retention_leak_frac + self.costs.controller;
                let p_active = self.analysis.operating_point(f, Mode::NoPg).power + extra;
                // Idle: residual leakage + controller, plus one sleep/wake
                // transition per period.
                let p_idle =
                    leak_base.total * self.costs.sleep_residual_frac + self.costs.controller;
                (
                    p_active * t_active,
                    p_idle * t_idle + self.costs.transition_energy,
                )
            }
            Strategy::Scpg => {
                let p = self.analysis.operating_point(f, Mode::ScpgMax).power;
                // Idle with the clock low: the comb domain is powered.
                (p * t_active, leak_scpg.total * t_idle)
            }
            Strategy::ScpgParkHigh => {
                let p = self.analysis.operating_point(f, Mode::ScpgMax).power;
                // Idle with the clock high: the comb domain is gated; the
                // always-on domain (flops + isolation) keeps state with no
                // retention hardware.
                let p_idle = leak_scpg.total - leak_scpg.gated_domain;
                (p * t_active, p_idle * t_idle)
            }
        };
        let e_total = e_active + e_idle;
        let period = t_active + t_idle;
        LifecyclePoint {
            strategy,
            average_power: e_total / period,
            energy_per_period: e_total,
        }
    }

    /// Evaluates all strategies.
    pub fn compare(&self, pattern: &DutyPattern) -> Vec<LifecyclePoint> {
        Strategy::ALL
            .iter()
            .map(|&s| self.evaluate(pattern, s))
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::transform::{ScpgOptions, ScpgTransform};
    use scpg_circuits::generate_multiplier;
    use scpg_liberty::{Library, PvtCorner};

    fn analysis() -> (Library, scpg_netlist::Netlist, crate::ScpgDesign) {
        let lib = Library::ninety_nm();
        let (nl, _) = generate_multiplier(&lib, 16);
        let design = ScpgTransform::new(&lib)
            .apply(&nl, "clk", &ScpgOptions::default())
            .unwrap();
        (lib, nl, design)
    }

    fn pattern(active_cycles: u64, idle_ms: f64) -> DutyPattern {
        DutyPattern {
            frequency: Frequency::from_mhz(1.0),
            active_cycles,
            idle: Time::from_ms(idle_ms),
        }
    }

    #[test]
    fn mostly_idle_systems_want_traditional_pg_or_park_high() {
        let (lib, nl, design) = analysis();
        let a = ScpgAnalysis::new(
            &lib,
            &nl,
            &design,
            Energy::from_pj(3.0),
            PvtCorner::default(),
        )
        .unwrap();
        let lc = LifecyclePower::new(&a);
        // 1 ms of work every 100 ms: 99 % idle.
        let points = lc.compare(&pattern(1_000, 100.0));
        let by = |s: Strategy| {
            points
                .iter()
                .find(|p| p.strategy == s)
                .unwrap()
                .average_power
        };
        assert!(by(Strategy::TraditionalIdle).value() < by(Strategy::None).value());
        assert!(by(Strategy::ScpgParkHigh).value() < by(Strategy::Scpg).value());
        // Plain SCPG cannot fix a 99 %-idle system: its always-powered
        // comb domain leaks through the gap.
        assert!(by(Strategy::Scpg).value() > by(Strategy::TraditionalIdle).value());
    }

    #[test]
    fn mostly_active_systems_want_scpg() {
        let (lib, nl, design) = analysis();
        let a = ScpgAnalysis::new(
            &lib,
            &nl,
            &design,
            Energy::from_pj(3.0),
            PvtCorner::default(),
        )
        .unwrap();
        let lc = LifecyclePower::new(&a);
        // Continuous operation with a 1 % breather.
        let p = pattern(1_000_000, 10.0);
        assert!(p.active_fraction() > 0.98);
        let points = lc.compare(&p);
        let best = points
            .iter()
            .min_by(|a, b| a.average_power.value().total_cmp(&b.average_power.value()))
            .unwrap();
        assert!(
            matches!(best.strategy, Strategy::Scpg | Strategy::ScpgParkHigh),
            "active-dominated systems are SCPG territory, got {:?}",
            best.strategy
        );
        // And traditional PG's retention/controller overhead makes it
        // WORSE than doing nothing when there is no idle to harvest.
        let by = |s: Strategy| {
            points
                .iter()
                .find(|q| q.strategy == s)
                .unwrap()
                .average_power
        };
        assert!(by(Strategy::TraditionalIdle).value() > by(Strategy::ScpgParkHigh).value());
    }

    #[test]
    fn park_high_dominates_plain_scpg_everywhere() {
        let (lib, nl, design) = analysis();
        let a = ScpgAnalysis::new(
            &lib,
            &nl,
            &design,
            Energy::from_pj(3.0),
            PvtCorner::default(),
        )
        .unwrap();
        let lc = LifecyclePower::new(&a);
        for idle_ms in [0.001, 0.1, 10.0, 1_000.0] {
            let points = lc.compare(&pattern(1_000, idle_ms));
            let scpg = points
                .iter()
                .find(|p| p.strategy == Strategy::Scpg)
                .unwrap();
            let park = points
                .iter()
                .find(|p| p.strategy == Strategy::ScpgParkHigh)
                .unwrap();
            assert!(
                park.average_power.value() <= scpg.average_power.value() + 1e-15,
                "parking the clock high is free leakage saving at idle {idle_ms} ms"
            );
        }
    }

    #[test]
    fn pattern_accounting_is_consistent() {
        let p = pattern(1_000, 1.0);
        // 1 000 cycles at 1 MHz = 1 ms active, 1 ms idle.
        assert!((p.active_fraction() - 0.5).abs() < 1e-9);
        let (lib, nl, design) = analysis();
        let a = ScpgAnalysis::new(
            &lib,
            &nl,
            &design,
            Energy::from_pj(3.0),
            PvtCorner::default(),
        )
        .unwrap();
        let lc = LifecyclePower::new(&a);
        let pt = lc.evaluate(&p, Strategy::None);
        let expect = pt.energy_per_period / (p.active_time() + p.idle);
        assert!((pt.average_power.value() - expect.value()).abs() < 1e-18);
    }
}
