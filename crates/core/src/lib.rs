//! Sub-clock power gating (SCPG).
//!
//! This crate is the reproduction of the contribution of *"Sub-Clock
//! Power-Gating Technique for Minimising Leakage Power During Active
//! Mode"* (Mistry, Al-Hashimi, Flynn, Hill — DATE 2011): power gating the
//! **combinational** logic *inside every clock cycle* while a design is
//! active, converting the idle time created by frequency scaling into
//! leakage savings.
//!
//! The pieces, mirroring the paper's sections:
//!
//! * [`transform`] — the netlist rewrite of Fig. 2/Fig. 5: split the
//!   design into an always-on sequential domain and a header-gated
//!   combinational domain, drive the header from `clock AND NOT override`,
//!   insert the adaptive isolation-control circuit (Fig. 3) and an
//!   isolation clamp on every domain crossing.
//! * [`duty`] — duty-cycle planning: plain SCPG uses the 50 % clock, and
//!   "SCPG-Max" raises the duty cycle until the low phase only just fits
//!   rail restore + `T_eval` + setup (§II).
//! * [`analysis`] — the operating-point power/energy model behind
//!   Tables I/II and Figs. 6/8: leakage split by domain, per-cycle gating
//!   overheads from the analog rail model, average power and energy per
//!   operation versus clock frequency.
//! * [`budget`] — the power-budget solver behind the paper's headline
//!   claims (45× / 2.5× energy-efficiency gains at harvester budgets).
//! * [`headers`] — extraction of the gated domain's electrical profile
//!   and header sizing (X2 for the multiplier, X4 for the M0 in §III).
//! * [`upf`] — Unified Power Format output describing the strategy, as
//!   the paper's flow would hand to commercial back-end tools.
//! * [`flow`] — the end-to-end Fig. 5 design flow driver.
//! * [`service`] — the request → analysis plumbing behind the
//!   `scpg-serve` HTTP front end: validated [`Query`] objects executed
//!   against a shared [`ScpgAnalysis`] under [`QueryLimits`] admission.
//!
//! # Quickstart
//!
//! ```
//! use scpg::transform::{ScpgOptions, ScpgTransform};
//! use scpg_circuits::generate_multiplier;
//! use scpg_liberty::Library;
//!
//! let lib = Library::ninety_nm();
//! let (netlist, ports) = generate_multiplier(&lib, 8);
//! let scpg = ScpgTransform::new(&lib)
//!     .apply(&netlist, "clk", &ScpgOptions::default())?;
//! assert!(scpg.netlist.stats(&lib).gated.combinational > 0);
//! # let _ = ports;
//! # Ok::<(), scpg::ScpgError>(())
//! ```

#![warn(missing_docs)]

pub mod analysis;
pub mod budget;
pub mod duty;
mod error;
pub mod flow;
pub mod headers;
pub mod lifecycle;
pub mod service;
pub mod transform;
pub mod upf;

pub use analysis::{Mode, OperatingPoint, ScpgAnalysis};
pub use budget::{BudgetSolution, PowerBudget};
pub use duty::DutyPlan;
pub use error::ScpgError;
pub use flow::{FlowReport, ScpgFlow};
pub use headers::profile_domain;
pub use lifecycle::{DutyPattern, LifecyclePoint, LifecyclePower, Strategy};
pub use service::{extract_activity, ActivityReport, Query, QueryError, QueryLimits, QueryOutcome};
pub use transform::{ScpgDesign, ScpgOptions, ScpgTransform};
