//! Operating-point power/energy analysis (paper Tables I & II,
//! Figs. 6 & 8).
//!
//! For each clock frequency the model composes one cycle's energy:
//!
//! ```text
//! No-PG:     E = P_leak,total · T            + E_dyn
//! SCPG:      E = P_leak,AON · T              (flops, isolation, control)
//!              + P_leak,gated · t_on          (comb domain while powered)
//!              + overhead(t_off)              (recharge, crowbar, header
//!                                              gate, header off-leak)
//!              + E_dyn + E_iso                (workload + clamp toggles)
//! ```
//!
//! Average power is `E · f`; energy per operation is `E` (one operation
//! per cycle, as in the paper's tables). The three curves converge where
//! the per-cycle overhead outgrows the gated leakage — ≈15 MHz for the
//! paper's multiplier, ≈5 MHz for its M0.

use scpg_analog::{GatingCycle, RailModel};
use scpg_liberty::{Library, PvtCorner};
use scpg_power::{LeakageReport, PowerAnalyzer};
use scpg_sta::TimingReport;
use scpg_units::{Energy, Frequency, Power};

use crate::duty::{DutyPlan, DutyPlanner};
use crate::error::ScpgError;
use crate::headers::profile_domain;
use crate::transform::ScpgDesign;

/// The three configurations of the paper's tables.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Mode {
    /// Baseline design without power gating.
    NoPg,
    /// SCPG at the stock 50 % duty cycle (reduced when timing demands).
    Scpg,
    /// SCPG with the duty cycle raised to the feasible maximum.
    ScpgMax,
}

impl Mode {
    /// The paper's column headings.
    pub fn label(self) -> &'static str {
        match self {
            Mode::NoPg => "No Power Gating",
            Mode::Scpg => "Proposed SCPG",
            Mode::ScpgMax => "Proposed SCPG-Max",
        }
    }

    /// The stable machine-readable key used by the service API and cache
    /// canonicalization (`"no_pg"`, `"scpg"`, `"scpg_max"`).
    pub fn key(self) -> &'static str {
        match self {
            Mode::NoPg => "no_pg",
            Mode::Scpg => "scpg",
            Mode::ScpgMax => "scpg_max",
        }
    }

    /// Parses a [`Mode::key`] string.
    pub fn from_key(key: &str) -> Option<Self> {
        match key {
            "no_pg" => Some(Mode::NoPg),
            "scpg" => Some(Mode::Scpg),
            "scpg_max" => Some(Mode::ScpgMax),
            _ => None,
        }
    }
}

/// One row of a Table I/II-style characterisation.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct OperatingPoint {
    /// Clock frequency.
    pub frequency: Frequency,
    /// Configuration.
    pub mode: Mode,
    /// Clock duty cycle used (0.5 for the baseline).
    pub duty: f64,
    /// Average power.
    pub power: Power,
    /// Energy per operation (one operation per cycle).
    pub energy_per_op: Energy,
    /// `true` when sub-clock gating was actually applied at this point
    /// (timing may force SCPG off near `F_max`).
    pub gated: bool,
}

impl OperatingPoint {
    /// Power saving relative to a baseline point, as a fraction
    /// (0.399 ⇒ the paper's "39.9 %"). Negative when SCPG loses.
    pub fn saving_vs(&self, baseline: &OperatingPoint) -> f64 {
        1.0 - self.power / baseline.power
    }
}

/// The per-design analysis engine.
#[derive(Debug)]
pub struct ScpgAnalysis {
    corner: PvtCorner,
    /// Workload dynamic energy per cycle of the baseline design.
    e_dyn: Energy,
    /// Extra per-gating-cycle switching energy of the clamps + control.
    e_iso: Energy,
    leak_base: LeakageReport,
    leak_scpg: LeakageReport,
    timing: TimingReport,
    rail: RailModel,
    planner: DutyPlanner,
}

impl ScpgAnalysis {
    /// Builds the analysis from a baseline netlist, its SCPG design and
    /// the workload's measured dynamic energy per cycle.
    ///
    /// # Errors
    ///
    /// Propagates netlist and timing failures.
    pub fn new(
        lib: &Library,
        baseline: &scpg_netlist::Netlist,
        design: &ScpgDesign,
        e_dyn_per_cycle: Energy,
        corner: PvtCorner,
    ) -> Result<Self, ScpgError> {
        let _span = scpg_trace::Span::start("analysis_build");
        // SCPG "works concurrently with voltage and frequency scaling"
        // (§II): when analysed at a corner below the characterisation
        // supply, the workload's dynamic energy scales quadratically.
        let vr = corner.voltage.as_v() / lib.char_voltage().as_v();
        let e_dyn_per_cycle = Energy::new(e_dyn_per_cycle.value() * vr * vr);
        let leak_base = PowerAnalyzer::new(baseline, lib, corner)?.leakage(None);
        let leak_scpg = PowerAnalyzer::new(&design.netlist, lib, corner)?.leakage(None);
        let timing = scpg_sta::analyze(&design.netlist, lib, corner.voltage)?;

        let profile = profile_domain(design, lib, corner, e_dyn_per_cycle, timing.t_eval)?;
        let header = lib
            .header(design.header_size)
            .ok_or(ScpgError::NoViableHeader)?
            .clone();
        let rail = RailModel::new(profile, header, corner.voltage);

        // Isolation clamps toggle at most twice per gating cycle; assume
        // half carry a 1 (clamped to 0 and back).
        let iso_cell = lib
            .cell_of_kind(scpg_liberty::CellKind::IsoAnd)
            .expect("kit has isolation cells");
        let e_iso = iso_cell.switching_energy(corner.voltage, lib.wire_cap())
            * design.isolation_cells as f64;

        let planner = DutyPlanner::new(&timing, rail.restore_time(scpg_units::Voltage::ZERO));
        Ok(Self {
            corner,
            e_dyn: e_dyn_per_cycle,
            e_iso,
            leak_base,
            leak_scpg,
            timing,
            rail,
            planner,
        })
    }

    /// The STA report of the SCPG netlist.
    pub fn timing(&self) -> &TimingReport {
        &self.timing
    }

    /// The operating corner.
    pub fn corner(&self) -> PvtCorner {
        self.corner
    }

    /// The rail model in use (exposed for bench reporting).
    pub fn rail(&self) -> &RailModel {
        &self.rail
    }

    /// The baseline design's leakage rollup.
    pub fn baseline_leakage(&self) -> &LeakageReport {
        &self.leak_base
    }

    /// The SCPG design's leakage rollup (includes isolation/control).
    pub fn scpg_leakage(&self) -> &LeakageReport {
        &self.leak_scpg
    }

    /// The measured workload dynamic energy per cycle.
    pub fn workload_energy(&self) -> Energy {
        self.e_dyn
    }

    /// Computes one operating point.
    pub fn operating_point(&self, f: Frequency, mode: Mode) -> OperatingPoint {
        let period = f.period();
        match mode {
            Mode::NoPg => {
                let e_cycle = self.leak_base.total * period + self.e_dyn;
                Self::point(f, mode, 0.5, e_cycle, false)
            }
            Mode::Scpg | Mode::ScpgMax => {
                let plan = match mode {
                    Mode::Scpg => self.planner.plan_scpg(f),
                    _ => self.planner.plan_scpg_max(f),
                };
                match plan {
                    Ok(plan) => self.gated_point(f, mode, &plan),
                    // Timing leaves no room: SCPG falls back to the
                    // override (domain always on) and pays only its
                    // static overheads.
                    Err(_) => {
                        let e_cycle = self.leak_scpg.total * period + self.e_dyn;
                        Self::point(f, mode, 0.5, e_cycle, false)
                    }
                }
            }
        }
    }

    fn gated_point(&self, f: Frequency, mode: Mode, plan: &DutyPlan) -> OperatingPoint {
        let period = f.period();
        let aon_leak = self.leak_scpg.total - self.leak_scpg.gated_domain;
        let gating = GatingCycle::new(&self.rail).analyze(plan.t_off);
        let e_cycle = aon_leak * period
            + self.leak_scpg.gated_domain * plan.t_on
            + gating.overhead()
            + self.e_dyn
            + self.e_iso;
        Self::point(f, mode, plan.duty, e_cycle, true)
    }

    fn point(f: Frequency, mode: Mode, duty: f64, e_cycle: Energy, gated: bool) -> OperatingPoint {
        OperatingPoint {
            frequency: f,
            mode,
            duty,
            power: e_cycle * f,
            energy_per_op: e_cycle,
            gated,
        }
    }

    /// Sweeps a frequency list in one mode. Points are independent, so
    /// the sweep fans out across the [`scpg_exec`] pool with the result
    /// order matching `frequencies`.
    pub fn sweep(&self, frequencies: &[Frequency], mode: Mode) -> Vec<OperatingPoint> {
        scpg_exec::par_sweep(frequencies, |&f| self.operating_point(f, mode))
    }

    /// A full Table I/II-style characterisation: for each frequency, the
    /// three modes plus savings. Rows are evaluated in parallel.
    pub fn table(&self, frequencies: &[Frequency]) -> Vec<TableRow> {
        scpg_exec::par_sweep(frequencies, |&f| {
            let no_pg = self.operating_point(f, Mode::NoPg);
            let scpg = self.operating_point(f, Mode::Scpg);
            let scpg_max = self.operating_point(f, Mode::ScpgMax);
            TableRow {
                saving_scpg: scpg.saving_vs(&no_pg),
                saving_max: scpg_max.saving_vs(&no_pg),
                no_pg,
                scpg,
                scpg_max,
            }
        })
    }

    /// The frequency where the SCPG curve crosses the baseline — beyond
    /// it gating loses (paper: ≈15 MHz multiplier, ≈5 MHz M0). Returns
    /// `None` if no crossing exists within `[lo, hi]`.
    ///
    /// Bisection stops once the bracket tightens to a relative width of
    /// [`Self::CONVERGENCE_REL_TOL`] (far below any physical meaning of
    /// the crossover), with a hard iteration cap as a safety net.
    pub fn convergence_frequency(
        &self,
        mode: Mode,
        lo: Frequency,
        hi: Frequency,
    ) -> Option<Frequency> {
        let gain = |f: Frequency| {
            let base = self.operating_point(f, Mode::NoPg);
            let s = self.operating_point(f, mode);
            base.power.value() - s.power.value()
        };
        let (mut a, mut b) = (lo.value(), hi.value());
        let (ga, gb) = (gain(lo), gain(hi));
        if ga <= 0.0 || gb >= 0.0 {
            return None;
        }
        for _ in 0..80 {
            if b - a <= Self::CONVERGENCE_REL_TOL * b {
                break;
            }
            let mid = (a * b).sqrt(); // geometric: frequency spans decades
            if gain(Frequency::new(mid)) > 0.0 {
                a = mid;
            } else {
                b = mid;
            }
        }
        Some(Frequency::new((a * b).sqrt()))
    }

    /// Relative bracket width at which [`Self::convergence_frequency`]
    /// declares the crossover found. `1e-9` keeps the answer identical to
    /// exhaustive bisection at f64 print precision while cutting the
    /// typical iteration count roughly in half.
    pub const CONVERGENCE_REL_TOL: f64 = 1e-9;
}

/// One frequency row of the three-mode characterisation.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct TableRow {
    /// Baseline.
    pub no_pg: OperatingPoint,
    /// 50 %-duty SCPG.
    pub scpg: OperatingPoint,
    /// Max-duty SCPG.
    pub scpg_max: OperatingPoint,
    /// Fractional power saving of SCPG vs. baseline.
    pub saving_scpg: f64,
    /// Fractional power saving of SCPG-Max vs. baseline.
    pub saving_max: f64,
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::transform::{ScpgOptions, ScpgTransform};
    use scpg_circuits::generate_multiplier;
    use scpg_liberty::Library;

    fn analysis() -> ScpgAnalysis {
        let lib = Library::ninety_nm();
        let (nl, _) = generate_multiplier(&lib, 16);
        let design = ScpgTransform::new(&lib)
            .apply(&nl, "clk", &ScpgOptions::default())
            .unwrap();
        ScpgAnalysis::new(
            &lib,
            &nl,
            &design,
            Energy::from_pj(2.3),
            PvtCorner::default(),
        )
        .unwrap()
    }

    #[test]
    fn low_frequency_savings_match_paper_shape() {
        let a = analysis();
        let f = Frequency::from_khz(10.0);
        let base = a.operating_point(f, Mode::NoPg);
        let scpg = a.operating_point(f, Mode::Scpg);
        let max = a.operating_point(f, Mode::ScpgMax);
        // Paper Table I at 10 kHz: 39.9 % (SCPG) and 80.2 % (SCPG-Max).
        let s1 = scpg.saving_vs(&base);
        let s2 = max.saving_vs(&base);
        assert!((0.25..0.50).contains(&s1), "SCPG saving {s1:.3}");
        assert!((0.60..0.92).contains(&s2), "SCPG-Max saving {s2:.3}");
        assert!(s2 > s1);
    }

    #[test]
    fn savings_shrink_with_frequency() {
        let a = analysis();
        let savings: Vec<f64> = [0.01, 0.1, 1.0, 5.0]
            .iter()
            .map(|&mhz| {
                let f = Frequency::from_mhz(mhz);
                let base = a.operating_point(f, Mode::NoPg);
                a.operating_point(f, Mode::Scpg).saving_vs(&base)
            })
            .collect();
        for w in savings.windows(2) {
            assert!(w[1] < w[0], "savings must fall with frequency: {savings:?}");
        }
    }

    #[test]
    fn curves_converge_in_the_mhz_decade() {
        let a = analysis();
        let conv = a
            .convergence_frequency(
                Mode::Scpg,
                Frequency::from_khz(10.0),
                Frequency::from_mhz(80.0),
            )
            .expect("SCPG must stop paying somewhere");
        // Paper: ≈15 MHz for the multiplier. Same decade here.
        assert!(
            (2.0..40.0).contains(&conv.as_mhz()),
            "convergence at {conv}"
        );
    }

    #[test]
    fn energy_per_op_decreases_with_frequency() {
        let a = analysis();
        let e_slow = a
            .operating_point(Frequency::from_khz(10.0), Mode::NoPg)
            .energy_per_op;
        let e_fast = a
            .operating_point(Frequency::from_mhz(10.0), Mode::NoPg)
            .energy_per_op;
        assert!(
            e_slow.value() > 50.0 * e_fast.value(),
            "leakage dominates slow operation: {e_slow} vs {e_fast}"
        );
    }

    #[test]
    fn scpg_is_more_energy_efficient_at_low_f() {
        let a = analysis();
        let f = Frequency::from_khz(100.0);
        let base = a.operating_point(f, Mode::NoPg);
        let max = a.operating_point(f, Mode::ScpgMax);
        let gain = base.energy_per_op / max.energy_per_op;
        // Paper Table I at 100 kHz: 294.4 pJ → 63.25 pJ (≈4.7×).
        assert!(gain > 2.0, "energy gain {gain:.2}×");
    }

    #[test]
    fn table_rows_are_consistent() {
        let a = analysis();
        let rows = a.table(&[Frequency::from_khz(10.0), Frequency::from_mhz(1.0)]);
        assert_eq!(rows.len(), 2);
        for row in rows {
            assert!((row.saving_scpg - row.scpg.saving_vs(&row.no_pg)).abs() < 1e-12);
            let e_expect = row.no_pg.power / row.no_pg.frequency;
            assert!((row.no_pg.energy_per_op.value() - e_expect.value()).abs() < 1e-18);
        }
    }

    #[test]
    fn voltage_scaling_composes_with_gating() {
        // §II: SCPG works concurrently with voltage + frequency scaling.
        // At 0.5 V the same design draws less power in every mode, still
        // saves with gating, and dynamic energy scales ≈ V².
        let lib = Library::ninety_nm();
        let (nl, _) = generate_multiplier(&lib, 16);
        let design = ScpgTransform::new(&lib)
            .apply(&nl, "clk", &ScpgOptions::default())
            .unwrap();
        let e_dyn = Energy::from_pj(2.3);
        let a06 = ScpgAnalysis::new(&lib, &nl, &design, e_dyn, PvtCorner::default()).unwrap();
        let a05 = ScpgAnalysis::new(
            &lib,
            &nl,
            &design,
            e_dyn,
            PvtCorner::at_voltage(scpg_units::Voltage::from_mv(500.0)),
        )
        .unwrap();
        let f = Frequency::from_khz(100.0);
        for mode in [Mode::NoPg, Mode::Scpg, Mode::ScpgMax] {
            let p06 = a06.operating_point(f, mode).power;
            let p05 = a05.operating_point(f, mode).power;
            assert!(
                p05.value() < p06.value(),
                "{mode:?} at 0.5 V must be cheaper"
            );
        }
        let base = a05.operating_point(f, Mode::NoPg);
        let max = a05.operating_point(f, Mode::ScpgMax);
        assert!(
            max.saving_vs(&base) > 0.5,
            "gating still saves at 0.5 V: {:.3}",
            max.saving_vs(&base)
        );
        // Dynamic energy scaling check via the stored workload energy.
        let r = a05.workload_energy() / a06.workload_energy();
        assert!(
            (r - (0.5f64 / 0.6).powi(2) / 1.0).abs() < 1e-9,
            "V² scaling, got {r}"
        );
    }

    #[test]
    fn infeasible_timing_falls_back_to_ungated() {
        let a = analysis();
        // Far beyond F_max of the multiplier's comb path.
        let f = Frequency::from_mhz(60.0);
        let p = a.operating_point(f, Mode::Scpg);
        assert!(!p.gated, "no gating window at {f}");
        // And it costs slightly more than the baseline (extra cells).
        let base = a.operating_point(f, Mode::NoPg);
        assert!(p.power.value() >= base.power.value());
    }
}
