//! Duty-cycle planning (paper §II).
//!
//! Under SCPG the combinational domain is off while the clock is high, so
//! the low phase must fit rail restore (`T_PGStart`), evaluation
//! (`T_eval`) and setup. The paper's two configurations:
//!
//! * **SCPG** — the stock 50 % clock, applicable while
//!   `T_eval < T_clk/2`; when `T_clk/2 < T_eval < T_clk` the duty cycle
//!   is *decreased* so evaluation still fits;
//! * **SCPG-Max** — the duty cycle is *raised* until the low phase only
//!   just fits the required work, "capitalising on all the logic's idle
//!   time".

use scpg_sta::TimingReport;
use scpg_units::{Frequency, Time};

use crate::error::ScpgError;

/// A planned clock shape for one operating frequency.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct DutyPlan {
    /// The clock frequency the plan is for.
    pub frequency: Frequency,
    /// High fraction of the clock (the gated fraction).
    pub duty: f64,
    /// Time the header is off each cycle (`duty · T`).
    pub t_off: Time,
    /// Time the domain is powered each cycle.
    pub t_on: Time,
}

/// Plans duty cycles against a design's timing and rail-restore needs.
#[derive(Debug, Clone, Copy)]
pub struct DutyPlanner {
    /// Evaluation + setup requirement from STA.
    pub t_eval_setup: Time,
    /// Rail restore time (isolation hold after the falling edge).
    pub t_restore: Time,
    /// Extra safety margin folded into the low phase.
    pub margin: Time,
    /// Ceiling on the duty cycle (gate drivers need a real pulse).
    pub max_duty: f64,
    /// Floor below which gating is pointless.
    pub min_duty: f64,
}

impl DutyPlanner {
    /// Builds a planner from an STA report and a restore time.
    pub fn new(timing: &TimingReport, t_restore: Time) -> Self {
        Self {
            t_eval_setup: timing.min_period,
            t_restore,
            margin: Time::from_ns(1.0),
            max_duty: 0.95,
            min_duty: 0.05,
        }
    }

    /// Low-phase time that must remain available.
    fn required_low(&self) -> Time {
        self.t_eval_setup + self.t_restore + self.margin
    }

    /// The 50 %-clock plan ("Proposed SCPG"). If half a period cannot fit
    /// the required work, the duty cycle is decreased per §II.
    ///
    /// # Errors
    ///
    /// Returns [`ScpgError::InfeasibleTiming`] when even the minimum duty
    /// cycle leaves too little low-phase time (the frequency is simply
    /// too close to `F_max` for any gating).
    pub fn plan_scpg(&self, f: Frequency) -> Result<DutyPlan, ScpgError> {
        let period = f.period();
        let avail = self.avail_duty(period)?;
        let duty = avail.min(0.5);
        Ok(self.plan_at(f, duty))
    }

    /// The raised-duty plan ("Proposed SCPG-Max"): gate everything except
    /// the required low phase.
    ///
    /// # Errors
    ///
    /// Returns [`ScpgError::InfeasibleTiming`] as for
    /// [`DutyPlanner::plan_scpg`].
    pub fn plan_scpg_max(&self, f: Frequency) -> Result<DutyPlan, ScpgError> {
        let period = f.period();
        let duty = self.avail_duty(period)?;
        Ok(self.plan_at(f, duty))
    }

    /// Largest feasible duty at the given period, capped to `max_duty`.
    fn avail_duty(&self, period: Time) -> Result<f64, ScpgError> {
        let avail = 1.0 - self.required_low() / period;
        if avail < self.min_duty {
            return Err(ScpgError::InfeasibleTiming {
                detail: format!(
                    "required low phase {} exceeds {:.0} % of the {} period",
                    self.required_low(),
                    (1.0 - self.min_duty) * 100.0,
                    period
                ),
            });
        }
        Ok(avail.min(self.max_duty))
    }

    fn plan_at(&self, f: Frequency, duty: f64) -> DutyPlan {
        let period = f.period();
        let t_off = period * duty;
        DutyPlan {
            frequency: f,
            duty,
            t_off,
            t_on: period - t_off,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use scpg_units::Voltage;

    fn planner(eval_ns: f64, restore_ns: f64) -> DutyPlanner {
        DutyPlanner {
            t_eval_setup: Time::from_ns(eval_ns),
            t_restore: Time::from_ns(restore_ns),
            margin: Time::from_ns(1.0),
            max_duty: 0.95,
            min_duty: 0.05,
        }
    }

    #[test]
    fn slow_clock_gets_half_and_max_duty() {
        // 10 kHz on a 16 ns datapath: nearly all of the cycle is idle.
        let p = planner(16.0, 1.0);
        let f = Frequency::from_khz(10.0);
        let scpg = p.plan_scpg(f).unwrap();
        assert!((scpg.duty - 0.5).abs() < 1e-9);
        let max = p.plan_scpg_max(f).unwrap();
        assert!((max.duty - 0.95).abs() < 1e-9, "capped at max_duty");
        assert!(max.t_off.value() > scpg.t_off.value());
    }

    #[test]
    fn near_fmax_duty_decreases_below_half() {
        // Period 25 ns, required low = 16 + 1 + 1 = 18 ns ⇒ duty ≤ 28 %.
        let p = planner(16.0, 1.0);
        let f = Frequency::from_mhz(40.0);
        let scpg = p.plan_scpg(f).unwrap();
        assert!(scpg.duty < 0.5, "duty reduced per §II: {}", scpg.duty);
        assert!((scpg.duty - 0.28).abs() < 0.01);
        // SCPG-Max coincides with SCPG here: no spare idle time.
        let max = p.plan_scpg_max(f).unwrap();
        assert!((max.duty - scpg.duty).abs() < 1e-9);
    }

    #[test]
    fn too_fast_is_infeasible() {
        let p = planner(16.0, 1.0);
        // Period 19 ns < required 18 ns + min gating.
        let err = p.plan_scpg(Frequency::from_mhz(53.0)).unwrap_err();
        assert!(matches!(err, ScpgError::InfeasibleTiming { .. }));
    }

    #[test]
    fn plans_partition_the_period() {
        let p = planner(16.0, 1.0);
        let f = Frequency::from_mhz(2.0);
        for plan in [p.plan_scpg(f).unwrap(), p.plan_scpg_max(f).unwrap()] {
            let total = plan.t_off + plan.t_on;
            assert!((total.as_ns() - f.period().as_ns()).abs() < 1e-9);
        }
    }

    #[test]
    fn planner_from_sta_report() {
        let lib = scpg_liberty::Library::ninety_nm();
        let mut nl = scpg_netlist::Netlist::new("t");
        let a = nl.add_input("a");
        let y = nl.add_output("y");
        nl.add_instance("u", "INV_X1", &[a, y]).unwrap();
        let report = scpg_sta::analyze(&nl, &lib, Voltage::from_mv(600.0)).unwrap();
        let p = DutyPlanner::new(&report, Time::from_ns(1.0));
        assert!(p.t_eval_setup.value() > 0.0);
        assert!(p.plan_scpg(Frequency::from_mhz(1.0)).is_ok());
    }
}
