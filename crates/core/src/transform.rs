//! The SCPG netlist transform (paper Figs. 2, 3, 5).
//!
//! Steps, matching the two additions the paper makes to a standard
//! power-gating flow:
//!
//! 1. **Separate combinational and sequential logic** — every pure-logic
//!    cell is retagged into the [`Domain::Gated`] power domain; flops,
//!    latches, ties and the new SCPG control cells stay
//!    [`Domain::AlwaysOn`].
//! 2. **Combine the custom isolation circuitry** — a high-V_t header is
//!    inserted whose `SLEEP` pin is driven by `clock AND override_n`
//!    (active-low override forces the domain on); the Fig. 3 adaptive
//!    control cell senses the clock and the virtual rail and produces the
//!    isolation enable; every net that crosses from the gated domain into
//!    the always-on domain (flop data pins, output ports) gets an
//!    AND-type clamp.
//!
//! No retention registers and no power-gating controller are needed —
//! that is the point of the technique.
//!
//! [`Domain::Gated`]: scpg_netlist::Domain::Gated
//! [`Domain::AlwaysOn`]: scpg_netlist::Domain::AlwaysOn

use scpg_liberty::{CellKind, HeaderSize, Library};
use scpg_netlist::{Domain, NetId, Netlist, PortDirection};

use crate::error::ScpgError;

/// Transform options.
#[derive(Debug, Clone)]
pub struct ScpgOptions {
    /// Sleep-header size. The flow normally picks this via
    /// [`crate::headers`]; the default X2 matches the paper's multiplier.
    pub header_size: HeaderSize,
}

impl Default for ScpgOptions {
    fn default() -> Self {
        Self {
            header_size: HeaderSize::X2,
        }
    }
}

/// The transformed design plus handles to the SCPG control network.
#[derive(Debug, Clone)]
pub struct ScpgDesign {
    /// The rewritten netlist (gated domain tagged, isolation inserted).
    pub netlist: Netlist,
    /// The clock net driving both the flops and the power gate.
    pub clk: NetId,
    /// Active-low override input: drive 0 to force the domain on
    /// (disabling SCPG for peak performance, §IV).
    pub override_n: NetId,
    /// The header's SLEEP control net (`clk AND override_n`).
    pub sleep: NetId,
    /// The virtual rail net.
    pub vddv: NetId,
    /// The isolation enable produced by the Fig. 3 control circuit.
    pub iso: NetId,
    /// The header size in use.
    pub header_size: HeaderSize,
    /// Number of isolation clamps inserted.
    pub isolation_cells: usize,
}

/// Applies the SCPG transform to gate-level netlists.
#[derive(Debug)]
pub struct ScpgTransform<'lib> {
    lib: &'lib Library,
}

/// Cell kinds that belong to the power-gated combinational cloud.
fn is_gateable(kind: CellKind) -> bool {
    kind.is_combinational()
        && !matches!(
            kind,
            CellKind::TieHi
                | CellKind::TieLo
                | CellKind::IsoAnd
                | CellKind::IsoOr
                | CellKind::IsoCtl
        )
}

impl<'lib> ScpgTransform<'lib> {
    /// Binds the transform to a library.
    pub fn new(lib: &'lib Library) -> Self {
        Self { lib }
    }

    /// Rewrites `nl` into an SCPG design, using the net named
    /// `clock_name` as the power-gating control.
    ///
    /// # Errors
    ///
    /// * [`ScpgError::NoSuchClock`] — no net has the given name.
    /// * [`ScpgError::NothingToGate`] — the design has no logic cells.
    /// * [`ScpgError::Netlist`] — the input or rewritten netlist fails
    ///   validation.
    pub fn apply(
        &self,
        nl: &Netlist,
        clock_name: &str,
        options: &ScpgOptions,
    ) -> Result<ScpgDesign, ScpgError> {
        nl.validate(self.lib)?;
        let mut out = nl.clone();
        let clk = out
            .net_by_name(clock_name)
            .ok_or_else(|| ScpgError::NoSuchClock {
                name: clock_name.to_string(),
            })?;

        // Step 1: domain separation.
        let gated: Vec<_> = out
            .iter_instances()
            .filter(|(_, inst)| {
                self.lib
                    .cell(inst.cell())
                    .is_some_and(|c| is_gateable(c.kind()))
            })
            .map(|(id, _)| id)
            .collect();
        if gated.is_empty() {
            return Err(ScpgError::NothingToGate);
        }
        for id in gated {
            out.set_domain(id, Domain::Gated);
        }

        // Step 2: control network. All control cells are always-on.
        let override_n = out.add_input("scpg_override_n");
        let sleep = out.add_net("scpg_sleep");
        let vddv = out.add_net("scpg_vddv");
        let iso = out.add_net("scpg_iso");
        let and2 = self.cell_name(CellKind::And2);
        out.add_instance("scpg_sleep_and", and2, &[clk, override_n, sleep])?;
        let header = self
            .lib
            .header(options.header_size)
            .ok_or(ScpgError::NoViableHeader)?;
        let _ = header; // existence check; the cell below carries the data
        out.add_instance(
            "scpg_header",
            options.header_size.cell_name(),
            &[sleep, vddv],
        )?;
        let isoctl = self.cell_name(CellKind::IsoCtl);
        out.add_instance("scpg_isoctl", isoctl, &[clk, vddv, iso])?;

        // Isolation insertion on every gated→always-on crossing.
        let iso_cell = self.cell_name(CellKind::IsoAnd).to_string();
        let conn = out.connectivity(self.lib)?;
        let mut planned: Vec<(NetId, bool, Vec<scpg_netlist::PinRef>)> = Vec::new();
        for (idx, _net) in out.nets().iter().enumerate() {
            let net = NetId::from_index(idx);
            let Some(driver) = conn.driver(net) else {
                continue;
            };
            if out.instance(driver.inst).domain() != Domain::Gated {
                continue;
            }
            let aon_sinks: Vec<_> = conn
                .loads(net)
                .iter()
                .copied()
                .filter(|pin| out.instance(pin.inst).domain() == Domain::AlwaysOn)
                .collect();
            let drives_port = out
                .ports()
                .iter()
                .any(|p| p.net == net && p.direction == PortDirection::Output);
            if drives_port || !aon_sinks.is_empty() {
                planned.push((net, drives_port, aon_sinks));
            }
        }

        let mut iso_count = 0usize;
        for (net, drives_port, aon_sinks) in planned {
            let inst_name = format!("scpg_iso_{iso_count}");
            iso_count += 1;
            if drives_port {
                // Keep the port on its named net: retarget the gated
                // driver to a fresh net and clamp into the original.
                let drv = out
                    .connectivity(self.lib)?
                    .driver(net)
                    .expect("driver known from planning");
                let inner = out.add_fresh_net();
                out.rewire_pin(drv.inst, drv.pin, inner);
                // Everything that used to read the net now reads the
                // clamped version automatically (the net kept its id).
                out.add_instance(inst_name, iso_cell.clone(), &[inner, iso, net])?;
            } else {
                let clamped = out.add_fresh_net();
                out.add_instance(inst_name, iso_cell.clone(), &[net, iso, clamped])?;
                for pin in aon_sinks {
                    out.rewire_pin(pin.inst, pin.pin, clamped);
                }
            }
        }

        out.validate(self.lib)?;
        Ok(ScpgDesign {
            netlist: out,
            clk,
            override_n,
            sleep,
            vddv,
            iso,
            header_size: options.header_size,
            isolation_cells: iso_count,
        })
    }

    fn cell_name(&self, kind: CellKind) -> &str {
        self.lib
            .cell_of_kind(kind)
            .unwrap_or_else(|| panic!("library lacks a {kind:?} cell"))
            .name()
    }
}

impl ScpgDesign {
    /// Area overhead of the SCPG design relative to the baseline, as a
    /// fraction (paper §III: +3.9 % multiplier, +6.6 % M0).
    pub fn area_overhead(&self, baseline: &Netlist, lib: &Library) -> f64 {
        self.netlist
            .stats(lib)
            .area_overhead_vs(&baseline.stats(lib))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use scpg_circuits::generate_multiplier;
    use scpg_liberty::{Library, Logic};
    use scpg_sim::{SimConfig, Simulator};

    fn lib() -> Library {
        Library::ninety_nm()
    }

    #[test]
    fn splits_domains_and_counts_isolation() {
        let lib = lib();
        let (nl, _) = generate_multiplier(&lib, 16);
        let scpg = ScpgTransform::new(&lib)
            .apply(&nl, "clk", &ScpgOptions::default())
            .unwrap();
        let stats = scpg.netlist.stats(&lib);
        assert!(stats.gated.combinational > 400, "array is gated");
        assert_eq!(stats.gated.sequential, 0, "flops stay always-on");
        assert!(stats.always_on.sequential == 64);
        // One clamp per product bit into the output registers plus one
        // per output port.
        assert!(
            (60..=70).contains(&scpg.isolation_cells),
            "isolation cells = {}",
            scpg.isolation_cells
        );
    }

    #[test]
    fn area_overhead_matches_paper_band() {
        let lib = lib();
        let (nl, _) = generate_multiplier(&lib, 16);
        let scpg = ScpgTransform::new(&lib)
            .apply(&nl, "clk", &ScpgOptions::default())
            .unwrap();
        let ov = scpg.area_overhead(&nl, &lib);
        // Paper: +3.9 % for the multiplier. Same class here.
        assert!(
            (0.02..0.08).contains(&ov),
            "area overhead {:.1} %",
            ov * 100.0
        );
    }

    #[test]
    fn missing_clock_is_reported() {
        let lib = lib();
        let (nl, _) = generate_multiplier(&lib, 4);
        let err = ScpgTransform::new(&lib)
            .apply(&nl, "no_such_clk", &ScpgOptions::default())
            .unwrap_err();
        assert!(matches!(err, ScpgError::NoSuchClock { .. }));
    }

    #[test]
    fn flop_only_design_has_nothing_to_gate() {
        let lib = lib();
        let mut nl = Netlist::new("ff");
        let clk = nl.add_input("clk");
        let d = nl.add_input("d");
        let q = nl.add_output("q");
        nl.add_instance("ff", "DFF_X1", &[d, clk, q]).unwrap();
        let err = ScpgTransform::new(&lib)
            .apply(&nl, "clk", &ScpgOptions::default())
            .unwrap_err();
        assert!(matches!(err, ScpgError::NothingToGate));
    }

    /// The key functional property: with the clock toggling (so the
    /// domain is power gated every single cycle), the SCPG multiplier
    /// still multiplies — isolation keeps every X inside the gated cloud.
    #[test]
    fn scpg_multiplier_still_multiplies() {
        let lib = lib();
        let (nl, ports) = generate_multiplier(&lib, 8);
        let scpg = ScpgTransform::new(&lib)
            .apply(&nl, "clk", &ScpgOptions::default())
            .unwrap();

        let mut sim = Simulator::new(&scpg.netlist, &lib, SimConfig::default()).unwrap();
        const PERIOD: u64 = 1_000_000; // 1 µs: plenty of eval room
        sim.set_input(scpg.override_n, Logic::One); // gating enabled
        sim.set_input(scpg.clk, Logic::Zero);
        sim.set_input_by_name("rst_n", Logic::Zero);

        let drive = |sim: &mut Simulator<'_>, w: &scpg_synth::Word, v: u64| {
            for (i, &bit) in w.bits().iter().enumerate() {
                sim.set_input(bit, Logic::from_bool((v >> i) & 1 == 1));
            }
        };
        let read = |sim: &Simulator<'_>, w: &scpg_synth::Word| -> Option<u64> {
            let mut v = 0u64;
            for (i, &bit) in w.bits().iter().enumerate() {
                match sim.value(bit).to_bool() {
                    Some(true) => v |= 1 << i,
                    Some(false) => {}
                    None => return None,
                }
            }
            Some(v)
        };

        let cycle = |sim: &mut Simulator<'_>, n: u64| {
            let t0 = n * PERIOD;
            sim.run_until(t0);
            sim.set_input(scpg.clk, Logic::One);
            sim.run_until(t0 + PERIOD / 2);
            sim.set_input(scpg.clk, Logic::Zero);
            sim.run_until(t0 + PERIOD);
        };

        // Reset, then release.
        cycle(&mut sim, 0);
        cycle(&mut sim, 1);
        sim.set_input_by_name("rst_n", Logic::One);
        drive(&mut sim, &ports.a, 23);
        drive(&mut sim, &ports.b, 19);
        for n in 2..6 {
            cycle(&mut sim, n);
        }
        assert_eq!(read(&sim, &ports.product), Some(23 * 19), "SCPG product");

        drive(&mut sim, &ports.a, 200);
        drive(&mut sim, &ports.b, 131);
        for n in 6..9 {
            cycle(&mut sim, n);
        }
        assert_eq!(read(&sim, &ports.product), Some(200 * 131));
    }

    /// A gated net feeding BOTH an output port and an always-on flop gets
    /// one clamp that serves every always-on reader.
    #[test]
    fn shared_crossing_net_is_clamped_once_for_all_sinks() {
        let lib = lib();
        let mut nl = Netlist::new("t");
        let clk = nl.add_input("clk");
        let a = nl.add_input("a");
        let y = nl.add_output("y"); // port AND flop D share this net
        let q = nl.add_fresh_net();
        nl.add_instance("g", "INV_X1", &[a, y]).unwrap();
        nl.add_instance("ff", "DFF_X1", &[y, clk, q]).unwrap();
        let design = ScpgTransform::new(&lib)
            .apply(&nl, "clk", &ScpgOptions::default())
            .unwrap();
        assert_eq!(design.isolation_cells, 1, "one clamp covers both sinks");
        design.netlist.validate(&lib).unwrap();

        // Functional check: while gated, both the port and the flop input
        // read the clamp, never an X.
        let mut sim = Simulator::new(&design.netlist, &lib, SimConfig::default()).unwrap();
        sim.set_input(design.override_n, Logic::One);
        sim.set_input(a, Logic::Zero);
        sim.set_input(clk, Logic::Zero);
        sim.run_until_quiet(10_000_000);
        assert_eq!(sim.value(y), Logic::One);
        sim.set_input(clk, Logic::One);
        sim.run_until(11_000_000);
        assert_eq!(sim.value(y), Logic::Zero, "clamped during gating, not X");
        sim.set_input(clk, Logic::Zero);
        sim.run_until(12_000_000);
        assert_eq!(sim.value(y), Logic::One, "restored after the low phase");
    }

    /// The transform must not touch designs whose combinational outputs
    /// never cross to the always-on side beyond what isolation covers —
    /// i.e. every gated→AON crossing gets a clamp, none are missed.
    #[test]
    fn every_gated_to_aon_crossing_is_isolated() {
        let lib = lib();
        let (nl, _) = generate_multiplier(&lib, 8);
        let design = ScpgTransform::new(&lib)
            .apply(&nl, "clk", &ScpgOptions::default())
            .unwrap();
        let out = &design.netlist;
        let conn = out.connectivity(&lib).unwrap();
        for (idx, _) in out.nets().iter().enumerate() {
            let net = scpg_netlist::NetId::from_index(idx);
            let Some(driver) = conn.driver(net) else {
                continue;
            };
            if out.instance(driver.inst).domain() != Domain::Gated {
                continue;
            }
            for pin in conn.loads(net) {
                let sink = out.instance(pin.inst);
                if sink.domain() == Domain::AlwaysOn {
                    let kind = lib.expect_cell(sink.cell()).kind();
                    assert!(
                        matches!(
                            kind,
                            scpg_liberty::CellKind::IsoAnd | scpg_liberty::CellKind::IsoOr
                        ),
                        "gated net `{}` reaches always-on cell `{}` ({kind:?}) \
                         without isolation",
                        out.net(net).name(),
                        sink.name()
                    );
                }
            }
            // Output ports on gated-driven nets are only legal if the
            // driver is itself an isolation cell.
            for p in out.ports() {
                if p.net == net && p.direction == scpg_netlist::PortDirection::Output {
                    let kind = lib.expect_cell(out.instance(driver.inst).cell()).kind();
                    assert!(
                        matches!(
                            kind,
                            scpg_liberty::CellKind::IsoAnd | scpg_liberty::CellKind::IsoOr
                        ),
                        "output port `{}` driven by unclamped gated logic",
                        p.name
                    );
                }
            }
        }
    }

    /// With override asserted (low) the header stays on and the virtual
    /// rail never collapses.
    #[test]
    fn override_disables_gating() {
        let lib = lib();
        let (nl, _ports) = generate_multiplier(&lib, 4);
        let scpg = ScpgTransform::new(&lib)
            .apply(&nl, "clk", &ScpgOptions::default())
            .unwrap();
        let mut sim = Simulator::new(&scpg.netlist, &lib, SimConfig::default()).unwrap();
        sim.set_input(scpg.override_n, Logic::Zero); // force on
        sim.set_input(scpg.clk, Logic::Zero);
        sim.run_until_quiet(10_000_000);
        for n in 0..4u64 {
            let t0 = (n + 1) * 1_000_000;
            sim.set_input(scpg.clk, Logic::One);
            sim.run_until(t0 + 500_000);
            assert_eq!(sim.value(scpg.vddv), Logic::One, "rail on during clk high");
            sim.set_input(scpg.clk, Logic::Zero);
            sim.run_until(t0 + 1_000_000);
        }
    }

    /// With gating enabled the rail visibly collapses during the high
    /// phase and restores during the low phase.
    #[test]
    fn rail_toggles_with_the_clock() {
        let lib = lib();
        let (nl, _ports) = generate_multiplier(&lib, 4);
        let scpg = ScpgTransform::new(&lib)
            .apply(&nl, "clk", &ScpgOptions::default())
            .unwrap();
        let mut sim = Simulator::new(&scpg.netlist, &lib, SimConfig::default()).unwrap();
        sim.set_input(scpg.override_n, Logic::One);
        sim.set_input(scpg.clk, Logic::Zero);
        sim.run_until_quiet(10_000_000);

        sim.set_input(scpg.clk, Logic::One);
        sim.run_until(11_000_000);
        assert_eq!(
            sim.value(scpg.vddv),
            Logic::X,
            "rail collapsed while clk high"
        );
        assert_eq!(sim.value(scpg.iso), Logic::One, "isolation asserted");

        sim.set_input(scpg.clk, Logic::Zero);
        sim.run_until(12_000_000);
        assert_eq!(
            sim.value(scpg.vddv),
            Logic::One,
            "rail restored while clk low"
        );
        assert_eq!(sim.value(scpg.iso), Logic::Zero, "isolation released");
    }
}
