//! Request → analysis plumbing for the serving layer.
//!
//! The HTTP front end (`scpg-serve`) should only translate wire formats;
//! everything that decides *what a request means* — which analysis entry
//! point it maps to, what inputs are admissible, what the answer is —
//! lives here, against plain domain types, so it is testable without a
//! socket and reusable by future front ends (CLI batchers, gRPC, …).
//!
//! A [`Query`] is validated against a [`Default`]-able [`QueryLimits`]
//! admission policy and then executed against a shared
//! [`ScpgAnalysis`]; the result is exactly what the underlying
//! `analysis::sweep` / `analysis::table` / `budget::headline` calls
//! return, so serving adds no numeric wobble: a served response is
//! bit-identical to a direct library call.

use scpg_liberty::{Library, PvtCorner};
use scpg_netlist::Netlist;
use scpg_units::{Energy, Frequency, Power};

use crate::analysis::{Mode, OperatingPoint, ScpgAnalysis, TableRow};
use crate::budget::{Headline, PowerBudget};
use crate::transform::{ScpgOptions, ScpgTransform};

/// Admission limits for service queries. The defaults are generous for a
/// loopback analysis service while still bounding the work one request
/// can demand.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct QueryLimits {
    /// Maximum frequency points per sweep request.
    pub max_sweep_points: usize,
    /// Maximum frequency rows per table request (each row costs three
    /// operating points).
    pub max_table_points: usize,
    /// Maximum Monte-Carlo dies per variation request (each die re-runs
    /// a full voltage sweep).
    pub max_variation_samples: usize,
    /// Largest admissible multiplier operand width.
    pub max_multiplier_bits: usize,
    /// Longest admissible inverter-chain demo design.
    pub max_chain_length: usize,
    /// Largest admissible uploaded-netlist gate count (instances).
    pub max_netlist_gates: usize,
    /// Largest admissible uploaded-netlist source size in bytes.
    pub max_netlist_bytes: usize,
    /// Admissible frequency band for any request.
    pub min_frequency: Frequency,
    /// See [`QueryLimits::min_frequency`].
    pub max_frequency: Frequency,
}

impl Default for QueryLimits {
    fn default() -> Self {
        Self {
            max_sweep_points: 4096,
            max_table_points: 1024,
            max_variation_samples: 64,
            max_multiplier_bits: 32,
            max_chain_length: 4096,
            max_netlist_gates: 20_000,
            max_netlist_bytes: 512 * 1024,
            min_frequency: Frequency::from_hz(1.0),
            max_frequency: Frequency::from_mhz(1000.0),
        }
    }
}

/// A validated-shape analysis request, decoupled from any wire format.
#[derive(Debug, Clone, PartialEq)]
pub enum Query {
    /// `analysis::sweep`: operating points for a frequency list in one
    /// mode.
    Sweep {
        /// The frequencies to evaluate.
        frequencies: Vec<Frequency>,
        /// The configuration to evaluate them in.
        mode: Mode,
    },
    /// `analysis::table`: the three-mode characterisation per frequency.
    Table {
        /// The frequencies to evaluate.
        frequencies: Vec<Frequency>,
    },
    /// `budget::headline`: the three-mode power-budget comparison.
    Headline {
        /// The power ceiling.
        budget: Power,
        /// Lower edge of the frequency search bracket.
        lo: Frequency,
        /// Upper edge of the frequency search bracket.
        hi: Frequency,
    },
}

/// What a [`Query`] evaluates to.
#[derive(Debug, Clone, PartialEq)]
pub enum QueryOutcome {
    /// Sweep result.
    Points(Vec<OperatingPoint>),
    /// Table result.
    Rows(Vec<TableRow>),
    /// Headline result (`None` when even the bracket floor busts the
    /// budget).
    Headline(Option<Headline>),
}

/// Why a query was refused admission.
#[derive(Debug, Clone, PartialEq)]
pub enum QueryError {
    /// The request asks for more points/samples than the limits allow.
    TooLarge {
        /// What was oversized ("sweep points", …).
        what: &'static str,
        /// The requested count.
        requested: usize,
        /// The admission ceiling.
        limit: usize,
    },
    /// A frequency list was empty.
    Empty,
    /// A frequency is non-finite, non-positive or outside the admissible
    /// band.
    BadFrequency {
        /// The offending value in Hz.
        hz: f64,
    },
    /// A budget is non-finite or non-positive, or a bracket is inverted.
    BadBudget {
        /// Human-readable account.
        detail: String,
    },
}

impl std::fmt::Display for QueryError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            QueryError::TooLarge {
                what,
                requested,
                limit,
            } => write!(f, "{what}: requested {requested}, limit {limit}"),
            QueryError::Empty => write!(f, "frequency list must be non-empty"),
            QueryError::BadFrequency { hz } => {
                write!(f, "frequency {hz} Hz is outside the admissible band")
            }
            QueryError::BadBudget { detail } => write!(f, "bad budget request: {detail}"),
        }
    }
}

impl std::error::Error for QueryError {}

/// A point-in-time snapshot of the process-wide engine work counters:
/// simulator events/gate evaluations/time-wheel traffic plus execution
/// pool task counts. Front ends take one before and one after a unit of
/// work and report the [`delta`](EngineWork::delta_since) — e.g. as
/// per-trace `sim_events=…`/`exec_tasks=…` annotations.
///
/// The counters are process-wide, so under concurrent requests a delta
/// attributes *all* engine work in the window, not just the caller's;
/// for a serial measurement (the bench harness, a quiet server) it is
/// exact.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct EngineWork {
    /// Simulator counters (events, gate evals, wheel traffic).
    pub sim: scpg_sim::SimCounters,
    /// Bit-parallel engine counters (word evals, lanes, cone skips).
    pub bitpar: scpg_sim::BitparCounters,
    /// Tasks run by the execution pool.
    pub exec_tasks: u64,
}

impl EngineWork {
    /// The current process-wide totals.
    pub fn snapshot() -> Self {
        EngineWork {
            sim: scpg_sim::totals(),
            bitpar: scpg_sim::bitpar_totals(),
            exec_tasks: scpg_exec::tasks_executed(),
        }
    }

    /// Work done between `earlier` and `self` (component-wise
    /// saturating difference).
    #[must_use]
    pub fn delta_since(self, earlier: EngineWork) -> EngineWork {
        EngineWork {
            sim: self.sim.delta_since(earlier.sim),
            bitpar: self.bitpar.delta_since(earlier.bitpar),
            exec_tasks: self.exec_tasks.saturating_sub(earlier.exec_tasks),
        }
    }
}

/// The aggregated result of a bulk activity-extraction run — the
/// serving-layer face of the settled-state fast path. All fields are
/// deterministic functions of `(design, clock, cycles, lanes, seed)`;
/// crucially they do **not** depend on which engine ran, which is what
/// the `SCPG_FORCE_ENGINE` loopback test pins down.
#[derive(Debug, Clone, PartialEq)]
pub struct ActivityReport {
    /// The engine that produced the record (not part of the response
    /// body; surfaced via counters/metrics only).
    pub engine: scpg_sim::SettledEngine,
    /// Stimulus lanes (independent random vector sequences).
    pub lanes: usize,
    /// Clock cycles per lane.
    pub cycles: usize,
    /// Nets in the design.
    pub nets: usize,
    /// 0↔1 toggles summed over all nets and lanes.
    pub total_toggles: u64,
    /// Transitions involving `X`, summed over all nets and lanes.
    pub unknown_transitions: u64,
    /// Simulated picoseconds summed over lanes.
    pub duration_ps: u64,
    /// Toggles per net per cycle over the whole run (Fig. 7's switching
    /// probability).
    pub switching_probability: f64,
}

/// Clock period used by [`extract_activity`] stimulus: 1 µs leaves even
/// the slowest 0.6 V paths orders of magnitude of settling margin.
pub const ACTIVITY_PERIOD_PS: u64 = 1_000_000;

/// Bulk activity extraction: drives `lanes` independent seeded random
/// vector sequences of `cycles` cycles each through the design and
/// returns aggregate settled switching statistics.
///
/// The stimulus protocol: every undriven net except the clock gets a
/// fresh random level at each cycle boundary; a net named `rst_n` is
/// instead held low through cycle 0 and released at the first boundary;
/// the clock (when the named net exists — flop-free designs have none)
/// rises at each boundary and falls mid-cycle. Settled state is observed
/// at cycle boundaries only.
///
/// Engine selection follows [`scpg_sim::run_settled`]: bit-parallel
/// when the design levelizes, per-lane event engine otherwise, with
/// `choice` forcing either for differential testing. The report is
/// engine-invariant either way.
///
/// # Errors
///
/// Invalid shape (`cycles`/`lanes` of 0, more than 64 lanes) or a forced
/// bit-parallel run on a design that does not levelize.
pub fn extract_activity(
    compiled: &scpg_sim::CompiledNetlist,
    clock: &str,
    cycles: usize,
    lanes: usize,
    seed: u64,
    choice: scpg_sim::EngineChoice,
) -> Result<ActivityReport, String> {
    use scpg_sim::{NetChange, PackedStimulus, Phase};

    if cycles == 0 {
        return Err("cycles must be positive".to_string());
    }
    if !(1..=64).contains(&lanes) {
        return Err(format!("lanes {lanes} outside 1..=64"));
    }
    let _span = scpg_trace::Span::start("activity_extraction");
    let period = ACTIVITY_PERIOD_PS;
    let all: u64 = if lanes == 64 { !0 } else { (1u64 << lanes) - 1 };
    let clk = compiled.net_by_name(clock);
    let rst_n = compiled.net_by_name("rst_n");
    let data: Vec<scpg_netlist::NetId> = compiled
        .undriven_nets()
        .into_iter()
        .filter(|&n| Some(n) != clk && Some(n) != rst_n)
        .collect();

    let mut rng_state = seed;
    let mut random_word = || {
        // One splitmix64 draw per (net, boundary); lanes share the word's
        // bits, so every lane sees an independent sequence.
        scpg_rng::splitmix64(&mut rng_state) & all
    };
    let mut phases = Vec::with_capacity(2 * cycles + 2);
    let mut init = Vec::new();
    if let Some(rn) = rst_n {
        init.push(NetChange::level(rn, all, false));
    }
    if let Some(c) = clk {
        init.push(NetChange::level(c, all, false));
    }
    for &n in &data {
        init.push(NetChange::word(n, all, random_word()));
    }
    phases.push(Phase {
        t: 0,
        observe: false,
        changes: init,
    });
    // Cycle 0 is the reset cycle; clocked cycles run from boundary 1.
    for i in 1..=cycles as u64 {
        let mut changes = Vec::new();
        if i == 1 {
            if let Some(rn) = rst_n {
                changes.push(NetChange::level(rn, all, true));
            }
        }
        if i < cycles as u64 {
            if let Some(c) = clk {
                changes.push(NetChange::level(c, all, true));
            }
            for &n in &data {
                changes.push(NetChange::word(n, all, random_word()));
            }
        }
        phases.push(Phase {
            t: i * period,
            observe: true,
            changes,
        });
        if i < cycles as u64 {
            if let Some(c) = clk {
                phases.push(Phase {
                    t: i * period + period / 2,
                    observe: false,
                    changes: vec![NetChange::level(c, all, false)],
                });
            }
        }
    }
    let program = PackedStimulus {
        phases,
        lane_ends: vec![cycles as u64 * period; lanes],
    };

    let run = scpg_sim::run_settled(compiled, &program, None, choice)?;
    let merged =
        scpg_waveform::Activity::merge_all(&run.activities).expect("at least one lane ran");
    Ok(ActivityReport {
        engine: run.engine,
        lanes,
        cycles,
        nets: compiled.num_nets(),
        total_toggles: merged.total_toggles(),
        unknown_transitions: merged.nets().iter().map(|n| n.unknown_transitions).sum(),
        duration_ps: merged.duration_ps(),
        switching_probability: merged.switching_probability(period),
    })
}

/// Builds the full SCPG analysis engine for an arbitrary baseline
/// netlist — the netlist-backed counterpart of the built-in design
/// kinds. Both the serving layer's design registry and direct library
/// callers go through this one function, so a served result over an
/// uploaded netlist is guaranteed to come from the identical engine a
/// library user would construct.
///
/// # Errors
///
/// A human-readable account of the failed stage (transform or analysis
/// build) — e.g. a purely combinational netlist has no flops to gate.
pub fn netlist_analysis(
    lib: &Library,
    baseline: &Netlist,
    clock: &str,
    e_dyn: Energy,
    corner: PvtCorner,
) -> Result<ScpgAnalysis, String> {
    let design = ScpgTransform::new(lib)
        .apply(baseline, clock, &ScpgOptions::default())
        .map_err(|e| format!("SCPG transform failed: {e}"))?;
    ScpgAnalysis::new(lib, baseline, &design, e_dyn, corner)
        .map_err(|e| format!("analysis build failed: {e}"))
}

fn check_frequencies(
    freqs: &[Frequency],
    limits: &QueryLimits,
    what: &'static str,
    max: usize,
) -> Result<(), QueryError> {
    if freqs.is_empty() {
        return Err(QueryError::Empty);
    }
    if freqs.len() > max {
        return Err(QueryError::TooLarge {
            what,
            requested: freqs.len(),
            limit: max,
        });
    }
    for f in freqs {
        if !f.value().is_finite()
            || f.value() < limits.min_frequency.value()
            || f.value() > limits.max_frequency.value()
        {
            return Err(QueryError::BadFrequency { hz: f.value() });
        }
    }
    Ok(())
}

impl Query {
    /// Checks the query against the admission limits.
    ///
    /// # Errors
    ///
    /// Returns the first violated limit.
    pub fn validate(&self, limits: &QueryLimits) -> Result<(), QueryError> {
        match self {
            Query::Sweep { frequencies, .. } => {
                check_frequencies(frequencies, limits, "sweep points", limits.max_sweep_points)
            }
            Query::Table { frequencies } => {
                check_frequencies(frequencies, limits, "table rows", limits.max_table_points)
            }
            Query::Headline { budget, lo, hi } => {
                check_frequencies(&[*lo, *hi], limits, "headline bracket", 2)?;
                if !budget.value().is_finite() || budget.value() <= 0.0 {
                    return Err(QueryError::BadBudget {
                        detail: format!("budget {} W must be finite and positive", budget.value()),
                    });
                }
                if lo.value() >= hi.value() {
                    return Err(QueryError::BadBudget {
                        detail: format!("bracket [{}, {}] Hz is inverted", lo.value(), hi.value()),
                    });
                }
                Ok(())
            }
        }
    }

    /// Executes the (already validated) query against a shared analysis.
    /// Delegates straight to the library entry points, so the outcome is
    /// bit-identical to calling them directly.
    pub fn run(&self, analysis: &ScpgAnalysis) -> QueryOutcome {
        match self {
            Query::Sweep { frequencies, mode } => {
                let _span = scpg_trace::Span::start("query_sweep");
                QueryOutcome::Points(analysis.sweep(frequencies, *mode))
            }
            Query::Table { frequencies } => {
                let _span = scpg_trace::Span::start("query_table");
                QueryOutcome::Rows(analysis.table(frequencies))
            }
            Query::Headline { budget, lo, hi } => {
                let _span = scpg_trace::Span::start("query_headline");
                QueryOutcome::Headline(PowerBudget(*budget).headline(analysis, *lo, *hi))
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::transform::{ScpgOptions, ScpgTransform};
    use scpg_circuits::generate_multiplier;
    use scpg_liberty::{Library, PvtCorner};
    use scpg_units::Energy;

    fn analysis() -> ScpgAnalysis {
        let lib = Library::ninety_nm();
        let (nl, _) = generate_multiplier(&lib, 8);
        let design = ScpgTransform::new(&lib)
            .apply(&nl, "clk", &ScpgOptions::default())
            .unwrap();
        ScpgAnalysis::new(
            &lib,
            &nl,
            &design,
            Energy::from_pj(1.0),
            PvtCorner::default(),
        )
        .unwrap()
    }

    #[test]
    fn netlist_backed_analysis_matches_direct_construction() {
        let lib = Library::ninety_nm();
        let (nl, _) = generate_multiplier(&lib, 8);
        let via_helper =
            netlist_analysis(&lib, &nl, "clk", Energy::from_pj(1.0), PvtCorner::default())
                .expect("multiplier gates");
        let direct = analysis();
        let freqs = vec![Frequency::from_khz(50.0), Frequency::from_mhz(2.0)];
        assert_eq!(
            via_helper.sweep(&freqs, Mode::Scpg),
            direct.sweep(&freqs, Mode::Scpg),
            "helper-built engine must be bit-identical to direct construction"
        );
        // A flop-free netlist fails with a clear account, not a panic.
        let mut flat = Netlist::new("flat");
        let a = flat.add_input("a");
        let y = flat.add_output("y");
        flat.add_instance("u", "INV_X1", &[a, y]).unwrap();
        let err = netlist_analysis(
            &lib,
            &flat,
            "clk",
            Energy::from_pj(1.0),
            PvtCorner::default(),
        )
        .expect_err("nothing to gate");
        assert!(err.contains("transform failed"), "{err}");
    }

    #[test]
    fn mode_keys_round_trip() {
        for mode in [Mode::NoPg, Mode::Scpg, Mode::ScpgMax] {
            assert_eq!(Mode::from_key(mode.key()), Some(mode));
        }
        assert_eq!(Mode::from_key("nope"), None);
    }

    #[test]
    fn sweep_query_matches_direct_call() {
        let a = analysis();
        let freqs = vec![Frequency::from_khz(10.0), Frequency::from_mhz(1.0)];
        let q = Query::Sweep {
            frequencies: freqs.clone(),
            mode: Mode::Scpg,
        };
        q.validate(&QueryLimits::default()).unwrap();
        match q.run(&a) {
            QueryOutcome::Points(points) => assert_eq!(points, a.sweep(&freqs, Mode::Scpg)),
            other => panic!("wrong outcome: {other:?}"),
        }
    }

    #[test]
    fn table_and_headline_queries_run() {
        let a = analysis();
        let q = Query::Table {
            frequencies: vec![Frequency::from_khz(100.0)],
        };
        q.validate(&QueryLimits::default()).unwrap();
        assert!(matches!(q.run(&a), QueryOutcome::Rows(rows) if rows.len() == 1));

        let q = Query::Headline {
            budget: Power::from_uw(30.0),
            lo: Frequency::from_hz(100.0),
            hi: Frequency::from_mhz(50.0),
        };
        q.validate(&QueryLimits::default()).unwrap();
        assert!(matches!(q.run(&a), QueryOutcome::Headline(Some(_))));
    }

    #[test]
    fn validation_rejects_bad_shapes() {
        let limits = QueryLimits::default();
        assert_eq!(
            Query::Table {
                frequencies: vec![]
            }
            .validate(&limits),
            Err(QueryError::Empty)
        );
        let too_many = vec![Frequency::from_khz(10.0); limits.max_sweep_points + 1];
        assert!(matches!(
            Query::Sweep {
                frequencies: too_many,
                mode: Mode::NoPg
            }
            .validate(&limits),
            Err(QueryError::TooLarge { .. })
        ));
        for hz in [f64::NAN, 0.0, -5.0, 1e18] {
            assert!(matches!(
                Query::Sweep {
                    frequencies: vec![Frequency::new(hz)],
                    mode: Mode::NoPg
                }
                .validate(&limits),
                Err(QueryError::BadFrequency { .. })
            ));
        }
        assert!(matches!(
            Query::Headline {
                budget: Power::from_uw(-1.0),
                lo: Frequency::from_hz(100.0),
                hi: Frequency::from_mhz(1.0),
            }
            .validate(&limits),
            Err(QueryError::BadBudget { .. })
        ));
        assert!(matches!(
            Query::Headline {
                budget: Power::from_uw(30.0),
                lo: Frequency::from_mhz(1.0),
                hi: Frequency::from_hz(100.0),
            }
            .validate(&limits),
            Err(QueryError::BadBudget { .. })
        ));
    }
    /// The activity report must not depend on which engine produced it:
    /// this is the invariant the serving layer's forced-engine loopback
    /// test builds on.
    #[test]
    fn activity_extraction_is_engine_invariant() {
        let lib = Library::ninety_nm();
        let (nl, _) = generate_multiplier(&lib, 4);
        let compiled = scpg_sim::CompiledNetlist::compile(&nl, &lib, PvtCorner::default()).unwrap();
        let fast = extract_activity(
            &compiled,
            "clk",
            8,
            16,
            0xA11CE,
            scpg_sim::EngineChoice::BitParallel,
        )
        .unwrap();
        assert_eq!(fast.engine, scpg_sim::SettledEngine::BitParallel);
        let slow = extract_activity(
            &compiled,
            "clk",
            8,
            16,
            0xA11CE,
            scpg_sim::EngineChoice::Event,
        )
        .unwrap();
        assert_eq!(slow.engine, scpg_sim::SettledEngine::Event);
        assert!(fast.total_toggles > 0, "stimulus must exercise the design");
        assert_eq!(fast.total_toggles, slow.total_toggles);
        assert_eq!(fast.unknown_transitions, slow.unknown_transitions);
        assert_eq!(fast.switching_probability, slow.switching_probability);
        assert_eq!(fast.duration_ps, 16 * 8 * ACTIVITY_PERIOD_PS);
        assert!(extract_activity(&compiled, "clk", 0, 1, 0, scpg_sim::EngineChoice::Auto).is_err());
        assert!(
            extract_activity(&compiled, "clk", 1, 65, 0, scpg_sim::EngineChoice::Auto).is_err()
        );
    }
}
