//! The end-to-end SCPG design flow (paper Fig. 5).
//!
//! Mirrors the paper's flow chart: RTL synthesis is assumed done (the
//! input is already a gate-level netlist from [`scpg_synth`] or
//! [`scpg_circuits`]); the two SCPG-specific additions — netlist
//! splitting and isolation-circuit combination — run as real netlist
//! transforms; the back-end stages (design planning, clock-tree
//! synthesis, routing) are estimated, since their only effect on the
//! paper's results is area/capacitance already captured by the library's
//! wire model.

use scpg_analog::SizingConstraints;
use scpg_liberty::{Library, PvtCorner};
use scpg_sta::TimingReport;
use scpg_units::{Energy, Time};

use crate::error::ScpgError;
use crate::headers::{choose_header, profile_domain};
use crate::transform::{ScpgDesign, ScpgOptions, ScpgTransform};
use crate::upf::generate_upf;

/// A log line per flow stage.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct StageLog {
    /// The stage name as in Fig. 5.
    pub stage: String,
    /// What the stage did / found.
    pub detail: String,
}

/// Everything the flow produces.
#[derive(Debug, Clone)]
pub struct FlowReport {
    /// The transformed design.
    pub design: ScpgDesign,
    /// UPF describing the power intent.
    pub upf: String,
    /// The split structural Verilog (step 1's artefact).
    pub split_verilog: String,
    /// STA of the transformed netlist at the flow corner.
    pub timing: TimingReport,
    /// Area overhead vs. the input netlist (fraction).
    pub area_overhead: f64,
    /// Per-stage log.
    pub stages: Vec<StageLog>,
}

/// The flow driver.
#[derive(Debug)]
pub struct ScpgFlow<'lib> {
    lib: &'lib Library,
    corner: PvtCorner,
    constraints: SizingConstraints,
    /// Workload dynamic energy estimate used for header sizing.
    e_dyn_per_cycle: Energy,
    /// Maximum clock-buffer fanout during CTS.
    cts_max_fanout: usize,
}

impl<'lib> ScpgFlow<'lib> {
    /// Creates a flow at the default corner with default constraints.
    pub fn new(lib: &'lib Library) -> Self {
        Self {
            lib,
            corner: PvtCorner::default(),
            constraints: SizingConstraints::default(),
            e_dyn_per_cycle: Energy::from_pj(2.0),
            cts_max_fanout: 24,
        }
    }

    /// Overrides the CTS fanout bound.
    pub fn with_cts_fanout(mut self, max_fanout: usize) -> Self {
        self.cts_max_fanout = max_fanout;
        self
    }

    /// Overrides the operating corner.
    pub fn at_corner(mut self, corner: PvtCorner) -> Self {
        self.corner = corner;
        self
    }

    /// Sets the workload dynamic-energy estimate used when sizing the
    /// header (measure it with [`scpg_power::PowerAnalyzer::dynamic`]).
    pub fn with_workload_energy(mut self, e: Energy) -> Self {
        self.e_dyn_per_cycle = e;
        self
    }

    /// Overrides the header sizing constraints.
    pub fn with_constraints(mut self, c: SizingConstraints) -> Self {
        self.constraints = c;
        self
    }

    /// Runs the full flow on a gate-level netlist.
    ///
    /// # Errors
    ///
    /// Propagates transform, sizing and timing failures.
    pub fn run(
        &self,
        netlist: &scpg_netlist::Netlist,
        clock_name: &str,
    ) -> Result<FlowReport, ScpgError> {
        let mut stages = Vec::new();
        let log = |stages: &mut Vec<StageLog>, stage: &str, detail: String| {
            stages.push(StageLog {
                stage: stage.to_string(),
                detail,
            });
        };

        let base_stats = netlist.stats(self.lib);
        log(
            &mut stages,
            "Synthesis",
            format!(
                "input netlist `{}`: {} comb / {} seq cells, {:.0} µm²",
                netlist.name(),
                base_stats.combinational,
                base_stats.sequential,
                base_stats.area.as_um2()
            ),
        );

        // Step 1+2 with a provisional header, then re-run with the sized
        // one (sizing needs the gated-domain profile, which needs the
        // split design).
        let provisional =
            ScpgTransform::new(self.lib).apply(netlist, clock_name, &ScpgOptions::default())?;
        let timing0 = scpg_sta::analyze(&provisional.netlist, self.lib, self.corner.voltage)?;
        let profile = profile_domain(
            &provisional,
            self.lib,
            self.corner,
            self.e_dyn_per_cycle,
            timing0.t_eval,
        )?;
        let (size, header_reports) = choose_header(&profile, self.corner, &self.constraints)?;
        log(
            &mut stages,
            "Header sizing",
            format!(
                "gated domain: {} cells, C_VDDV {}, I_leak {} → {:?} \
                 (IR drop {}, in-rush {})",
                profile.n_gates,
                profile.c_vddv,
                profile.i_leak_full,
                size,
                header_reports
                    .iter()
                    .find(|r| r.size == size)
                    .map(|r| r.ir_drop.to_string())
                    .unwrap_or_default(),
                header_reports
                    .iter()
                    .find(|r| r.size == size)
                    .map(|r| r.inrush_peak.to_string())
                    .unwrap_or_default(),
            ),
        );

        let mut design = ScpgTransform::new(self.lib).apply(
            netlist,
            clock_name,
            &ScpgOptions { header_size: size },
        )?;
        let s = design.netlist.stats(self.lib);
        log(
            &mut stages,
            "Netlist splitting (step 1)",
            format!(
                "{} cells moved to the gated domain, {} stay always-on",
                s.gated.total(),
                s.always_on.total()
            ),
        );
        log(
            &mut stages,
            "Isolation combine (step 2)",
            format!(
                "{} isolation clamps + header + Fig. 3 control inserted",
                design.isolation_cells
            ),
        );

        // Clock-tree synthesis — after the transform, so the buffers land
        // in the always-on domain (a gated clock tree would be fatal).
        let cts = scpg_synth::insert_clock_tree(
            &mut design.netlist,
            self.lib,
            clock_name,
            self.cts_max_fanout,
        )?;
        // SCPG-specific constraint: the clock's insertion delay must stay
        // inside the isolation clamp window, or a leaf flop could sample
        // an already-clamped input at the gated edge.
        let clamp_window = {
            let isoctl = self
                .lib
                .cell_of_kind(scpg_liberty::CellKind::IsoCtl)
                .expect("kit has the Fig. 3 control cell");
            let iso = self
                .lib
                .cell_of_kind(scpg_liberty::CellKind::IsoAnd)
                .expect("kit has isolation cells");
            isoctl.delay(self.corner.voltage, self.lib.wire_cap())
                + iso.delay(self.corner.voltage, self.lib.wire_cap())
        };
        let skew_ok = cts.insertion_delay.value() <= clamp_window.value();
        log(
            &mut stages,
            "Clock tree synthesis",
            format!(
                "{} sinks, {} buffers in {} level(s), insertion delay {} — \
                 clamp window {} ⇒ {}; clock doubles as the power-gating \
                 control (no dedicated sleep routing)",
                cts.sinks,
                cts.total_buffers(),
                cts.levels,
                cts.insertion_delay,
                clamp_window,
                if skew_ok {
                    "hold at the gated edge is safe"
                } else {
                    "WARNING: deepen the isolation delay or flatten the tree"
                }
            ),
        );

        let split_verilog = scpg_netlist::emit_verilog_split(&design.netlist, self.lib)?;
        let upf = generate_upf(&design, self.lib, netlist.name());
        let timing = scpg_sta::analyze(&design.netlist, self.lib, self.corner.voltage)?;
        let area_overhead = design.area_overhead(netlist, self.lib);

        log(
            &mut stages,
            "Design planning",
            format!(
                "gated domain placed centrally; area overhead {:.1} %",
                area_overhead * 100.0
            ),
        );
        log(
            &mut stages,
            "Routing",
            format!(
                "T_eval {} (min period {})",
                timing.t_eval, timing.min_period
            ),
        );

        Ok(FlowReport {
            design,
            upf,
            split_verilog,
            timing,
            area_overhead,
            stages,
        })
    }
}

/// Recommended simulator settings for a transformed design: collapse and
/// restore delays taken from the rail physics so gate-level simulation of
/// the SCPG netlist reproduces Fig. 4's waveform ordering.
pub fn sim_config_for(
    report: &FlowReport,
    lib: &Library,
    corner: PvtCorner,
    e_dyn_per_cycle: Energy,
) -> Result<scpg_sim::SimConfig, ScpgError> {
    let profile = profile_domain(
        &report.design,
        lib,
        corner,
        e_dyn_per_cycle,
        report.timing.t_eval,
    )?;
    let header = lib
        .header(report.design.header_size)
        .ok_or(ScpgError::NoViableHeader)?
        .clone();
    let rail = scpg_analog::RailModel::new(profile, header, corner.voltage);
    // Collapse: time for the rail to sag below a valid '1' (~70 % VDD).
    let tau = rail.decay_tau();
    let collapse = Time::new(tau.value() * (1.0f64 / 0.7).ln());
    let restore = rail.restore_time(scpg_units::Voltage::ZERO);
    Ok(scpg_sim::SimConfig {
        corner,
        collapse_delay_ps: (collapse.as_ps().round() as u64).max(1),
        restore_delay_ps: (restore.as_ps().round() as u64).max(1),
        ..scpg_sim::SimConfig::default()
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use scpg_circuits::generate_multiplier;
    use scpg_liberty::Library;

    #[test]
    fn flow_runs_end_to_end_on_the_multiplier() {
        let lib = Library::ninety_nm();
        let (nl, _) = generate_multiplier(&lib, 16);
        let report = ScpgFlow::new(&lib)
            .with_workload_energy(Energy::from_pj(2.3))
            .run(&nl, "clk")
            .unwrap();
        assert!(report.stages.len() >= 5);
        assert!(report.upf.contains("create_power_switch"));
        assert!(report.split_verilog.contains("_gated"));
        assert!(report.area_overhead > 0.0 && report.area_overhead < 0.12);
        assert!(report.timing.t_eval.as_ns() > 5.0);
        // The flow's header pick is small for the small domain.
        assert!(matches!(
            report.design.header_size,
            scpg_liberty::HeaderSize::X1 | scpg_liberty::HeaderSize::X2
        ));
    }

    #[test]
    fn sim_config_reflects_rail_physics() {
        let lib = Library::ninety_nm();
        let (nl, _) = generate_multiplier(&lib, 16);
        let report = ScpgFlow::new(&lib).run(&nl, "clk").unwrap();
        let cfg =
            sim_config_for(&report, &lib, PvtCorner::default(), Energy::from_pj(2.3)).unwrap();
        // Decay τ ≈ 17 ns ⇒ collapse (to 70 %) ≈ 6 ns; restore ≲ 1 ns.
        assert!(
            (1_000..30_000).contains(&cfg.collapse_delay_ps),
            "collapse {} ps",
            cfg.collapse_delay_ps
        );
        assert!(
            (1..5_000).contains(&cfg.restore_delay_ps),
            "restore {} ps",
            cfg.restore_delay_ps
        );
    }

    #[test]
    fn flow_reports_missing_clock() {
        let lib = Library::ninety_nm();
        let (nl, _) = generate_multiplier(&lib, 4);
        assert!(matches!(
            ScpgFlow::new(&lib).run(&nl, "clock_typo"),
            Err(ScpgError::NoSuchClock { .. })
        ));
    }
}
