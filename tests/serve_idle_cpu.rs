//! Regression tests for idle-CPU burn in the connection core.
//!
//! The original accept loop polled a nonblocking listener at 1 ms
//! (~1k wakeups/s, ~10 ms+ CPU over a 3-second window); the event loop
//! must burn effectively nothing while idle — including with ten
//! thousand parked keep-alive connections, where any per-connection
//! tick or level-triggered interest bug multiplies into solid CPU.
//!
//! This lives in its own test binary so the process is otherwise idle
//! while we measure. The 10k-connection test holds the client ends in a
//! child process (re-exec of this binary) because the per-process fd
//! limit here cannot fit both sides of 10k sockets.

use std::io::{BufRead, BufReader, Write};
use std::sync::Mutex;
use std::time::Duration;

/// Serializes the CPU-measuring tests — the measurement is
/// process-wide, so they must not overlap.
static MEASURE_LOCK: Mutex<()> = Mutex::new(());

/// `clock_gettime(CLOCK_PROCESS_CPUTIME_ID)` via a direct declaration —
/// `/proc/self/stat` only ticks at 10 ms granularity, far too coarse for
/// the few-millisecond budget this test enforces.
#[cfg(target_os = "linux")]
mod cputime {
    #[repr(C)]
    struct Timespec {
        tv_sec: i64,
        tv_nsec: i64,
    }

    extern "C" {
        fn clock_gettime(clockid: i32, tp: *mut Timespec) -> i32;
    }

    const CLOCK_PROCESS_CPUTIME_ID: i32 = 2;

    /// CPU time consumed by this process (all threads) so far.
    pub fn process_cpu() -> std::time::Duration {
        let mut ts = Timespec {
            tv_sec: 0,
            tv_nsec: 0,
        };
        let rc = unsafe { clock_gettime(CLOCK_PROCESS_CPUTIME_ID, &mut ts) };
        assert_eq!(rc, 0, "clock_gettime(CLOCK_PROCESS_CPUTIME_ID) failed");
        std::time::Duration::new(ts.tv_sec as u64, ts.tv_nsec as u32)
    }
}

#[cfg(target_os = "linux")]
#[test]
fn idle_server_burns_no_measurable_cpu() {
    let _serial = MEASURE_LOCK.lock().unwrap();
    let handle = scpg_serve::Server::bind(scpg_serve::ServeConfig {
        workers: 2,
        ..scpg_serve::ServeConfig::default()
    })
    .expect("bind")
    .spawn();

    // One request up front so every lazy path (thread spawn, first
    // accept) has already run before the measurement window.
    let warm = scpg_serve::client::get(handle.addr(), "/healthz").expect("healthz");
    assert_eq!(warm.status, 200);

    let idle_window = Duration::from_secs(3);
    let before = cputime::process_cpu();
    std::thread::sleep(idle_window);
    let burned = cputime::process_cpu() - before;

    handle.shutdown();

    // The old 1 ms poll loop spent ~10-45 ms of CPU over this window on
    // this host; an event loop parked in a poll wait plus idle workers
    // spends microseconds. 5 ms leaves generous headroom for
    // allocator/scheduler noise while still failing a busy-poll
    // implementation by 2x or more.
    assert!(
        burned < Duration::from_millis(5),
        "idle server burned {burned:?} CPU over {idle_window:?} — accept loop is polling"
    );
}

/// How many parked keep-alive connections the 10k test opens.
const IDLE_CONNS: usize = 10_000;

/// Not a real test: the client half of
/// [`ten_thousand_idle_connections_burn_no_measurable_cpu`], run as a
/// child process so the 10k client sockets live in a separate fd table.
/// Without the env var set it does nothing.
#[test]
fn idle_client_helper() {
    let Ok(addr) = std::env::var("SCPG_IDLE_HELPER_ADDR") else {
        return;
    };
    let addr: std::net::SocketAddr = addr.parse().expect("helper addr");
    let conns: usize = std::env::var("SCPG_IDLE_HELPER_CONNS")
        .expect("helper conn count")
        .parse()
        .expect("helper conn count");
    let mut held = Vec::with_capacity(conns);
    for _ in 0..conns {
        // Brief retries ride out listen-backlog pressure while the
        // single-threaded event loop accepts the flood.
        let mut attempt = 0;
        let stream = loop {
            match std::net::TcpStream::connect(addr) {
                Ok(s) => break s,
                Err(e) if attempt < 50 => {
                    attempt += 1;
                    let _ = e;
                    std::thread::sleep(Duration::from_millis(10));
                }
                Err(e) => panic!("helper connect failed: {e}"),
            }
        };
        held.push(stream);
    }
    // Handshake: tell the parent everything is connected, then hold the
    // sockets open until it says stop (or closes our stdin).
    println!("HELPER-READY");
    std::io::stdout().flush().expect("flush READY");
    let mut line = String::new();
    let _ = std::io::stdin().read_line(&mut line);
    drop(held);
}

#[cfg(target_os = "linux")]
#[test]
fn ten_thousand_idle_connections_burn_no_measurable_cpu() {
    let _serial = MEASURE_LOCK.lock().unwrap();
    let handle = scpg_serve::Server::bind(scpg_serve::ServeConfig {
        workers: 2,
        // Far beyond the test's lifetime: none of the 10k connections
        // may hit the idle reaper inside the measurement window.
        idle_timeout_ms: 300_000,
        ..scpg_serve::ServeConfig::default()
    })
    .expect("bind")
    .spawn();
    let warm = scpg_serve::client::get(handle.addr(), "/healthz").expect("healthz");
    assert_eq!(warm.status, 200);

    let exe = std::env::current_exe().expect("current_exe");
    let mut child = std::process::Command::new(exe)
        .args(["--exact", "idle_client_helper", "--nocapture"])
        .env("SCPG_IDLE_HELPER_ADDR", handle.addr().to_string())
        .env("SCPG_IDLE_HELPER_CONNS", IDLE_CONNS.to_string())
        .stdin(std::process::Stdio::piped())
        .stdout(std::process::Stdio::piped())
        .spawn()
        .expect("spawn idle_client_helper child");
    let mut child_out = BufReader::new(child.stdout.take().expect("child stdout"));
    let mut line = String::new();
    loop {
        line.clear();
        let n = child_out.read_line(&mut line).expect("child stdout read");
        assert_ne!(n, 0, "helper exited before HELPER-READY");
        // `contains`, not equality: the libtest harness prints its
        // `test idle_client_helper ... ` prefix on the same line.
        if line.contains("HELPER-READY") {
            break;
        }
    }

    // All client sockets exist; wait until the server has accepted and
    // registered every one of them.
    let deadline = std::time::Instant::now() + Duration::from_secs(60);
    while handle.open_connections() < IDLE_CONNS {
        assert!(
            std::time::Instant::now() < deadline,
            "server accepted only {} of {IDLE_CONNS} connections",
            handle.open_connections()
        );
        std::thread::sleep(Duration::from_millis(20));
    }
    // Settle: let the accept burst's final wakeups drain.
    std::thread::sleep(Duration::from_millis(300));

    let idle_window = Duration::from_secs(3);
    let before = cputime::process_cpu();
    std::thread::sleep(idle_window);
    let burned = cputime::process_cpu() - before;

    // Release the child before asserting so a failure doesn't leak it.
    child
        .stdin
        .take()
        .expect("child stdin")
        .write_all(b"done\n")
        .ok();
    let _ = child.wait();
    handle.shutdown();

    // Parked connections must be free: no per-connection tick, no
    // level-triggered interest leak. Same 5 ms budget as the bare idle
    // test — 10k connections must cost the same as zero.
    assert!(
        burned < Duration::from_millis(5),
        "10k idle connections burned {burned:?} CPU over {idle_window:?}"
    );
}
