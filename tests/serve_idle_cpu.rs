//! Regression test for the accept-loop busy-poll: an idle server must
//! not burn CPU. The pre-fix loop polled a nonblocking listener at 1 ms
//! (~1k wakeups/s), which shows up as ~10 ms+ of process CPU over a
//! 3-second idle window; the blocking accept burns effectively none.
//!
//! This lives in its own test binary so the process is otherwise idle
//! while we measure (cargo runs test binaries sequentially, and nothing
//! else in this file spins up work).

use std::time::Duration;

/// `clock_gettime(CLOCK_PROCESS_CPUTIME_ID)` via a direct declaration —
/// `/proc/self/stat` only ticks at 10 ms granularity, far too coarse for
/// the few-millisecond budget this test enforces.
#[cfg(target_os = "linux")]
mod cputime {
    #[repr(C)]
    struct Timespec {
        tv_sec: i64,
        tv_nsec: i64,
    }

    extern "C" {
        fn clock_gettime(clockid: i32, tp: *mut Timespec) -> i32;
    }

    const CLOCK_PROCESS_CPUTIME_ID: i32 = 2;

    /// CPU time consumed by this process (all threads) so far.
    pub fn process_cpu() -> std::time::Duration {
        let mut ts = Timespec {
            tv_sec: 0,
            tv_nsec: 0,
        };
        let rc = unsafe { clock_gettime(CLOCK_PROCESS_CPUTIME_ID, &mut ts) };
        assert_eq!(rc, 0, "clock_gettime(CLOCK_PROCESS_CPUTIME_ID) failed");
        std::time::Duration::new(ts.tv_sec as u64, ts.tv_nsec as u32)
    }
}

#[cfg(target_os = "linux")]
#[test]
fn idle_server_burns_no_measurable_cpu() {
    let handle = scpg_serve::Server::bind(scpg_serve::ServeConfig {
        workers: 2,
        ..scpg_serve::ServeConfig::default()
    })
    .expect("bind")
    .spawn();

    // One request up front so every lazy path (thread spawn, first
    // accept) has already run before the measurement window.
    let warm = scpg_serve::client::get(handle.addr(), "/healthz").expect("healthz");
    assert_eq!(warm.status, 200);

    let idle_window = Duration::from_secs(3);
    let before = cputime::process_cpu();
    std::thread::sleep(idle_window);
    let burned = cputime::process_cpu() - before;

    handle.shutdown();

    // The old 1 ms poll loop spent ~10-45 ms of CPU over this window on
    // this host; a blocking accept plus idle workers spends microseconds.
    // 5 ms leaves generous headroom for allocator/scheduler noise while
    // still failing the busy-poll implementation by 2x or more.
    assert!(
        burned < Duration::from_millis(5),
        "idle server burned {burned:?} CPU over {idle_window:?} — accept loop is polling"
    );
}
