//! Cross-crate consistency of the flow's artefacts: Verilog round-trips,
//! UPF matches the netlist, the split emission partitions the design, and
//! the analysis agrees with the power engine's raw numbers.

use scpg::{Mode, ScpgAnalysis, ScpgFlow};
use scpg_circuits::generate_multiplier;
use scpg_liberty::{Library, PvtCorner};
use scpg_netlist::{emit_verilog, parse_verilog, Domain};
use scpg_power::PowerAnalyzer;
use scpg_units::{Energy, Frequency};

fn flow_report(lib: &Library) -> (scpg_netlist::Netlist, scpg::FlowReport) {
    let (nl, _) = generate_multiplier(lib, 16);
    let report = ScpgFlow::new(lib)
        .with_workload_energy(Energy::from_pj(3.0))
        .run(&nl, "clk")
        .unwrap();
    (nl, report)
}

#[test]
fn scpg_netlist_round_trips_through_verilog() {
    let lib = Library::ninety_nm();
    let (_, report) = flow_report(&lib);
    let text = emit_verilog(&report.design.netlist, &lib).unwrap();
    let back = parse_verilog(&text, &lib).unwrap();
    back.validate(&lib).unwrap();
    assert_eq!(
        back.instances().len(),
        report.design.netlist.instances().len()
    );
    assert_eq!(back.ports().len(), report.design.netlist.ports().len());
    // Domains are a power-intent attribute (carried by UPF, not Verilog);
    // structure must survive regardless.
    let s1 = report.design.netlist.stats(&lib);
    let s2 = back.stats(&lib);
    assert_eq!(s1.total(), s2.total());
    assert!((s1.area.as_um2() - s2.area.as_um2()).abs() < 1e-9);
}

#[test]
fn split_emission_partitions_all_gated_cells() {
    let lib = Library::ninety_nm();
    let (_, report) = flow_report(&lib);
    let nl = &report.design.netlist;
    let gated_names: Vec<&str> = nl
        .instances()
        .iter()
        .filter(|i| i.domain() == Domain::Gated)
        .map(|i| i.name())
        .collect();
    let split = &report.split_verilog;
    let gated_module: &str = split.split("module mult16x16_aon").next().unwrap();
    for name in gated_names.iter().take(25) {
        assert!(
            gated_module.contains(&format!(" {name} ")),
            "gated cell {name} missing from the gated module"
        );
    }
    // The header and isolation control stay in the always-on module.
    let aon_module = split.split("module mult16x16_aon").nth(1).unwrap();
    assert!(aon_module.contains("scpg_header"));
    assert!(aon_module.contains("scpg_isoctl"));
}

#[test]
fn upf_references_real_netlist_objects() {
    let lib = Library::ninety_nm();
    let (_, report) = flow_report(&lib);
    let nl = &report.design.netlist;
    assert!(report.upf.contains(&format!(
        "-lib_cells {{{}}}",
        report.design.header_size.cell_name()
    )));
    // Every named membership element exists as an instance.
    for line in report
        .upf
        .lines()
        .filter(|l| l.starts_with("add_power_domain_elements"))
    {
        let inner = line.split('{').nth(1).unwrap().split('}').next().unwrap();
        for name in inner.split_whitespace() {
            assert!(
                nl.instance_by_name(name).is_some(),
                "UPF references unknown instance `{name}`"
            );
        }
    }
}

#[test]
fn analysis_power_decomposes_into_engine_numbers() {
    // At any frequency, the no-PG operating point must equal
    // leakage + E_dyn·f computed directly from the power engine.
    let lib = Library::ninety_nm();
    let (baseline, report) = flow_report(&lib);
    let e_dyn = Energy::from_pj(3.0);
    let analysis =
        ScpgAnalysis::new(&lib, &baseline, &report.design, e_dyn, PvtCorner::default()).unwrap();
    let leak = PowerAnalyzer::new(&baseline, &lib, PvtCorner::default())
        .unwrap()
        .leakage(None)
        .total;
    for mhz in [0.01, 1.0, 10.0] {
        let f = Frequency::from_mhz(mhz);
        let p = analysis.operating_point(f, Mode::NoPg).power;
        let expect = leak + e_dyn * f;
        let rel = (p.value() - expect.value()).abs() / expect.value();
        assert!(rel < 1e-12, "decomposition at {mhz} MHz: {p} vs {expect}");
    }
}

#[test]
fn flow_handles_every_case_study_design() {
    // The flow must work unmodified on all three generators: the ripple
    // array, the Wallace tree and the CPU.
    let lib = Library::ninety_nm();
    let designs: Vec<(&str, scpg_netlist::Netlist)> = vec![
        ("array", generate_multiplier(&lib, 16).0),
        (
            "wallace",
            scpg_circuits::generate_wallace_multiplier(&lib, 16).0,
        ),
        ("cpu", scpg_circuits::generate_cpu(&lib).0),
    ];
    for (name, nl) in designs {
        let report = ScpgFlow::new(&lib)
            .with_workload_energy(Energy::from_pj(2.0))
            .run(&nl, "clk")
            .unwrap_or_else(|e| panic!("flow on {name}: {e}"));
        report.design.netlist.validate(&lib).unwrap();
        assert!(report.design.isolation_cells > 0, "{name} has crossings");
        assert!(
            report.area_overhead > 0.0 && report.area_overhead < 0.15,
            "{name} area overhead {:.1} %",
            report.area_overhead * 100.0
        );
        // Gated leakage must be the majority of combinational leakage.
        let leak = PowerAnalyzer::new(&report.design.netlist, &lib, PvtCorner::default())
            .unwrap()
            .leakage(None);
        assert!(
            leak.gated_domain.value() > 0.5 * leak.combinational.value(),
            "{name}: gated {} vs comb {}",
            leak.gated_domain,
            leak.combinational
        );
    }
}

#[test]
fn flow_works_at_process_corners() {
    use scpg_liberty::ProcessCorner;
    let (nl, _) = generate_multiplier(&Library::ninety_nm(), 16);
    for corner in [ProcessCorner::Fast, ProcessCorner::Slow] {
        let lib = Library::ninety_nm().at_process_corner(corner);
        let report = ScpgFlow::new(&lib)
            .with_workload_energy(Energy::from_pj(3.0))
            .run(&nl, "clk")
            .unwrap_or_else(|e| panic!("flow at {corner:?}: {e}"));
        assert!(report.timing.t_eval.value() > 0.0);
    }
    // Fast silicon leaks more, so SCPG's absolute saving is larger there.
    let saving_at = |corner: ProcessCorner| {
        let lib = Library::ninety_nm().at_process_corner(corner);
        let (nl, _) = generate_multiplier(&lib, 16);
        let report = ScpgFlow::new(&lib)
            .with_workload_energy(Energy::from_pj(3.0))
            .run(&nl, "clk")
            .unwrap();
        let analysis = ScpgAnalysis::new(
            &lib,
            &nl,
            &report.design,
            Energy::from_pj(3.0),
            PvtCorner::default(),
        )
        .unwrap();
        let f = Frequency::from_khz(100.0);
        let base = analysis.operating_point(f, Mode::NoPg);
        let max = analysis.operating_point(f, Mode::ScpgMax);
        base.power.value() - max.power.value()
    };
    assert!(
        saving_at(ProcessCorner::Fast) > saving_at(ProcessCorner::Slow),
        "leakier silicon benefits more from SCPG"
    );
}

#[test]
fn vcd_activity_matches_simulator_activity() {
    // Emulates the paper's tool hand-off: power computed from the dumped
    // VCD must equal power computed from live simulator counters.
    use scpg_liberty::Logic;
    use scpg_sim::{SimConfig, Simulator};
    use scpg_waveform::{parse_vcd, Activity};

    let lib = Library::ninety_nm();
    let (nl, ports) = generate_multiplier(&lib, 8);
    let cfg = SimConfig {
        vcd: true,
        ..SimConfig::default()
    };
    let mut sim = Simulator::new(&nl, &lib, cfg).unwrap();
    sim.set_input_by_name("rst_n", Logic::One);
    sim.set_input_by_name("clk", Logic::Zero);
    for (i, &bit) in ports.a.bits().iter().enumerate() {
        sim.set_input(bit, Logic::from_bool(i % 2 == 0));
    }
    for (i, &bit) in ports.b.bits().iter().enumerate() {
        sim.set_input(bit, Logic::from_bool(i % 3 == 0));
    }
    for n in 0..6u64 {
        sim.run_until(n * 1_000_000);
        sim.set_input_by_name("clk", Logic::One);
        sim.run_until(n * 1_000_000 + 500_000);
        sim.set_input_by_name("clk", Logic::Zero);
    }
    sim.run_until(6_000_000);
    let res = sim.finish();

    let dump = parse_vcd(res.vcd.as_deref().unwrap()).unwrap();
    let from_vcd = Activity::from_vcd(&dump, res.end_ps, None);

    let corner = PvtCorner::default();
    let analyzer = PowerAnalyzer::new(&nl, &lib, corner).unwrap();
    let direct = analyzer.dynamic(&res.activity);
    let via_vcd = analyzer.dynamic(&from_vcd);
    assert_eq!(res.activity.total_toggles(), from_vcd.total_toggles());
    let rel =
        (direct.energy.value() - via_vcd.energy.value()).abs() / direct.energy.value().max(1e-30);
    assert!(rel < 1e-12, "VCD-derived power must match: {rel}");
}

#[test]
fn gated_domain_leakage_never_exceeds_total() {
    let lib = Library::ninety_nm();
    let (_, report) = flow_report(&lib);
    let rep = PowerAnalyzer::new(&report.design.netlist, &lib, PvtCorner::default())
        .unwrap()
        .leakage(None);
    assert!(rep.gated_domain.value() <= rep.total.value());
    assert!(rep.always_on.value() <= rep.total.value());
    let sum = rep.gated_domain + rep.always_on;
    assert!((sum.value() - rep.total.value()).abs() / rep.total.value() < 1e-12);
}
