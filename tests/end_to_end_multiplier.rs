//! End-to-end: the SCPG-transformed multiplier, with the power gate
//! exercised by every clock cycle, produces bit-identical results to the
//! ungated baseline across random operands.

use scpg::transform::{ScpgOptions, ScpgTransform};
use scpg_circuits::generate_multiplier;
use scpg_liberty::{Library, Logic};
use scpg_netlist::Netlist;
use scpg_rng::StdRng;
use scpg_sim::{SimConfig, Simulator};
use scpg_synth::Word;

const PERIOD: u64 = 1_000_000;

fn drive(sim: &mut Simulator<'_>, w: &Word, v: u64) {
    for (i, &bit) in w.bits().iter().enumerate() {
        sim.set_input(bit, Logic::from_bool((v >> i) & 1 == 1));
    }
}

fn read(sim: &Simulator<'_>, w: &Word) -> Option<u64> {
    let mut v = 0u64;
    for (i, &bit) in w.bits().iter().enumerate() {
        match sim.value(bit).to_bool() {
            Some(true) => v |= 1 << i,
            Some(false) => {}
            None => return None,
        }
    }
    Some(v)
}

fn run_workload(nl: &Netlist, lib: &Library, gated: bool, ops: &[(u64, u64)]) -> Vec<u64> {
    let mut sim = Simulator::new(nl, lib, SimConfig::default()).unwrap();
    let ports_a: Word = (0..8)
        .map(|i| nl.net_by_name(&format!("a[{i}]")).unwrap())
        .collect();
    let ports_b: Word = (0..8)
        .map(|i| nl.net_by_name(&format!("b[{i}]")).unwrap())
        .collect();
    let product: Word = (0..16)
        .map(|i| nl.net_by_name(&format!("p[{i}]")).unwrap())
        .collect();
    if gated {
        let ov = nl.net_by_name("scpg_override_n").unwrap();
        sim.set_input(ov, Logic::One);
    }
    sim.set_input_by_name("clk", Logic::Zero);
    sim.set_input_by_name("rst_n", Logic::Zero);

    let mut outputs = Vec::new();
    let mut n = 0u64;
    let cycle = |sim: &mut Simulator<'_>, n: &mut u64| {
        sim.run_until(*n * PERIOD);
        sim.set_input_by_name("clk", Logic::One);
        sim.run_until(*n * PERIOD + PERIOD / 2);
        sim.set_input_by_name("clk", Logic::Zero);
        sim.run_until((*n + 1) * PERIOD);
        *n += 1;
    };
    cycle(&mut sim, &mut n);
    cycle(&mut sim, &mut n);
    sim.set_input_by_name("rst_n", Logic::One);
    for &(x, y) in ops {
        drive(&mut sim, &ports_a, x);
        drive(&mut sim, &ports_b, y);
        cycle(&mut sim, &mut n);
        cycle(&mut sim, &mut n);
        cycle(&mut sim, &mut n);
        outputs.push(read(&sim, &product).expect("product resolved"));
    }
    outputs
}

#[test]
fn scpg_multiplier_matches_baseline_on_random_operands() {
    let lib = Library::ninety_nm();
    let (baseline, _) = generate_multiplier(&lib, 8);
    let scpg = ScpgTransform::new(&lib)
        .apply(&baseline, "clk", &ScpgOptions::default())
        .unwrap();

    let mut rng = StdRng::seed_from_u64(7);
    let ops: Vec<(u64, u64)> = (0..12).map(|_| (rng.below(256), rng.below(256))).collect();

    let base_out = run_workload(&baseline, &lib, false, &ops);
    let scpg_out = run_workload(&scpg.netlist, &lib, true, &ops);
    assert_eq!(base_out, scpg_out, "gating must not change results");
    for (out, &(x, y)) in base_out.iter().zip(&ops) {
        assert_eq!(*out, x * y, "{x} × {y}");
    }
}

#[test]
fn override_pin_gives_identical_results_too() {
    // With override asserted the header never gates; functionality must
    // be unchanged either way.
    let lib = Library::ninety_nm();
    let (baseline, _) = generate_multiplier(&lib, 8);
    let scpg = ScpgTransform::new(&lib)
        .apply(&baseline, "clk", &ScpgOptions::default())
        .unwrap();

    let ops = [(3u64, 5u64), (255, 255), (17, 0), (128, 2)];
    let mut sim_ungated = run_with_override(&scpg.netlist, &lib, &ops);
    let gated = run_workload(&scpg.netlist, &lib, true, &ops);
    assert_eq!(gated, std::mem::take(&mut sim_ungated));
}

fn run_with_override(nl: &Netlist, lib: &Library, ops: &[(u64, u64)]) -> Vec<u64> {
    // Same drive as run_workload but with override_n = 0 (forced on).
    let mut sim = Simulator::new(nl, lib, SimConfig::default()).unwrap();
    let ov = nl.net_by_name("scpg_override_n").unwrap();
    sim.set_input(ov, Logic::Zero);
    sim.set_input_by_name("clk", Logic::Zero);
    sim.set_input_by_name("rst_n", Logic::Zero);
    let ports_a: Word = (0..8)
        .map(|i| nl.net_by_name(&format!("a[{i}]")).unwrap())
        .collect();
    let ports_b: Word = (0..8)
        .map(|i| nl.net_by_name(&format!("b[{i}]")).unwrap())
        .collect();
    let product: Word = (0..16)
        .map(|i| nl.net_by_name(&format!("p[{i}]")).unwrap())
        .collect();
    let mut outputs = Vec::new();
    let mut n = 0u64;
    let cycle = |sim: &mut Simulator<'_>, n: &mut u64| {
        sim.run_until(*n * PERIOD);
        sim.set_input_by_name("clk", Logic::One);
        sim.run_until(*n * PERIOD + PERIOD / 2);
        sim.set_input_by_name("clk", Logic::Zero);
        sim.run_until((*n + 1) * PERIOD);
        *n += 1;
    };
    cycle(&mut sim, &mut n);
    cycle(&mut sim, &mut n);
    sim.set_input_by_name("rst_n", Logic::One);
    for &(x, y) in ops {
        drive(&mut sim, &ports_a, x);
        drive(&mut sim, &ports_b, y);
        cycle(&mut sim, &mut n);
        cycle(&mut sim, &mut n);
        cycle(&mut sim, &mut n);
        outputs.push(read(&sim, &product).expect("product resolved"));
    }
    outputs
}
