//! End-to-end tests of the `scpg-serve` HTTP API over real loopback
//! sockets: every endpoint, cache-hit byte-identity, bit-identity of
//! served numbers versus direct library calls, malformed-input handling,
//! deterministic backpressure (429), deadline expiry (504) and graceful
//! shutdown draining in-flight requests.

use scpg::service::Query;
use scpg::transform::{ScpgOptions, ScpgTransform};
use scpg::{Mode, ScpgAnalysis};
use scpg_circuits::generate_multiplier;
use scpg_liberty::{Library, PvtCorner};
use scpg_serve::designs::{DesignKind, DesignSpec};
use scpg_serve::metrics::parse_metric;
use scpg_serve::{api, client, ServeConfig, Server};
use scpg_units::{Frequency, Power};

/// The design every test queries: a 4×4 multiplier (cheap to analyse in
/// debug builds) with the default workload/supply.
const DESIGN: &str = r#"{"kind": "multiplier", "bits": 4}"#;

fn spec() -> DesignSpec {
    DesignSpec {
        kind: DesignKind::Multiplier { bits: 4 },
        ..DesignSpec::default_multiplier()
    }
}

/// The served design, built directly from the library — no serve-crate
/// machinery — for bit-identity assertions.
fn direct_analysis() -> ScpgAnalysis {
    let lib = Library::ninety_nm();
    let (baseline, _) = generate_multiplier(&lib, 4);
    let design = ScpgTransform::new(&lib)
        .apply(&baseline, "clk", &ScpgOptions::default())
        .expect("transform");
    ScpgAnalysis::new(
        &lib,
        &baseline,
        &design,
        spec().e_dyn,
        PvtCorner::at_voltage(spec().vdd),
    )
    .expect("analysis")
}

fn body(rest: &str) -> String {
    format!(r#"{{"design": {DESIGN}, {rest}}}"#)
}

#[test]
fn api_surface_cache_and_bit_identity() {
    let handle = Server::bind(ServeConfig {
        workers: 2,
        ..ServeConfig::default()
    })
    .expect("bind")
    .spawn();
    let addr = handle.addr();

    // Liveness.
    let health = client::get(addr, "/healthz").expect("healthz");
    assert_eq!(health.status, 200);
    assert_eq!(health.text(), r#"{"status":"ok"}"#);

    // Sweep: the served body must be bit-identical to serializing the
    // direct library call — the serving layer adds transport, never
    // numerics.
    let analysis = direct_analysis();
    let freqs = [Frequency::new(1e6), Frequency::new(5e6)];
    let sweep_body = body(r#""frequencies_hz": [1e6, 5e6], "mode": "scpg""#);
    let served = client::post(addr, "/v1/sweep", &sweep_body).expect("sweep");
    assert_eq!(served.status, 200, "{}", served.text());
    let expected = api::sweep_response(&spec(), Mode::Scpg, &analysis.sweep(&freqs, Mode::Scpg))
        .write()
        .into_bytes();
    assert_eq!(served.body, expected, "served sweep != direct library call");

    // Cache hit: the repeat is byte-identical and bumps the hit counter
    // (visible both on the handle and through /metrics).
    let hits_before = handle.metrics().cache_hits;
    let repeat = client::post(addr, "/v1/sweep", &sweep_body).expect("repeat sweep");
    assert_eq!(repeat.status, 200);
    assert_eq!(
        repeat.body, served.body,
        "cache replay must be byte-identical"
    );
    assert_eq!(handle.metrics().cache_hits, hits_before + 1);

    // Key canonicalization: reordered keys and a different deadline are
    // the same cached result.
    let reordered = format!(
        r#"{{"mode": "scpg", "deadline_ms": 9999, "frequencies_hz": [1000000, 5e6], "design": {DESIGN}}}"#
    );
    let canon = client::post(addr, "/v1/sweep", &reordered).expect("reordered sweep");
    assert_eq!(canon.status, 200);
    assert_eq!(canon.body, served.body, "canonicalization missed a hit");

    // Table: also bit-identical to the direct call.
    let table =
        client::post(addr, "/v1/table", &body(r#""frequencies_hz": [2e6]"#)).expect("table");
    assert_eq!(table.status, 200, "{}", table.text());
    let expected = api::table_response(&spec(), &analysis.table(&[Frequency::new(2e6)]))
        .write()
        .into_bytes();
    assert_eq!(table.body, expected, "served table != direct library call");

    // Headline: same query the library answers, same bytes.
    let headline =
        client::post(addr, "/v1/headline", &body(r#""budget_w": 30e-6"#)).expect("headline");
    assert_eq!(headline.status, 200, "{}", headline.text());
    let query = Query::Headline {
        budget: Power::new(30e-6),
        lo: Frequency::new(100.0),
        hi: Frequency::new(50.0e6),
    };
    let expected = match query.run(&analysis) {
        scpg::service::QueryOutcome::Headline(h) => api::headline_response(&spec(), h.as_ref())
            .write()
            .into_bytes(),
        _ => unreachable!(),
    };
    assert_eq!(
        headline.body, expected,
        "served headline != direct library call"
    );

    // Variation: deterministic for a seed, and the sample count obeys
    // the request.
    let variation = client::post(
        addr,
        "/v1/variation",
        r#"{"design": {"kind": "chain", "length": 8}, "samples": 3, "seed": 7}"#,
    )
    .expect("variation");
    assert_eq!(variation.status, 200, "{}", variation.text());
    let doc = scpg_json::Json::parse(variation.text()).expect("variation JSON");
    assert_eq!(
        doc.get("samples")
            .and_then(|s| s.as_array())
            .map(<[_]>::len),
        Some(3)
    );

    // Refusals: malformed JSON is 400 before any engine work; an empty
    // sweep is a 422 admission refusal; unknown routes 404; wrong
    // methods 405.
    let bad = client::post(addr, "/v1/sweep", "{not json").expect("malformed");
    assert_eq!(bad.status, 400);
    assert!(bad.text().contains("error"));
    let empty =
        client::post(addr, "/v1/sweep", &body(r#""frequencies_hz": []"#)).expect("empty sweep");
    assert_eq!(empty.status, 422);
    assert_eq!(client::get(addr, "/v1/nope").expect("404").status, 404);
    assert_eq!(
        client::post(addr, "/metrics", "{}").expect("405").status,
        405
    );

    // /metrics reflects everything above.
    let metrics = client::get(addr, "/metrics").expect("metrics");
    assert_eq!(metrics.status, 200);
    let text = metrics.text();
    assert!(
        parse_metric(text, "scpg_requests_total{endpoint=\"sweep\"}").unwrap_or(0.0) >= 4.0,
        "sweep request counter"
    );
    assert!(
        parse_metric(text, "scpg_cache_hits_total").unwrap_or(0.0) >= 2.0,
        "cache hit counter"
    );
    assert!(
        parse_metric(text, "scpg_responses_total{code=\"400\"}").unwrap_or(0.0) >= 1.0,
        "400 response counter"
    );
    assert_eq!(parse_metric(text, "scpg_worker_threads"), Some(2.0));

    handle.shutdown();
}

#[test]
fn saturated_queue_answers_429_not_hangs() {
    // Two workers, one queue slot, 400 ms per job: six simultaneous
    // distinct requests can admit at most three; the rest must bounce
    // with 429 immediately rather than block or crash.
    let handle = Server::bind(ServeConfig {
        workers: 2,
        queue_capacity: 1,
        debug_job_delay_ms: 400,
        ..ServeConfig::default()
    })
    .expect("bind")
    .spawn();
    let addr = handle.addr();

    let clients: Vec<_> = (0..6)
        .map(|i| {
            std::thread::spawn(move || {
                let req = body(&format!(r#""frequencies_hz": [{}e6]"#, i + 1));
                client::post(addr, "/v1/sweep", &req)
                    .expect("request")
                    .status
            })
        })
        .collect();
    let statuses: Vec<u16> = clients.into_iter().map(|t| t.join().unwrap()).collect();

    let ok = statuses.iter().filter(|&&s| s == 200).count();
    let busy = statuses.iter().filter(|&&s| s == 429).count();
    assert_eq!(ok + busy, 6, "only 200/429 expected, got {statuses:?}");
    assert!(busy >= 1, "queue never saturated: {statuses:?}");
    assert!(ok >= 1, "nothing was admitted: {statuses:?}");
    assert_eq!(handle.metrics().queue_rejections, busy as u64);

    let metrics = client::get(addr, "/metrics").expect("metrics");
    assert_eq!(
        parse_metric(metrics.text(), "scpg_responses_total{code=\"429\"}"),
        Some(busy as f64)
    );
    handle.shutdown();
}

#[test]
fn expired_deadline_answers_504() {
    let handle = Server::bind(ServeConfig {
        workers: 2,
        debug_job_delay_ms: 300,
        ..ServeConfig::default()
    })
    .expect("bind")
    .spawn();
    let addr = handle.addr();

    let req = body(r#""frequencies_hz": [7e6], "deadline_ms": 50"#);
    let resp = client::post(addr, "/v1/sweep", &req).expect("request");
    assert_eq!(resp.status, 504, "{}", resp.text());
    assert!(resp.text().contains("deadline"));
    assert_eq!(handle.metrics().deadline_expirations, 1);
    handle.shutdown();
}

#[test]
fn hostile_bodies_answer_4xx_and_never_wedge_shutdown() {
    let handle = Server::bind(ServeConfig {
        workers: 2,
        ..ServeConfig::default()
    })
    .expect("bind")
    .spawn();
    let addr = handle.addr();

    // A \u escape whose "hex digits" straddle a multi-byte character used
    // to panic the JSON parser on the connection thread (leaking the
    // in-flight gauge and wedging shutdown). It must be a plain 400.
    let split = client::post(addr, "/v1/sweep", "{\"a\":\"\\u00€\"}").expect("split escape");
    assert_eq!(split.status, 400, "{}", split.text());

    // deadline_ms must be an unsigned integer: present-but-wrong is a 422
    // like every other bad field, not a silent fall back to the default.
    for bad in [
        r#""deadline_ms": 1.5"#,
        r#""deadline_ms": "500""#,
        r#""deadline_ms": true"#,
        r#""deadline_ms": -1"#,
    ] {
        let req = body(&format!(r#""frequencies_hz": [1e6], {bad}"#));
        let resp = client::post(addr, "/v1/sweep", &req).expect("bad deadline");
        assert_eq!(resp.status, 422, "{bad}: {}", resp.text());
        assert!(resp.text().contains("deadline_ms"), "{}", resp.text());
    }

    // The service is still healthy and the in-flight gauge recovered, so
    // shutdown drains instead of spinning on a leaked count.
    assert_eq!(client::get(addr, "/healthz").expect("healthz").status, 200);
    let metrics = client::get(addr, "/metrics").expect("metrics");
    assert_eq!(
        parse_metric(metrics.text(), "scpg_responses_total{code=\"422\"}"),
        Some(4.0)
    );
    handle.shutdown();
}

#[test]
fn metrics_histograms_track_requests_served() {
    let handle = Server::bind(ServeConfig {
        workers: 2,
        ..ServeConfig::default()
    })
    .expect("bind")
    .spawn();
    let addr = handle.addr();

    // Three sweeps (one computed, two cache hits) — all must appear in
    // the per-endpoint latency histogram by the time their responses are
    // visible, because the server records before writing.
    let req = body(r#""frequencies_hz": [3e6], "mode": "scpg""#);
    for _ in 0..3 {
        let resp = client::post(addr, "/v1/sweep", &req).expect("sweep");
        assert_eq!(resp.status, 200, "{}", resp.text());
    }

    let metrics = client::get(addr, "/metrics").expect("metrics");
    let text = metrics.text();

    // The end-to-end histogram count equals requests served, which
    // equals the plain request counter.
    let served = parse_metric(text, "scpg_requests_total{endpoint=\"sweep\"}")
        .expect("sweep request counter");
    assert_eq!(served, 3.0);
    let count = parse_metric(
        text,
        "scpg_request_duration_seconds_count{endpoint=\"sweep\"}",
    )
    .expect("request histogram count");
    assert_eq!(count, served, "histogram count != requests served");
    let inf_bucket = parse_metric(
        text,
        "scpg_request_duration_seconds_bucket{endpoint=\"sweep\",le=\"+Inf\"}",
    )
    .expect("+Inf bucket");
    assert_eq!(inf_bucket, count, "+Inf cumulative bucket != count");
    let sum = parse_metric(
        text,
        "scpg_request_duration_seconds_sum{endpoint=\"sweep\"}",
    )
    .expect("request histogram sum");
    assert!(sum > 0.0, "three served requests took zero seconds?");

    // Per-stage series: every request parses and looks up the cache; the
    // computed one also queued and executed.
    for stage in ["parse", "cache_lookup", "queue_wait", "execute", "wait"] {
        let c = parse_metric(
            text,
            &format!("scpg_stage_duration_seconds_count{{stage=\"{stage}\"}}"),
        )
        .unwrap_or_else(|| panic!("missing stage histogram {stage:?}"));
        assert!(c >= 1.0, "stage {stage:?} never recorded");
    }

    // The engine-stage histograms from scpg-trace's global registry ride
    // along in the same exposition text.
    assert!(
        text.contains("scpg_engine_stage_duration_seconds"),
        "engine stages missing from /metrics"
    );

    // Monotonic: more requests can only grow count and sum.
    let resp = client::post(addr, "/v1/sweep", &req).expect("sweep again");
    assert_eq!(resp.status, 200);
    let metrics2 = client::get(addr, "/metrics").expect("metrics again");
    let text2 = metrics2.text();
    let count2 = parse_metric(
        text2,
        "scpg_request_duration_seconds_count{endpoint=\"sweep\"}",
    )
    .expect("request histogram count (second fetch)");
    let sum2 = parse_metric(
        text2,
        "scpg_request_duration_seconds_sum{endpoint=\"sweep\"}",
    )
    .expect("request histogram sum (second fetch)");
    assert_eq!(count2, count + 1.0);
    assert!(sum2 >= sum, "histogram sum went backwards: {sum2} < {sum}");

    handle.shutdown();
}

#[test]
fn trace_ids_echo_and_traces_endpoints_introspect() {
    let handle = Server::bind(ServeConfig {
        workers: 2,
        ..ServeConfig::default()
    })
    .expect("bind")
    .spawn();
    let addr = handle.addr();

    // No header: the server generates an id and echoes it.
    let req = body(r#""frequencies_hz": [1e6], "mode": "scpg""#);
    let resp = client::post(addr, "/v1/sweep", &req).expect("sweep");
    assert_eq!(resp.status, 200, "{}", resp.text());
    let generated = resp
        .header("x-scpg-trace-id")
        .expect("trace id echoed")
        .to_string();
    assert!(
        scpg_trace::valid_trace_id(&generated),
        "generated id {generated:?} fails its own validator"
    );

    // A client-supplied id is used verbatim...
    let resp2 = client::post_traced(addr, "/v1/sweep", &req, "trace-test.1").expect("sweep");
    assert_eq!(resp2.status, 200);
    assert_eq!(resp2.header("x-scpg-trace-id"), Some("trace-test.1"));

    // ...but an invalid one is replaced with a generated id, never
    // echoed back into the response head.
    let resp3 = client::post_traced(addr, "/v1/sweep", &req, "bad id with spaces").expect("sweep");
    let echoed = resp3.header("x-scpg-trace-id").expect("echo");
    assert_ne!(echoed, "bad id with spaces");
    assert!(scpg_trace::valid_trace_id(echoed));

    // The store lists the supplied id (recent-first summaries)...
    let list = client::get(addr, "/v1/traces").expect("traces");
    assert_eq!(list.status, 200, "{}", list.text());
    let ldoc = scpg_json::Json::parse(list.text()).unwrap();
    let ids: Vec<String> = ldoc
        .get("traces")
        .and_then(|t| t.as_array())
        .expect("traces array")
        .iter()
        .filter_map(|t| t.get("id").and_then(|i| i.as_str().map(String::from)))
        .collect();
    assert!(ids.contains(&"trace-test.1".to_string()), "{ids:?}");
    assert!(ids.contains(&generated), "{ids:?}");

    // ...and the detail shows the stage spans plus the `request`
    // umbrella span with its endpoint/status/cache/engine annotations.
    let detail = client::get(addr, "/v1/traces/trace-test.1").expect("detail");
    assert_eq!(detail.status, 200, "{}", detail.text());
    let ddoc = scpg_json::Json::parse(detail.text()).unwrap();
    let spans = ddoc.get("spans").and_then(|s| s.as_array()).unwrap();
    assert!(!spans.is_empty());
    let stage_names: Vec<&str> = spans
        .iter()
        .filter_map(|s| s.get("stage").and_then(|v| v.as_str()))
        .collect();
    assert!(stage_names.contains(&"parse"), "{stage_names:?}");
    assert!(stage_names.contains(&"request"), "{stage_names:?}");
    let request_span = spans
        .iter()
        .find(|s| s.get("stage").and_then(|v| v.as_str()) == Some("request"))
        .unwrap();
    let ann = request_span.get("annotations").unwrap();
    assert_eq!(ann.get("endpoint").and_then(|v| v.as_str()), Some("sweep"));
    assert_eq!(ann.get("status").and_then(|v| v.as_str()), Some("200"));
    // This body was already computed under the generated id, so the
    // supplied-id repeat was a cache hit and no engine work is claimed.
    assert_eq!(ann.get("cache").and_then(|v| v.as_str()), Some("hit"));

    // The first (computed) request's trace carries the worker-side
    // engine-work annotations.
    let first = client::get(addr, &format!("/v1/traces/{generated}")).expect("detail");
    let fdoc = scpg_json::Json::parse(first.text()).unwrap();
    let fspans = fdoc.get("spans").and_then(|s| s.as_array()).unwrap();
    let frequest = fspans
        .iter()
        .find(|s| s.get("stage").and_then(|v| v.as_str()) == Some("request"))
        .unwrap();
    let fann = frequest.get("annotations").unwrap();
    assert_eq!(fann.get("cache").and_then(|v| v.as_str()), Some("miss"));
    assert!(fann.get("design").is_some(), "{}", first.text());
    assert!(fann.get("sim_events").is_some(), "{}", first.text());
    assert!(fann.get("exec_tasks").is_some(), "{}", first.text());

    // Unknown trace: 404. Wrong method: 405.
    assert_eq!(client::get(addr, "/v1/traces/absent").unwrap().status, 404);
    assert_eq!(client::post(addr, "/v1/traces", "{}").unwrap().status, 405);

    handle.shutdown();
}

/// Satellite lint: the full `/metrics` exposition over loopback obeys
/// the Prometheus text format — exactly one `# HELP` and `# TYPE` per
/// family, no duplicate series, and cumulative histogram buckets that
/// are monotone with `+Inf` equal to the count.
#[test]
fn metrics_exposition_passes_prometheus_text_lint() {
    let handle = Server::bind(ServeConfig {
        workers: 2,
        ..ServeConfig::default()
    })
    .expect("bind")
    .spawn();
    let addr = handle.addr();

    // Exercise enough endpoints that histograms and counters are live.
    let req = body(r#""frequencies_hz": [1e6, 4e6], "mode": "scpg""#);
    assert_eq!(client::post(addr, "/v1/sweep", &req).unwrap().status, 200);
    assert_eq!(client::post(addr, "/v1/sweep", &req).unwrap().status, 200);
    assert_eq!(client::get(addr, "/healthz").unwrap().status, 200);

    let metrics = client::get(addr, "/metrics").expect("metrics");
    assert_eq!(metrics.status, 200);
    let text = metrics.text();

    let mut help_count: std::collections::HashMap<&str, u32> = std::collections::HashMap::new();
    let mut type_count: std::collections::HashMap<&str, u32> = std::collections::HashMap::new();
    let mut family_type: std::collections::HashMap<&str, &str> = std::collections::HashMap::new();
    let mut series_seen: std::collections::HashSet<&str> = std::collections::HashSet::new();
    for line in text.lines() {
        if let Some(rest) = line.strip_prefix("# HELP ") {
            let name = rest.split_whitespace().next().expect("HELP names a family");
            *help_count.entry(name).or_insert(0) += 1;
        } else if let Some(rest) = line.strip_prefix("# TYPE ") {
            let mut parts = rest.split_whitespace();
            let name = parts.next().expect("TYPE names a family");
            let ty = parts.next().expect("TYPE carries a type");
            *type_count.entry(name).or_insert(0) += 1;
            family_type.insert(name, ty);
        } else if !line.is_empty() {
            let series = line.rsplit_once(' ').expect("sample has a value").0;
            assert!(
                series_seen.insert(series),
                "duplicate series in /metrics: {series}"
            );
        }
    }
    assert!(!family_type.is_empty(), "no TYPE lines at all?");
    for (name, n) in &help_count {
        assert_eq!(*n, 1, "family {name} has {n} HELP lines");
    }
    for (name, n) in &type_count {
        assert_eq!(*n, 1, "family {name} has {n} TYPE lines");
        assert!(
            help_count.contains_key(name),
            "family {name} has TYPE but no HELP"
        );
    }

    // Every sample belongs to a declared family (histograms declare the
    // base name and emit _bucket/_sum/_count series).
    for series in &series_seen {
        let name = series.split('{').next().unwrap();
        let base = name
            .strip_suffix("_bucket")
            .or_else(|| name.strip_suffix("_sum"))
            .or_else(|| name.strip_suffix("_count"))
            .filter(|b| family_type.get(b) == Some(&"histogram"))
            .unwrap_or(name);
        assert!(
            family_type.contains_key(base),
            "series {series} has no HELP/TYPE declaration"
        );
    }

    // Histogram buckets: grouped by label set, cumulative and monotone,
    // with the +Inf bucket equal to the series count.
    for (family, ty) in &family_type {
        if *ty != "histogram" {
            continue;
        }
        // label set (minus `le`) -> ordered (le, cumulative count).
        let mut groups: std::collections::HashMap<String, Vec<(f64, f64)>> =
            std::collections::HashMap::new();
        for line in text.lines() {
            let Some(rest) = line.strip_prefix(&format!("{family}_bucket{{")) else {
                continue;
            };
            let (labels, value) = rest.rsplit_once(' ').expect("bucket value");
            let labels = labels.strip_suffix('}').expect("closing brace");
            let mut le = None;
            let mut others: Vec<&str> = Vec::new();
            for part in labels.split(',') {
                match part.strip_prefix("le=\"") {
                    Some(v) => le = Some(v.trim_end_matches('"').to_string()),
                    None => others.push(part),
                }
            }
            let le = le.expect("bucket without le");
            let le_value = if le == "+Inf" {
                f64::INFINITY
            } else {
                le.parse::<f64>().expect("le is a number")
            };
            groups
                .entry(others.join(","))
                .or_default()
                .push((le_value, value.parse::<f64>().expect("count")));
        }
        for (labels, buckets) in groups {
            for pair in buckets.windows(2) {
                assert!(
                    pair[0].0 < pair[1].0,
                    "{family}{{{labels}}} buckets out of order"
                );
                assert!(
                    pair[0].1 <= pair[1].1,
                    "{family}{{{labels}}} cumulative counts not monotone"
                );
            }
            let (last_le, last_count) = *buckets.last().expect("at least +Inf");
            assert!(last_le.is_infinite(), "{family}{{{labels}}} missing +Inf");
            let count_series = if labels.is_empty() {
                format!("{family}_count")
            } else {
                format!("{family}_count{{{labels}}}")
            };
            let count = parse_metric(text, &count_series)
                .unwrap_or_else(|| panic!("missing {count_series}"));
            assert_eq!(
                last_count, count,
                "{family}{{{labels}}}: +Inf bucket != count"
            );
        }
    }

    handle.shutdown();
}

/// `/v1/activity` loopback differential: one server forced onto the
/// event engine, one forced onto the bit-parallel engine, one on auto.
/// All three must serve byte-identical bodies (each has its own result
/// cache, so each computes independently); the process-wide bit-parallel
/// counters prove which engine actually ran — zero motion for the forced
/// event server, one lane count's worth for the forced bit-parallel
/// server, and the same again for auto, i.e. auto took the fast path.
#[test]
fn activity_endpoint_is_engine_invariant_and_fast_by_default() {
    use scpg_sim::EngineChoice;
    let cfg = |force_engine| ServeConfig {
        workers: 2,
        force_engine,
        ..ServeConfig::default()
    };
    let event = Server::bind(cfg(EngineChoice::Event))
        .expect("bind")
        .spawn();
    let bitpar = Server::bind(cfg(EngineChoice::BitParallel))
        .expect("bind")
        .spawn();
    let auto = Server::bind(cfg(EngineChoice::Auto)).expect("bind").spawn();
    let req = body(r#""cycles": 12, "lanes": 24, "seed": 42"#);

    let before = scpg_sim::bitpar_totals();
    let served_event = client::post(event.addr(), "/v1/activity", &req).expect("activity");
    assert_eq!(served_event.status, 200, "{}", served_event.text());
    let after_event = scpg_sim::bitpar_totals();
    assert_eq!(
        after_event.lanes, before.lanes,
        "forced event engine must not touch the bit-parallel counters"
    );

    let served_bitpar = client::post(bitpar.addr(), "/v1/activity", &req).expect("activity");
    assert_eq!(served_bitpar.status, 200, "{}", served_bitpar.text());
    let after_bitpar = scpg_sim::bitpar_totals();
    assert_eq!(
        after_bitpar.lanes - after_event.lanes,
        24,
        "forced bit-parallel run must account its lanes"
    );
    assert!(
        after_bitpar.words_evaluated > after_event.words_evaluated,
        "bit-parallel run evaluated no words?"
    );
    assert_eq!(
        served_bitpar.body, served_event.body,
        "engines must serve byte-identical activity responses"
    );

    let served_auto = client::post(auto.addr(), "/v1/activity", &req).expect("activity");
    assert_eq!(served_auto.status, 200, "{}", served_auto.text());
    assert_eq!(served_auto.body, served_event.body);
    let after_auto = scpg_sim::bitpar_totals();
    assert_eq!(
        after_auto.lanes - after_bitpar.lanes,
        24,
        "auto must take the bit-parallel fast path for this design"
    );

    // The served body is bit-identical to the direct library call.
    let lib = Library::ninety_nm();
    let (baseline, _) = generate_multiplier(&lib, 4);
    let compiled =
        scpg_sim::CompiledNetlist::compile(&baseline, &lib, PvtCorner::at_voltage(spec().vdd))
            .expect("compile");
    let report = scpg::extract_activity(&compiled, "clk", 12, 24, 42, EngineChoice::Auto)
        .expect("direct extraction");
    let expected = api::activity_response(&spec(), &report)
        .write()
        .into_bytes();
    assert_eq!(
        served_event.body, expected,
        "served activity != direct library call"
    );
    let doc = scpg_json::Json::parse(served_event.text()).unwrap();
    assert!(doc.get("total_toggles").unwrap().as_u64().unwrap() > 0);
    assert!(
        doc.get("engine").is_none(),
        "engine must not leak into the body"
    );

    // Flop-free designs (no clock net) still extract; bad shapes refuse;
    // wrong method is 405; the request counter is live.
    let chain = client::post(
        auto.addr(),
        "/v1/activity",
        r#"{"design": {"kind": "chain", "length": 8}, "cycles": 4, "lanes": 8}"#,
    )
    .expect("chain activity");
    assert_eq!(chain.status, 200, "{}", chain.text());
    let over = client::post(auto.addr(), "/v1/activity", &body(r#""cycles": 100000"#)).unwrap();
    assert_eq!(over.status, 422, "{}", over.text());
    assert_eq!(
        client::get(auto.addr(), "/v1/activity").unwrap().status,
        405
    );
    let metrics = client::get(auto.addr(), "/metrics").expect("metrics");
    assert!(
        parse_metric(metrics.text(), "scpg_requests_total{endpoint=\"activity\"}").unwrap_or(0.0)
            >= 2.0
    );
    assert!(
        parse_metric(metrics.text(), "scpg_sim_bitpar_lanes_total").unwrap_or(0.0)
            >= after_auto.lanes as f64
    );

    event.shutdown();
    bitpar.shutdown();
    auto.shutdown();
}

#[test]
fn trickled_header_request_is_served() {
    let handle = Server::bind(ServeConfig {
        workers: 2,
        ..ServeConfig::default()
    })
    .expect("bind")
    .spawn();
    let addr = handle.addr();

    // Send the request one byte per write with explicit flushes — the
    // worst case for the incremental head scan.
    use std::io::{Read, Write};
    let mut stream = std::net::TcpStream::connect(addr).expect("connect");
    for &b in b"GET /healthz HTTP/1.1\r\nhost: scpg\r\nconnection: close\r\n\r\n".iter() {
        stream.write_all(&[b]).expect("write byte");
        stream.flush().expect("flush");
    }
    let mut response = String::new();
    stream.read_to_string(&mut response).expect("read response");
    assert!(
        response.starts_with("HTTP/1.1 200"),
        "trickled request failed: {response}"
    );
    assert!(response.ends_with(r#"{"status":"ok"}"#), "{response}");

    handle.shutdown();
}

#[test]
fn client_disconnecting_mid_body_leaves_server_healthy() {
    let handle = Server::bind(ServeConfig {
        workers: 2,
        ..ServeConfig::default()
    })
    .expect("bind")
    .spawn();
    let addr = handle.addr();

    // Promise 100 body bytes, deliver 10, vanish. The server sees EOF
    // inside the body and must just drop the connection — no panic, no
    // leaked in-flight count.
    {
        use std::io::Write;
        let mut stream = std::net::TcpStream::connect(addr).expect("connect");
        stream
            .write_all(b"POST /v1/sweep HTTP/1.1\r\nhost: scpg\r\ncontent-length: 100\r\n\r\n{\"partial\":")
            .expect("partial write");
        stream.flush().expect("flush");
    } // dropped here: RST/FIN mid-body

    // The service still answers, and shutdown drains rather than hanging
    // on a connection count the aborted request might have leaked.
    let health = client::get(addr, "/healthz").expect("healthz after abort");
    assert_eq!(health.status, 200);
    handle.shutdown();
}

#[test]
fn graceful_shutdown_drains_in_flight_requests() {
    let handle = Server::bind(ServeConfig {
        workers: 2,
        debug_job_delay_ms: 300,
        ..ServeConfig::default()
    })
    .expect("bind")
    .spawn();
    let addr = handle.addr();

    // A slow request is in flight when shutdown begins; it must still be
    // answered (200), not dropped.
    let in_flight = std::thread::spawn(move || {
        let req = body(r#""frequencies_hz": [9e6]"#);
        client::post(addr, "/v1/sweep", &req).expect("in-flight request")
    });
    std::thread::sleep(std::time::Duration::from_millis(100));
    handle.shutdown();

    let resp = in_flight.join().expect("client thread");
    assert_eq!(resp.status, 200, "{}", resp.text());

    // After shutdown the listener is gone: new connections are refused.
    assert!(
        client::get(addr, "/healthz").is_err(),
        "listener still accepting after shutdown"
    );
}
