//! The paper's strongest implicit claim, checked on the CPU: a processor
//! whose combinational cloud is power gated *inside every clock cycle*
//! still executes programs correctly. We run the Dhrystone-class workload
//! on the plain core while recording the per-cycle memory stimulus, then
//! replay that stimulus through the SCPG-transformed netlist with gating
//! active, and require identical architectural state.

use scpg::transform::{ScpgOptions, ScpgTransform};
use scpg_circuits::{generate_cpu, CpuHarness};
use scpg_isa::dhrystone;
use scpg_liberty::{Library, Logic};
use scpg_sim::{SimConfig, Simulator};

const PERIOD: u64 = 1_000_000;
const RESET_CYCLES: u64 = 3;

fn replay_at_duty(duty: f64) {
    let lib = Library::ninety_nm();
    let (baseline, ports) = generate_cpu(&lib);
    let iters = 2;
    let program = dhrystone::assemble(iters).unwrap();

    // Reference run with memory servicing, recording the stimulus trace.
    let mut sim = Simulator::new(&baseline, &lib, SimConfig::default()).unwrap();
    let mut harness = CpuHarness::new(program, dhrystone::memory_image());
    harness.reset(&mut sim, &ports, PERIOD, RESET_CYCLES);
    assert!(harness.run_to_halt(&mut sim, &ports, PERIOD, 5_000));
    assert_eq!(
        harness.mem(dhrystone::CHECKSUM_ADDR),
        dhrystone::expected_checksum(iters)
    );
    let golden_regs: Vec<u32> = (0..8).map(|k| harness.reg(&sim, &ports, k)).collect();
    let trace = harness.trace().to_vec();

    // SCPG design: same netlist ids survive the transform (the rewrite
    // only appends), so the baseline port handles remain valid.
    let scpg = ScpgTransform::new(&lib)
        .apply(&baseline, "clk", &ScpgOptions::default())
        .unwrap();
    let mut gated_sim = Simulator::new(&scpg.netlist, &lib, SimConfig::default()).unwrap();
    gated_sim.set_input(scpg.override_n, Logic::One); // gating ACTIVE
    CpuHarness::replay(&trace, &mut gated_sim, &ports, PERIOD, duty, RESET_CYCLES);

    assert_eq!(
        gated_sim.value(ports.halted),
        Logic::One,
        "gated core must reach HALT like the baseline (duty {duty})"
    );
    for (k, golden) in golden_regs.iter().enumerate().take(8) {
        let mut v = 0u32;
        for (i, &bit) in ports.regs[k].bits().iter().enumerate() {
            match gated_sim.value(bit).to_bool() {
                Some(true) => v |= 1 << i,
                Some(false) => {}
                None => panic!("r{k} bit {i} is X after the run (duty {duty})"),
            }
        }
        assert_eq!(v, *golden, "r{k} differs under sub-clock gating");
    }
}

#[test]
fn gated_cpu_executes_dhrystone_identically() {
    replay_at_duty(0.5);
}

/// The SCPG-Max configuration: the domain is gated for 85 % of every
/// cycle, leaving a 150 ns evaluation window — still ample for the
/// core's ≈45 ns `T_eval`, so execution must stay bit-identical.
#[test]
fn gated_cpu_survives_scpg_max_duty() {
    replay_at_duty(0.85);
}
