//! Property-based tests across the stack: randomly constructed circuits
//! keep their invariants through synthesis, timing, transformation and
//! simulation — and random programs execute identically on the ISS and
//! the gate-level pipeline.

use proptest::prelude::*;

use scpg::transform::{ScpgOptions, ScpgTransform};
use scpg_circuits::{generate_cpu, CpuHarness};
use scpg_isa::{Instruction, Iss, Reg};
use scpg_liberty::{Library, Logic};
use scpg_netlist::NetId;
use scpg_sim::{SimConfig, Simulator};
use scpg_synth::{prune_unused, LogicBuilder};
use scpg_units::Voltage;

/// A recipe for one random combinational gate.
#[derive(Debug, Clone, Copy)]
enum GateOp {
    Not(usize),
    And(usize, usize),
    Or(usize, usize),
    Xor(usize, usize),
    Mux(usize, usize, usize),
}

fn gate_strategy(pool: usize) -> impl Strategy<Value = GateOp> {
    prop_oneof![
        (0..pool).prop_map(GateOp::Not),
        (0..pool, 0..pool).prop_map(|(a, b)| GateOp::And(a, b)),
        (0..pool, 0..pool).prop_map(|(a, b)| GateOp::Or(a, b)),
        (0..pool, 0..pool).prop_map(|(a, b)| GateOp::Xor(a, b)),
        (0..pool, 0..pool, 0..pool).prop_map(|(s, a, b)| GateOp::Mux(s, a, b)),
    ]
}

/// Builds a random registered circuit: 4 inputs, a cloud of random gates,
/// one registered output per final net.
fn build_random(ops: &[GateOp], lib: &Library) -> scpg_netlist::Netlist {
    let mut b = LogicBuilder::new("rand", lib);
    let clk = b.input("clk");
    let rn = b.input("rst_n");
    let mut pool: Vec<NetId> = (0..4).map(|i| b.input(&format!("in{i}"))).collect();
    for op in ops {
        let n = pool.len();
        let g = |i: usize| pool[i % n];
        let out = match *op {
            GateOp::Not(a) => b.not(g(a)),
            GateOp::And(a, c) => b.and(g(a), g(c)),
            GateOp::Or(a, c) => b.or(g(a), g(c)),
            GateOp::Xor(a, c) => b.xor(g(a), g(c)),
            GateOp::Mux(s, a, c) => b.mux(g(s), g(a), g(c)),
        };
        pool.push(out);
    }
    let last = *pool.last().expect("non-empty pool");
    let q = b.dff_r(last, clk, rn);
    b.output("q", q);
    b.finish()
}

proptest! {
    #![proptest_config(ProptestConfig { cases: 24, ..ProptestConfig::default() })]

    /// Any random circuit the builder produces validates, has acyclic
    /// timing, and survives the SCPG transform with its invariants.
    #[test]
    fn random_circuits_survive_the_whole_flow(
        ops in proptest::collection::vec(gate_strategy(16), 3..40)
    ) {
        let lib = Library::ninety_nm();
        let nl = build_random(&ops, &lib);
        prop_assert!(nl.validate(&lib).is_ok());

        // Timing is well-defined and positive.
        let t = scpg_sta::analyze(&nl, &lib, Voltage::from_mv(600.0)).unwrap();
        prop_assert!(t.t_eval.value() > 0.0);

        // SCPG transform keeps the netlist valid, gates only logic, and
        // never grows the sequential count.
        if let Ok(design) = ScpgTransform::new(&lib).apply(&nl, "clk", &ScpgOptions::default()) {
            prop_assert!(design.netlist.validate(&lib).is_ok());
            let s0 = nl.stats(&lib);
            let s1 = design.netlist.stats(&lib);
            prop_assert_eq!(s0.sequential, s1.sequential);
            prop_assert!(s1.gated.sequential == 0);
            prop_assert!(s1.area.value() >= s0.area.value());
        }
    }

    /// Pruning is idempotent and never breaks validation.
    #[test]
    fn prune_is_idempotent(
        ops in proptest::collection::vec(gate_strategy(12), 3..30)
    ) {
        let lib = Library::ninety_nm();
        let mut nl = build_random(&ops, &lib);
        let _removed = prune_unused(&mut nl, &lib).unwrap();
        prop_assert!(nl.validate(&lib).is_ok());
        let second = prune_unused(&mut nl, &lib).unwrap();
        prop_assert_eq!(second, 0, "second prune must remove nothing");
    }

    /// Structural Verilog emission followed by parsing preserves every
    /// structural property (cells, ports, connectivity-derived stats and
    /// the STA result) of arbitrary circuits.
    #[test]
    fn verilog_round_trip_preserves_structure(
        ops in proptest::collection::vec(gate_strategy(10), 3..30)
    ) {
        let lib = Library::ninety_nm();
        let nl = build_random(&ops, &lib);
        let text = scpg_netlist::emit_verilog(&nl, &lib).unwrap();
        let back = scpg_netlist::parse_verilog(&text, &lib).unwrap();
        prop_assert!(back.validate(&lib).is_ok());
        prop_assert_eq!(back.instances().len(), nl.instances().len());
        prop_assert_eq!(back.ports().len(), nl.ports().len());
        let s0 = nl.stats(&lib);
        let s1 = back.stats(&lib);
        prop_assert_eq!(&s0.by_cell, &s1.by_cell);
        let v = Voltage::from_mv(600.0);
        let t0 = scpg_sta::analyze(&nl, &lib, v).unwrap().t_eval;
        let t1 = scpg_sta::analyze(&back, &lib, v).unwrap().t_eval;
        prop_assert!((t0.value() - t1.value()).abs() < 1e-18);
    }
}

/// A strategy for short, halting tm16 programs: straight-line arithmetic
/// with bounded forward branches, capped by a HALT.
fn program_strategy() -> impl Strategy<Value = Vec<Instruction>> {
    let inst = prop_oneof![
        (0u8..8, 0u16..512).prop_map(|(rd, imm)| Instruction::Movi { rd: Reg::new(rd), imm }),
        (0u8..8, -256i16..256).prop_map(|(rd, imm)| Instruction::Addi { rd: Reg::new(rd), imm }),
        (0u8..8, 0u8..8, 0u16..8).prop_map(|(rd, rs, f)| Instruction::Alu {
            op: scpg_isa::AluOp::from_code(f),
            rd: Reg::new(rd),
            rs: Reg::new(rs),
        }),
        (0u8..8, 0u8..8).prop_map(|(rd, rs)| Instruction::Mul {
            rd: Reg::new(rd),
            rs: Reg::new(rs)
        }),
        (0u8..8, 0u8..8, 0u16..32).prop_map(|(rd, rs, off)| Instruction::Ld {
            rd: Reg::new(rd),
            rs: Reg::new(rs),
            off,
        }),
        (0u8..8, 0u8..8, 0u16..32).prop_map(|(rd, rs, off)| Instruction::St {
            rd: Reg::new(rd),
            rs: Reg::new(rs),
            off,
        }),
        // Forward-only branches keep every program terminating.
        (0u8..8, 0u8..8, 1i16..4).prop_map(|(rd, rs, off)| Instruction::Beq {
            rd: Reg::new(rd),
            rs: Reg::new(rs),
            off,
        }),
        (0u8..8, 0u8..8, 1i16..4).prop_map(|(rd, rs, off)| Instruction::Bne {
            rd: Reg::new(rd),
            rs: Reg::new(rs),
            off,
        }),
    ];
    proptest::collection::vec(inst, 1..18).prop_map(|mut v| {
        // Pad the tail so forward branches always land inside the program.
        v.extend([Instruction::Nop; 4]);
        v.push(Instruction::Halt);
        v
    })
}

proptest! {
    #![proptest_config(ProptestConfig { cases: 6, ..ProptestConfig::default() })]

    /// The gate-level pipeline and the ISS agree on every architectural
    /// register and all touched memory for arbitrary short programs.
    #[test]
    fn gate_level_cpu_matches_iss(program in program_strategy()) {
        let words: Vec<u16> = program.iter().map(|i| i.encode()).collect();

        // Golden: the ISS.
        let mut iss = Iss::with_memory(&words, vec![0xA5A5_5A5A; 64]);
        iss.run(10_000);
        prop_assert!(iss.halted());

        // Gate level.
        let lib = Library::ninety_nm();
        let (nl, ports) = generate_cpu(&lib);
        let mut sim = Simulator::new(&nl, &lib, SimConfig::default()).unwrap();
        let mut harness = CpuHarness::new(words, vec![0xA5A5_5A5A; 64]);
        harness.reset(&mut sim, &ports, 1_000_000, 3);
        let halted = harness.run_to_halt(&mut sim, &ports, 1_000_000, 400);
        prop_assert!(halted, "gate-level core must halt");
        prop_assert_eq!(sim.value(ports.halted), Logic::One);

        for k in 0..8 {
            prop_assert_eq!(
                harness.reg(&sim, &ports, k),
                iss.reg(k),
                "r{} mismatch", k
            );
        }
        for addr in 0..64 {
            prop_assert_eq!(harness.mem(addr), iss.mem(addr), "mem[{}]", addr);
        }
    }
}
