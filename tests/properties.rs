//! Property-based tests across the stack: randomly constructed circuits
//! keep their invariants through synthesis, timing, transformation and
//! simulation — and random programs execute identically on the ISS and
//! the gate-level pipeline.
//!
//! The random-case driver is a seeded [`scpg_rng::StdRng`] loop (the
//! container carries no external property-testing harness): every case is
//! reproducible from the printed seed, and each property keeps the same
//! case counts and invariants the original harness checked.

use scpg::transform::{ScpgOptions, ScpgTransform};
use scpg_circuits::{generate_cpu, CpuHarness};
use scpg_isa::{Instruction, Iss, Reg};
use scpg_liberty::{Library, Logic};
use scpg_netlist::NetId;
use scpg_rng::StdRng;
use scpg_sim::{SimConfig, Simulator};
use scpg_synth::{prune_unused, LogicBuilder};
use scpg_units::Voltage;

/// A recipe for one random combinational gate.
#[derive(Debug, Clone, Copy)]
enum GateOp {
    Not(usize),
    And(usize, usize),
    Or(usize, usize),
    Xor(usize, usize),
    Mux(usize, usize, usize),
}

/// Draws one random gate whose operand indices are below `pool`.
fn random_gate(rng: &mut StdRng, pool: usize) -> GateOp {
    match rng.index(5) {
        0 => GateOp::Not(rng.index(pool)),
        1 => GateOp::And(rng.index(pool), rng.index(pool)),
        2 => GateOp::Or(rng.index(pool), rng.index(pool)),
        3 => GateOp::Xor(rng.index(pool), rng.index(pool)),
        _ => GateOp::Mux(rng.index(pool), rng.index(pool), rng.index(pool)),
    }
}

/// Draws a random gate list of length in `[lo, hi)`.
fn random_ops(rng: &mut StdRng, pool: usize, lo: usize, hi: usize) -> Vec<GateOp> {
    let n = lo + rng.index(hi - lo);
    (0..n).map(|_| random_gate(rng, pool)).collect()
}

/// Builds a random registered circuit: 4 inputs, a cloud of random gates,
/// one registered output per final net.
fn build_random(ops: &[GateOp], lib: &Library) -> scpg_netlist::Netlist {
    let mut b = LogicBuilder::new("rand", lib);
    let clk = b.input("clk");
    let rn = b.input("rst_n");
    let mut pool: Vec<NetId> = (0..4).map(|i| b.input(&format!("in{i}"))).collect();
    for op in ops {
        let n = pool.len();
        let g = |i: usize| pool[i % n];
        let out = match *op {
            GateOp::Not(a) => b.not(g(a)),
            GateOp::And(a, c) => b.and(g(a), g(c)),
            GateOp::Or(a, c) => b.or(g(a), g(c)),
            GateOp::Xor(a, c) => b.xor(g(a), g(c)),
            GateOp::Mux(s, a, c) => b.mux(g(s), g(a), g(c)),
        };
        pool.push(out);
    }
    let last = *pool.last().expect("non-empty pool");
    let q = b.dff_r(last, clk, rn);
    b.output("q", q);
    b.finish()
}

/// Any random circuit the builder produces validates, has acyclic
/// timing, and survives the SCPG transform with its invariants.
#[test]
fn random_circuits_survive_the_whole_flow() {
    let lib = Library::ninety_nm();
    let mut rng = StdRng::seed_from_u64(0x1A70);
    for case in 0..24 {
        let ops = random_ops(&mut rng, 16, 3, 40);
        let nl = build_random(&ops, &lib);
        assert!(nl.validate(&lib).is_ok(), "case {case}");

        // Timing is well-defined and positive.
        let t = scpg_sta::analyze(&nl, &lib, Voltage::from_mv(600.0)).unwrap();
        assert!(t.t_eval.value() > 0.0, "case {case}");

        // SCPG transform keeps the netlist valid, gates only logic, and
        // never grows the sequential count.
        if let Ok(design) = ScpgTransform::new(&lib).apply(&nl, "clk", &ScpgOptions::default()) {
            assert!(design.netlist.validate(&lib).is_ok(), "case {case}");
            let s0 = nl.stats(&lib);
            let s1 = design.netlist.stats(&lib);
            assert_eq!(s0.sequential, s1.sequential, "case {case}");
            assert!(s1.gated.sequential == 0, "case {case}");
            assert!(s1.area.value() >= s0.area.value(), "case {case}");
        }
    }
}

/// Pruning is idempotent and never breaks validation.
#[test]
fn prune_is_idempotent() {
    let lib = Library::ninety_nm();
    let mut rng = StdRng::seed_from_u64(0x9121);
    for case in 0..24 {
        let ops = random_ops(&mut rng, 12, 3, 30);
        let mut nl = build_random(&ops, &lib);
        let _removed = prune_unused(&mut nl, &lib).unwrap();
        assert!(nl.validate(&lib).is_ok(), "case {case}");
        let second = prune_unused(&mut nl, &lib).unwrap();
        assert_eq!(second, 0, "case {case}: second prune must remove nothing");
    }
}

/// Structural Verilog emission followed by parsing preserves every
/// structural property (cells, ports, connectivity-derived stats and
/// the STA result) of arbitrary circuits.
#[test]
fn verilog_round_trip_preserves_structure() {
    let lib = Library::ninety_nm();
    let mut rng = StdRng::seed_from_u64(0x0DDC);
    for case in 0..24 {
        let ops = random_ops(&mut rng, 10, 3, 30);
        let nl = build_random(&ops, &lib);
        let text = scpg_netlist::emit_verilog(&nl, &lib).unwrap();
        let back = scpg_netlist::parse_verilog(&text, &lib).unwrap();
        assert!(back.validate(&lib).is_ok(), "case {case}");
        assert_eq!(back.instances().len(), nl.instances().len(), "case {case}");
        assert_eq!(back.ports().len(), nl.ports().len(), "case {case}");
        let s0 = nl.stats(&lib);
        let s1 = back.stats(&lib);
        assert_eq!(&s0.by_cell, &s1.by_cell, "case {case}");
        let v = Voltage::from_mv(600.0);
        let t0 = scpg_sta::analyze(&nl, &lib, v).unwrap().t_eval;
        let t1 = scpg_sta::analyze(&back, &lib, v).unwrap().t_eval;
        assert!((t0.value() - t1.value()).abs() < 1e-18, "case {case}");
    }
}

/// Draws one random instruction for a short, halting tm16 program:
/// straight-line arithmetic with bounded forward branches.
fn random_instruction(rng: &mut StdRng) -> Instruction {
    let rd = Reg::new(rng.below(8) as u8);
    let rs = Reg::new(rng.below(8) as u8);
    match rng.index(8) {
        0 => Instruction::Movi {
            rd,
            imm: rng.below(512) as u16,
        },
        1 => Instruction::Addi {
            rd,
            imm: rng.range(0, 512) as i16 - 256,
        },
        2 => Instruction::Alu {
            op: scpg_isa::AluOp::from_code(rng.below(8) as u16),
            rd,
            rs,
        },
        3 => Instruction::Mul { rd, rs },
        4 => Instruction::Ld {
            rd,
            rs,
            off: rng.below(32) as u16,
        },
        5 => Instruction::St {
            rd,
            rs,
            off: rng.below(32) as u16,
        },
        // Forward-only branches keep every program terminating.
        6 => Instruction::Beq {
            rd,
            rs,
            off: rng.range(1, 4) as i16,
        },
        _ => Instruction::Bne {
            rd,
            rs,
            off: rng.range(1, 4) as i16,
        },
    }
}

fn random_program(rng: &mut StdRng) -> Vec<Instruction> {
    let n = 1 + rng.index(17);
    let mut v: Vec<Instruction> = (0..n).map(|_| random_instruction(rng)).collect();
    // Pad the tail so forward branches always land inside the program.
    v.extend([Instruction::Nop; 4]);
    v.push(Instruction::Halt);
    v
}

/// The gate-level pipeline and the ISS agree on every architectural
/// register and all touched memory for arbitrary short programs.
#[test]
fn gate_level_cpu_matches_iss() {
    let lib = Library::ninety_nm();
    let (nl, ports) = generate_cpu(&lib);
    let mut rng = StdRng::seed_from_u64(0xC0DE);
    for case in 0..6 {
        let program = random_program(&mut rng);
        let words: Vec<u16> = program.iter().map(|i| i.encode()).collect();

        // Golden: the ISS.
        let mut iss = Iss::with_memory(&words, vec![0xA5A5_5A5A; 64]);
        iss.run(10_000);
        assert!(iss.halted(), "case {case}");

        // Gate level.
        let mut sim = Simulator::new(&nl, &lib, SimConfig::default()).unwrap();
        let mut harness = CpuHarness::new(words, vec![0xA5A5_5A5A; 64]);
        harness.reset(&mut sim, &ports, 1_000_000, 3);
        let halted = harness.run_to_halt(&mut sim, &ports, 1_000_000, 400);
        assert!(halted, "case {case}: gate-level core must halt");
        assert_eq!(sim.value(ports.halted), Logic::One, "case {case}");

        for k in 0..8 {
            assert_eq!(
                harness.reg(&sim, &ports, k),
                iss.reg(k),
                "case {case}: r{k} mismatch"
            );
        }
        for addr in 0..64 {
            assert_eq!(harness.mem(addr), iss.mem(addr), "case {case}: mem[{addr}]");
        }
    }
}
