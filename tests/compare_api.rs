//! End-to-end tests of `POST /v1/compare` over real loopback sockets:
//! the technique bake-off response shape, bit-identity of the `scpg`
//! row versus `/v1/sweep`, byte-identity of interactive versus batch-job
//! compares, the structured 422 on already-transformed uploads, the
//! technique listing on `GET /v1/designs`, per-technique trace spans and
//! the `scpg_compare_*` metrics.

use std::time::Duration;

use scpg_json::Json;
use scpg_serve::metrics::parse_metric;
use scpg_serve::{client, ServeConfig, Server};

/// The design every test queries: a 4×4 multiplier (cheap to analyse in
/// debug builds) with the default workload/supply.
const DESIGN: &str = r#"{"kind": "multiplier", "bits": 4}"#;
const FREQS: &str = "[1e6, 5e6, 2e7]";

/// An upload that already carries an SCPG transform marker (the
/// `scpg_`-prefixed instance): valid structural Verilog, but no
/// technique may transform it again.
const MARKED: &str = "\
module marked (clk, d, q);
  input clk;
  input d;
  output q;
  wire s0;
  wire n0;
  DFF_X1 r0 (.D(d), .CK(clk), .Q(s0));
  INV_X1 scpg_fake (.A(s0), .Y(n0));
  DFF_X1 r1 (.D(n0), .CK(clk), .Q(q));
endmodule
";

fn compare_body(extra: &str) -> String {
    format!(r#"{{"design": {DESIGN}, "frequencies_hz": {FREQS}{extra}}}"#)
}

fn rows(resp: &client::ClientResponse) -> Vec<Json> {
    Json::parse(resp.text())
        .expect("compare response is JSON")
        .get("techniques")
        .and_then(|t| t.as_array().map(<[Json]>::to_vec))
        .expect("compare response has a techniques array")
}

fn row_points_text(row: &Json) -> String {
    row.get("points").expect("row has points").write()
}

#[test]
fn compare_runs_all_techniques_with_power_area_delay_and_metrics() {
    let handle = Server::bind(ServeConfig {
        workers: 2,
        ..ServeConfig::default()
    })
    .expect("bind")
    .spawn();
    let addr = handle.addr();

    let resp = client::post(addr, "/v1/compare", &compare_body("")).expect("compare");
    assert_eq!(resp.status, 200, "{}", resp.text());
    let trace_id = resp
        .header("x-scpg-trace-id")
        .expect("trace id echoed")
        .to_string();
    let rows = rows(&resp);
    assert!(rows.len() >= 3, "a bake-off needs at least 3 competitors");
    let names: Vec<&str> = rows
        .iter()
        .map(|r| r.get("technique").unwrap().as_str().unwrap())
        .collect();
    assert_eq!(names, ["baseline", "scpg", "ctsg", "ddcg", "lector"]);
    for row in &rows {
        let name = row.get("technique").unwrap().as_str().unwrap();
        assert!(row.get("params").unwrap().as_str().is_some(), "{name}");
        let area = row.get("area").unwrap();
        assert!(area.get("cells").unwrap().as_u64().unwrap() > 0, "{name}");
        assert!(area.get("area_um2").unwrap().as_f64().unwrap() > 0.0);
        let delay = row.get("delay").unwrap();
        assert!(delay.get("f_max_hz").unwrap().as_f64().unwrap() > 0.0);
        assert!(delay.get("min_period_s").unwrap().as_f64().unwrap() > 0.0);
        let points = row.get("points").unwrap().as_array().unwrap();
        assert_eq!(points.len(), 3, "{name}: one point per frequency");
        for p in points {
            assert!(p.get("power_w").unwrap().as_f64().unwrap() > 0.0);
            assert!(p.get("energy_per_op_j").unwrap().as_f64().unwrap() > 0.0);
            assert!(p.get("gated").unwrap().as_bool().is_some());
        }
    }
    // Gating wins at the low end: scpg beats baseline at 1 MHz.
    let power_at = |row: &Json, i: usize| {
        row.get("points").unwrap().as_array().unwrap()[i]
            .get("power_w")
            .unwrap()
            .as_f64()
            .unwrap()
    };
    assert!(power_at(&rows[1], 0) < power_at(&rows[0], 0));

    // A second identical request is a cache hit: byte-identical body.
    let again = client::post(addr, "/v1/compare", &compare_body("")).expect("cached compare");
    assert_eq!(again.status, 200);
    assert_eq!(again.body, resp.body, "cache hit is byte-identical");

    // Each technique filed a span under the request's trace id.
    let trace = client::get(addr, &format!("/v1/traces/{trace_id}")).expect("trace");
    assert_eq!(trace.status, 200, "{}", trace.text());
    for name in ["baseline", "scpg", "ctsg", "ddcg", "lector"] {
        assert!(
            trace.text().contains(&format!("technique:{name}")),
            "trace lacks a span for {name}: {}",
            trace.text()
        );
    }

    // The compare counters are on /metrics.
    let metrics = client::get(addr, "/metrics").expect("metrics");
    let text = metrics.text();
    assert_eq!(
        parse_metric(text, "scpg_requests_total{endpoint=\"compare\"}"),
        Some(2.0)
    );
    assert_eq!(
        parse_metric(text, "scpg_compare_techniques_total"),
        Some(5.0)
    );
    assert_eq!(parse_metric(text, "scpg_compare_points_total"), Some(15.0));

    handle.shutdown();
}

#[test]
fn compare_scpg_row_is_bit_identical_to_sweep() {
    let handle = Server::bind(ServeConfig {
        workers: 2,
        ..ServeConfig::default()
    })
    .expect("bind")
    .spawn();
    let addr = handle.addr();

    let compare = client::post(
        addr,
        "/v1/compare",
        &compare_body(r#", "techniques": [{"name": "scpg", "params": {"mode": "scpg"}}]"#),
    )
    .expect("compare");
    assert_eq!(compare.status, 200, "{}", compare.text());
    let sweep = client::post(
        addr,
        "/v1/sweep",
        &format!(r#"{{"design": {DESIGN}, "frequencies_hz": {FREQS}, "mode": "scpg"}}"#),
    )
    .expect("sweep");
    assert_eq!(sweep.status, 200, "{}", sweep.text());

    let compare_points = row_points_text(&rows(&compare)[0]);
    let sweep_points = Json::parse(sweep.text())
        .expect("sweep JSON")
        .get("points")
        .expect("sweep points")
        .write();
    assert_eq!(
        compare_points, sweep_points,
        "the scpg compare row must be bit-identical to the sweep endpoint"
    );
    handle.shutdown();
}

#[test]
fn interactive_and_batch_compare_are_byte_identical() {
    let handle = Server::bind(ServeConfig {
        workers: 2,
        // 3 units per chunk over a 2-technique × 3-frequency grid: the
        // chunk boundary cuts across a technique's frequency slice.
        chunk_units: 3,
        ..ServeConfig::default()
    })
    .expect("bind")
    .spawn();
    let addr = handle.addr();

    let request = compare_body(r#", "techniques": ["scpg", "ctsg"]"#);
    let interactive = client::post(addr, "/v1/compare", &request).expect("interactive");
    assert_eq!(interactive.status, 200, "{}", interactive.text());

    let submit = client::submit_job(
        addr,
        &format!(r#"{{"kind": "compare", "request": {request}}}"#),
    )
    .expect("submit");
    assert_eq!(submit.status, 202, "{}", submit.text());
    let job_id = Json::parse(submit.text())
        .unwrap()
        .get("id")
        .and_then(|v| v.as_str().map(String::from))
        .expect("job id");
    let status = client::poll_job(addr, &job_id, Duration::from_secs(60)).expect("poll");
    assert!(status.text().contains("done"), "{}", status.text());
    let result = client::job_result(addr, &job_id).expect("result");
    assert_eq!(result.status, 200, "{}", result.text());
    assert_eq!(
        result.body, interactive.body,
        "chunked batch compare must be byte-identical to the interactive path"
    );
    handle.shutdown();
}

#[test]
fn already_transformed_upload_answers_a_structured_422() {
    let handle = Server::bind(ServeConfig {
        workers: 2,
        ..ServeConfig::default()
    })
    .expect("bind")
    .spawn();
    let addr = handle.addr();

    let upload = client::upload_netlist(addr, MARKED, "clk").expect("upload");
    assert_eq!(upload.status, 201, "{}", upload.text());
    let id = Json::parse(upload.text())
        .unwrap()
        .get("id")
        .and_then(|v| v.as_str().map(String::from))
        .expect("upload id");

    let resp = client::post(
        addr,
        "/v1/compare",
        &format!(r#"{{"design": {{"kind": "netlist", "id": "{id}"}}, "frequencies_hz": [1e6]}}"#),
    )
    .expect("compare");
    assert_eq!(resp.status, 422, "{}", resp.text());
    let doc = Json::parse(resp.text()).expect("error body is JSON");
    assert_eq!(
        doc.get("already_transformed").and_then(Json::as_bool),
        Some(true),
        "{}",
        resp.text()
    );
    assert!(doc.get("technique").unwrap().as_str().is_some());
    assert!(
        doc.get("marker")
            .unwrap()
            .as_str()
            .unwrap()
            .contains("scpg_fake"),
        "{}",
        resp.text()
    );
    handle.shutdown();
}

#[test]
fn designs_endpoint_lists_techniques_and_jobs_accept_the_kind() {
    let handle = Server::bind(ServeConfig {
        workers: 2,
        ..ServeConfig::default()
    })
    .expect("bind")
    .spawn();
    let addr = handle.addr();

    let designs = client::get(addr, "/v1/designs").expect("designs");
    assert_eq!(designs.status, 200);
    let doc = Json::parse(designs.text()).unwrap();
    let techs = doc.get("techniques").unwrap().as_array().unwrap();
    assert_eq!(techs.len(), 5);
    let ctsg = techs
        .iter()
        .find(|t| t.get("name").and_then(Json::as_str) == Some("ctsg"))
        .expect("ctsg is listed");
    assert!(ctsg.get("summary").unwrap().as_str().is_some());
    let params = ctsg.get("params").unwrap().as_array().unwrap();
    assert!(
        params
            .iter()
            .any(|p| p.get("name").and_then(Json::as_str) == Some("clusters")),
        "ctsg schema lists its clusters param"
    );

    // Unknown job kinds now advertise compare...
    let bad = client::submit_job(addr, r#"{"kind": "warp", "request": {}}"#).expect("submit");
    assert_eq!(bad.status, 422);
    assert!(bad.text().contains("compare"), "{}", bad.text());
    // ...and compare requests are refused with reasons, not crashes.
    let bad = client::post(
        addr,
        "/v1/compare",
        &compare_body(r#", "techniques": ["warp"]"#),
    )
    .expect("compare");
    assert_eq!(bad.status, 422);
    assert!(bad.text().contains("unknown technique"), "{}", bad.text());
    handle.shutdown();
}
