//! Connection-lifecycle tests for the event-driven serve core:
//! HTTP/1.1 keep-alive, request pipelining, idle/partial-request
//! timeouts, the wire-protocol strictness sweep (smuggling-shaped
//! header names, HTTP version handling) and the diagnostic headers
//! (`Allow` on 405, `Retry-After` on 429/503).

use scpg_serve::client::{self, ClientConn};
use scpg_serve::{ServeConfig, Server};
use std::io::Read;
use std::time::Duration;

const DESIGN: &str = r#"{"kind": "multiplier", "bits": 4}"#;

fn body(rest: &str) -> String {
    format!(r#"{{"design": {DESIGN}, {rest}}}"#)
}

fn serve(config: ServeConfig) -> scpg_serve::ServerHandle {
    Server::bind(config).expect("bind").spawn()
}

fn default_config() -> ServeConfig {
    ServeConfig {
        workers: 2,
        ..ServeConfig::default()
    }
}

#[test]
fn keep_alive_connection_serves_many_requests() {
    let handle = serve(default_config());
    let mut conn = ClientConn::connect(handle.addr()).expect("connect");
    for _ in 0..5 {
        let resp = conn.get("/healthz").expect("healthz");
        assert_eq!(resp.status, 200);
        assert_eq!(resp.header("connection"), Some("keep-alive"));
        assert_eq!(resp.text(), r#"{"status":"ok"}"#);
    }
    // All five requests shared one server-side connection.
    assert_eq!(handle.open_connections(), 1);
    drop(conn);
    handle.shutdown();
}

#[test]
fn two_pipelined_requests_in_one_segment_get_two_responses_in_order() {
    let handle = serve(default_config());
    let mut conn = ClientConn::connect(handle.addr()).expect("connect");
    // One write carries both requests back to back; the parser must
    // retain the second request's bytes past the first and answer both
    // in order.
    conn.send_raw(
        b"GET /healthz HTTP/1.1\r\nhost: scpg\r\n\r\nGET /metrics HTTP/1.1\r\nhost: scpg\r\n\r\n",
    )
    .expect("pipeline writes");
    let first = conn.read_response().expect("first response");
    assert_eq!(first.status, 200);
    assert_eq!(first.text(), r#"{"status":"ok"}"#);
    let second = conn.read_response().expect("second response");
    assert_eq!(second.status, 200);
    assert!(second.text().contains("scpg_requests_total"));
    handle.shutdown();
}

#[test]
fn pipelined_body_and_follow_up_request_are_both_served() {
    let handle = serve(default_config());
    let mut conn = ClientConn::connect(handle.addr()).expect("connect");
    // A POST with a body and a GET behind it in the same segment: the
    // bytes past content-length are the next request, not garbage.
    let post_body = body(r#""frequencies_hz": [1e6]"#);
    let raw = format!(
        "POST /v1/sweep HTTP/1.1\r\nhost: scpg\r\ncontent-type: application/json\r\ncontent-length: {}\r\n\r\n{post_body}GET /healthz HTTP/1.1\r\nhost: scpg\r\n\r\n",
        post_body.len()
    );
    conn.send_raw(raw.as_bytes()).expect("pipeline writes");
    let sweep = conn.read_response().expect("sweep response");
    assert_eq!(sweep.status, 200, "{}", sweep.text());
    let health = conn.read_response().expect("healthz response");
    assert_eq!(health.status, 200);
    assert_eq!(health.text(), r#"{"status":"ok"}"#);
    handle.shutdown();
}

#[test]
fn connection_close_mid_pipeline_answers_through_it_then_closes() {
    let handle = serve(default_config());
    let mut conn = ClientConn::connect(handle.addr()).expect("connect");
    // Three pipelined requests; the second asks to close. The server
    // answers the first two (second marked close) and discards the
    // third.
    conn.send_raw(
        b"GET /healthz HTTP/1.1\r\nhost: scpg\r\n\r\n\
          GET /healthz HTTP/1.1\r\nhost: scpg\r\nconnection: close\r\n\r\n\
          GET /healthz HTTP/1.1\r\nhost: scpg\r\n\r\n",
    )
    .expect("pipeline writes");
    let first = conn.read_response().expect("first response");
    assert_eq!(first.status, 200);
    assert_eq!(first.header("connection"), Some("keep-alive"));
    let second = conn.read_response().expect("second response");
    assert_eq!(second.status, 200);
    assert_eq!(second.header("connection"), Some("close"));
    // No third response: the connection is closed.
    assert!(conn.read_response().is_err(), "third request was answered");
    handle.shutdown();
}

#[test]
fn max_requests_per_conn_closes_after_the_cap() {
    let handle = serve(ServeConfig {
        max_requests_per_conn: 2,
        ..default_config()
    });
    let mut conn = ClientConn::connect(handle.addr()).expect("connect");
    let first = conn.get("/healthz").expect("first");
    assert_eq!(first.header("connection"), Some("keep-alive"));
    let second = conn.get("/healthz").expect("second");
    assert_eq!(second.header("connection"), Some("close"));
    assert!(conn.read_response().is_err() || conn.is_closed().unwrap());
    // A fresh connection starts a fresh budget.
    let mut again = ClientConn::connect(handle.addr()).expect("reconnect");
    assert_eq!(again.get("/healthz").expect("fresh").status, 200);
    handle.shutdown();
}

#[test]
fn http_1_0_defaults_to_close_but_honours_keep_alive() {
    let handle = serve(default_config());
    let resp = client::raw(
        handle.addr(),
        b"GET /healthz HTTP/1.0\r\nhost: scpg\r\n\r\n",
    )
    .expect("1.0 request");
    assert_eq!(resp.status, 200);
    assert_eq!(resp.header("connection"), Some("close"));

    let mut conn = ClientConn::connect(handle.addr()).expect("connect");
    conn.send_raw(b"GET /healthz HTTP/1.0\r\nhost: scpg\r\nconnection: keep-alive\r\n\r\n")
        .expect("1.0 keep-alive request");
    let resp = conn.read_response().expect("response");
    assert_eq!(resp.status, 200);
    assert_eq!(resp.header("connection"), Some("keep-alive"));
    // The connection really is still open.
    assert_eq!(conn.get("/healthz").expect("reuse").status, 200);
    handle.shutdown();
}

#[test]
fn request_trickled_across_an_idle_window_survives() {
    // Idle eviction measures from the last byte received, not from
    // connection start — a slow-but-live client survives several idle
    // windows.
    let handle = serve(ServeConfig {
        idle_timeout_ms: 300,
        ..default_config()
    });
    let mut conn = ClientConn::connect(handle.addr()).expect("connect");
    conn.send_raw(b"GET /healthz HTTP/1.1\r\n")
        .expect("head half");
    std::thread::sleep(Duration::from_millis(200));
    conn.send_raw(b"host: scpg\r\n").expect("a header");
    std::thread::sleep(Duration::from_millis(200));
    conn.send_raw(b"\r\n").expect("head end");
    let resp = conn.read_response().expect("trickled response");
    assert_eq!(resp.status, 200);
    handle.shutdown();
}

#[test]
fn idle_connection_is_evicted_silently() {
    let handle = serve(ServeConfig {
        idle_timeout_ms: 150,
        ..default_config()
    });
    let conn = ClientConn::connect(handle.addr()).expect("connect");
    // Nothing was ever sent: the eviction is a plain close, no response.
    let mut stream = conn.stream().try_clone().expect("clone");
    stream
        .set_read_timeout(Some(Duration::from_secs(10)))
        .expect("timeout");
    let mut buf = [0u8; 64];
    let n = stream.read(&mut buf).expect("read close");
    assert_eq!(n, 0, "server sent bytes to a silent idle connection");
    assert_eq!(handle.open_connections(), 0);
    handle.shutdown();
}

#[test]
fn partial_request_at_idle_timeout_gets_408() {
    let handle = serve(ServeConfig {
        idle_timeout_ms: 150,
        ..default_config()
    });
    let mut conn = ClientConn::connect(handle.addr()).expect("connect");
    // Half a request head, then silence: the server says why before
    // hanging up.
    conn.send_raw(b"GET /healthz HTTP/1.1\r\nhost: sc")
        .expect("partial");
    let resp = conn.read_response().expect("408 response");
    assert_eq!(resp.status, 408);
    assert_eq!(resp.header("connection"), Some("close"));
    assert!(resp.text().contains("timed out"), "{}", resp.text());
    assert!(conn.is_closed().unwrap(), "connection left open after 408");
    handle.shutdown();
}

#[test]
fn whitespace_before_the_header_colon_is_rejected() {
    // A header name with trailing whitespace is the classic
    // request-smuggling shape (two parsers disagreeing on the name);
    // the only safe answer is 400, never normalisation.
    let handle = serve(default_config());
    let resp = client::raw(
        handle.addr(),
        b"GET /healthz HTTP/1.1\r\nhost: scpg\r\nx-evil : v\r\n\r\n",
    )
    .expect("smuggle-shaped request");
    assert_eq!(resp.status, 400);
    assert_eq!(resp.header("connection"), Some("close"));
    assert!(
        resp.text().contains("header name"),
        "error should name the offence: {}",
        resp.text()
    );

    // Obsolete line folding (a continuation line starting with
    // whitespace) is the same class of ambiguity.
    let folded = client::raw(
        handle.addr(),
        b"GET /healthz HTTP/1.1\r\nhost: scpg\r\n folded: v\r\n\r\n",
    )
    .expect("folded request");
    assert_eq!(folded.status, 400);
    handle.shutdown();
}

#[test]
fn transfer_encoding_is_refused_with_501() {
    let handle = serve(default_config());
    let resp = client::raw(
        handle.addr(),
        b"POST /v1/sweep HTTP/1.1\r\nhost: scpg\r\ntransfer-encoding: chunked\r\n\r\n",
    )
    .expect("chunked request");
    assert_eq!(resp.status, 501);
    assert!(resp.text().contains("content-length"), "{}", resp.text());
    handle.shutdown();
}

#[test]
fn non_http_1x_version_gets_505_and_garbage_gets_400() {
    let handle = serve(default_config());
    let two_oh = client::raw(
        handle.addr(),
        b"GET /healthz HTTP/2.0\r\nhost: scpg\r\n\r\n",
    )
    .expect("HTTP/2.0 request");
    assert_eq!(two_oh.status, 505);
    let garbage = client::raw(handle.addr(), b"GET /healthz SPDY/3\r\nhost: scpg\r\n\r\n")
        .expect("garbage version");
    assert_eq!(garbage.status, 400);
    handle.shutdown();
}

#[test]
fn method_not_allowed_names_the_allowed_methods() {
    let handle = serve(default_config());
    let get_on_post = client::get(handle.addr(), "/v1/sweep").expect("GET on POST endpoint");
    assert_eq!(get_on_post.status, 405);
    assert_eq!(get_on_post.header("allow"), Some("POST"));

    let post_on_get = client::post(handle.addr(), "/healthz", "{}").expect("POST on GET endpoint");
    assert_eq!(post_on_get.status, 405);
    assert_eq!(post_on_get.header("allow"), Some("GET"));

    let delete_on_jobs = client::delete(handle.addr(), "/v1/jobs").expect("DELETE on jobs");
    assert_eq!(delete_on_jobs.status, 405);
    assert_eq!(delete_on_jobs.header("allow"), Some("POST, GET"));
    handle.shutdown();
}

#[test]
fn job_backpressure_429_carries_retry_after() {
    let handle = serve(ServeConfig {
        max_active_jobs: 1,
        debug_job_delay_ms: 200,
        ..default_config()
    });
    let submission = format!(
        r#"{{"kind": "sweep", "request": {}}}"#,
        body(r#""frequencies_hz": [1e6, 2e6]"#)
    );
    let first = client::submit_job(handle.addr(), &submission).expect("first job");
    assert_eq!(first.status, 202, "{}", first.text());
    // The active-jobs cap is 1 and the first job is still running its
    // delayed chunks: the second submission is refused, with advice.
    let second = client::submit_job(handle.addr(), &submission).expect("second job");
    assert_eq!(second.status, 429, "{}", second.text());
    assert_eq!(second.header("retry-after"), Some("1"));

    let id = scpg_json::Json::parse(first.text())
        .expect("job summary")
        .get("id")
        .and_then(|v| v.as_str().map(String::from))
        .expect("job id");
    let done = client::poll_job(handle.addr(), &id, Duration::from_secs(60)).expect("poll");
    assert_eq!(done.status, 200);
    handle.shutdown();
}

#[test]
fn shutdown_answers_late_pipelined_requests_with_503_retry_after() {
    let handle = serve(ServeConfig {
        debug_job_delay_ms: 300,
        ..default_config()
    });
    let addr = handle.addr();
    let mut conn = ClientConn::connect(addr).expect("connect");
    // A slow compute request with a pipelined healthz behind it. Drain
    // begins while the compute runs: the in-flight request must still be
    // answered normally, the pipelined one refused with 503 +
    // Retry-After, then the connection closed.
    let post_body = body(r#""frequencies_hz": [3.7e6]"#);
    let raw = format!(
        "POST /v1/sweep HTTP/1.1\r\nhost: scpg\r\ncontent-type: application/json\r\ncontent-length: {}\r\n\r\n{post_body}GET /healthz HTTP/1.1\r\nhost: scpg\r\n\r\n",
        post_body.len()
    );
    conn.send_raw(raw.as_bytes()).expect("pipeline writes");
    std::thread::sleep(Duration::from_millis(100));
    let shutdown = std::thread::spawn(move || handle.shutdown());

    let sweep = conn.read_response().expect("in-flight response");
    assert_eq!(sweep.status, 200, "{}", sweep.text());
    let refused = conn.read_response().expect("drain refusal");
    assert_eq!(refused.status, 503);
    assert_eq!(refused.header("retry-after"), Some("1"));
    assert_eq!(refused.header("connection"), Some("close"));
    assert!(conn.is_closed().unwrap(), "connection open after drain");

    shutdown.join().expect("shutdown thread");
    assert!(
        ClientConn::connect(addr).is_err(),
        "listener still accepting after shutdown"
    );
}
