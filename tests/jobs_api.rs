//! End-to-end tests of the async-job subsystem over real loopback
//! sockets: netlist upload and content addressing, chunked batch jobs
//! whose assembled results are byte-identical to the interactive path
//! and to direct library calls, restart recovery from on-disk
//! checkpoints, cooperative cancellation, and the machine-readable
//! parse-error locations on refused uploads.

use std::time::Duration;

use scpg::service::netlist_analysis;
use scpg::Mode;
use scpg_json::Json;
use scpg_liberty::{Library, PvtCorner};
use scpg_netlist::parse_verilog;
use scpg_serve::designs::DesignSpec;
use scpg_serve::{api, client, ServeConfig, Server};
use scpg_units::Frequency;

/// The uploaded design under test: a 5-gate pipeline with three flops,
/// so the SCPG transform has registers to gate.
const PIPELINE: &str = "\
module pipeline (clk, d, q);
  input clk;
  input d;
  output q;
  wire s0;
  wire s1;
  wire s2;
  wire n0;
  DFF_X1 r0 (.D(d), .CK(clk), .Q(s0));
  DFF_X1 r1 (.D(s0), .CK(clk), .Q(s1));
  INV_X1 g0 (.A(s1), .Y(n0));
  DFF_X1 r2 (.D(n0), .CK(clk), .Q(s2));
  INV_X1 g1 (.A(s2), .Y(q));
endmodule
";

const FREQS_HZ: [f64; 5] = [1e6, 2e6, 5e6, 1e7, 2e7];

fn sweep_request(id: &str) -> String {
    format!(
        r#"{{"design": {{"kind": "netlist", "id": "{id}"}}, "frequencies_hz": [1e6, 2e6, 5e6, 1e7, 2e7], "mode": "scpg"}}"#
    )
}

/// The sweep body the server must produce for [`PIPELINE`], computed
/// with no serve-crate machinery beyond the response builder.
fn direct_sweep_bytes(id: &str) -> Vec<u8> {
    let spec = DesignSpec::netlist(id);
    let lib = Library::ninety_nm();
    let baseline = parse_verilog(PIPELINE, &lib).expect("fixture parses");
    let analysis = netlist_analysis(
        &lib,
        &baseline,
        "clk",
        spec.e_dyn,
        PvtCorner::at_voltage(spec.vdd),
    )
    .expect("fixture analyses");
    let freqs: Vec<Frequency> = FREQS_HZ.iter().map(|&f| Frequency::new(f)).collect();
    api::sweep_response(&spec, Mode::Scpg, &analysis.sweep(&freqs, Mode::Scpg))
        .write()
        .into_bytes()
}

fn upload_id(resp: &client::ClientResponse) -> String {
    Json::parse(resp.text())
        .expect("upload response is JSON")
        .get("id")
        .and_then(|v| v.as_str().map(String::from))
        .expect("upload response carries an id")
}

fn status_field_u64(resp: &client::ClientResponse, field: &str) -> Option<u64> {
    Json::parse(resp.text()).ok()?.get(field)?.as_u64()
}

fn status_state(resp: &client::ClientResponse) -> Option<String> {
    Json::parse(resp.text())
        .ok()?
        .get("state")?
        .as_str()
        .map(String::from)
}

/// Spins until the job has checkpointed at least one chunk but is not
/// yet terminal, so a shutdown/cancel lands mid-job. Panics if the job
/// finishes first (the per-chunk debug delay makes that impossible in
/// practice) or never starts.
fn wait_mid_job(addr: std::net::SocketAddr, job_id: &str) -> u64 {
    let deadline = std::time::Instant::now() + Duration::from_secs(60);
    loop {
        let status = client::job_status(addr, job_id).expect("status");
        assert_eq!(status.status, 200, "{}", status.text());
        let state = status_state(&status).expect("state");
        let done = status_field_u64(&status, "done_units").expect("done_units");
        assert!(
            state == "queued" || state == "running",
            "job went terminal ({state}) before the test could interrupt it"
        );
        if done >= 1 {
            return done;
        }
        assert!(
            std::time::Instant::now() < deadline,
            "job never completed a first chunk"
        );
        std::thread::sleep(Duration::from_millis(2));
    }
}

#[test]
fn upload_async_job_and_interactive_results_are_bit_identical() {
    let handle = Server::bind(ServeConfig {
        workers: 2,
        chunk_units: 2,
        ..ServeConfig::default()
    })
    .expect("bind")
    .spawn();
    let addr = handle.addr();

    // Fresh upload answers 201; the identical re-upload answers 200 with
    // the same content-addressed id.
    let created = client::upload_netlist(addr, PIPELINE, "clk").expect("upload");
    assert_eq!(created.status, 201, "{}", created.text());
    let id = upload_id(&created);
    let summary = Json::parse(created.text()).unwrap();
    assert_eq!(summary.get("gates").unwrap().as_u64(), Some(5));
    assert_eq!(summary.get("clock").unwrap().as_str(), Some("clk"));
    let again = client::upload_netlist(addr, PIPELINE, "clk").expect("re-upload");
    assert_eq!(again.status, 200, "{}", again.text());
    assert_eq!(upload_id(&again), id);
    assert_eq!(handle.metrics().netlists_uploaded, 1, "one distinct design");

    // The discovery endpoint lists the kinds, the limits and the upload.
    let designs = client::get(addr, "/v1/designs").expect("designs");
    assert_eq!(designs.status, 200);
    let ddoc = Json::parse(designs.text()).unwrap();
    assert_eq!(ddoc.get("kinds").unwrap().as_array().unwrap().len(), 3);
    assert!(ddoc
        .get("limits")
        .unwrap()
        .get("max_netlist_gates")
        .is_some());
    assert!(designs.text().contains(&id), "{}", designs.text());

    // Interactive sweep naming the upload: byte-identical to the direct
    // library computation on the same parsed netlist.
    let expected = direct_sweep_bytes(&id);
    let request = sweep_request(&id);
    let served = client::post(addr, "/v1/sweep", &request).expect("sweep");
    assert_eq!(served.status, 200, "{}", served.text());
    assert_eq!(served.body, expected, "interactive sweep != direct bytes");

    // The same request as an async job, executed in 2-frequency chunks,
    // must poll to completion and assemble the very same bytes.
    let submit = client::submit_job(
        addr,
        &format!(r#"{{"kind": "sweep", "request": {request}}}"#),
    )
    .expect("submit");
    assert_eq!(submit.status, 202, "{}", submit.text());
    let sdoc = Json::parse(submit.text()).unwrap();
    let job_id = sdoc.get("id").unwrap().as_str().unwrap().to_string();
    assert_eq!(sdoc.get("total_units").unwrap().as_u64(), Some(5));

    let done = client::poll_job(addr, &job_id, Duration::from_secs(120)).expect("poll");
    assert_eq!(
        status_state(&done).as_deref(),
        Some("done"),
        "{}",
        done.text()
    );
    assert_eq!(status_field_u64(&done, "done_units"), Some(5));

    // The status document carries the job's trace id and a non-empty
    // per-chunk timing array (5 units / 2 per chunk = 3 chunks).
    let sdoc = Json::parse(done.text()).unwrap();
    assert!(
        sdoc.get("trace_id").and_then(|t| t.as_str()).is_some(),
        "{}",
        done.text()
    );
    assert_eq!(status_field_u64(&done, "chunks_total"), Some(3));
    assert_eq!(status_field_u64(&done, "chunks_completed"), Some(3));
    let chunks = sdoc
        .get("chunks")
        .and_then(|c| c.as_array())
        .expect("chunks array");
    assert_eq!(chunks.len(), 3, "{}", done.text());
    for chunk in chunks {
        assert!(chunk.get("index").and_then(Json::as_u64).is_some());
        assert!(chunk.get("units").and_then(Json::as_u64).unwrap() >= 1);
        assert!(chunk.get("duration_us").and_then(Json::as_u64).is_some());
    }

    let result = client::job_result(addr, &job_id).expect("result");
    assert_eq!(result.status, 200);
    assert_eq!(result.body, expected, "chunked job result != direct bytes");

    // The job list knows it; an unknown id answers 404.
    let list = client::get(addr, "/v1/jobs").expect("list");
    assert!(list.text().contains(&job_id), "{}", list.text());
    assert_eq!(client::job_status(addr, "j99999999").unwrap().status, 404);

    assert!(handle.metrics().jobs_submitted >= 1);
    assert!(
        handle.metrics().job_chunks_completed >= 3,
        "5 units / 2 per chunk"
    );
    handle.shutdown();
}

#[test]
fn refused_uploads_carry_machine_readable_locations() {
    let handle = Server::bind(ServeConfig {
        workers: 2,
        ..ServeConfig::default()
    })
    .expect("bind")
    .spawn();
    let addr = handle.addr();

    // A parse error (unknown pin on g1): the JSON body pinpoints
    // line/column/token so clients can point at the offending source.
    let broken = PIPELINE.replace(".Y(q)", ".QQ(q)");
    let resp = client::upload_netlist(addr, &broken, "clk").expect("upload");
    assert_eq!(resp.status, 422, "{}", resp.text());
    let doc = Json::parse(resp.text()).unwrap();
    assert!(doc.get("error").unwrap().as_str().is_some());
    assert_eq!(
        doc.get("line").unwrap().as_u64(),
        Some(13),
        "{}",
        resp.text()
    );
    assert!(doc.get("column").is_some());
    assert_eq!(doc.get("token").unwrap().as_str(), Some("QQ"));

    // A valid parse with the wrong clock name is refused without
    // location fields (there is no offending token).
    let wrong_clock = client::upload_netlist(addr, PIPELINE, "no_such_net").expect("upload");
    assert_eq!(wrong_clock.status, 422, "{}", wrong_clock.text());
    assert!(Json::parse(wrong_clock.text())
        .unwrap()
        .get("line")
        .is_none());

    // Queries naming an unregistered netlist are refused interactively
    // (422) and at job submission (422), never cached or enqueued.
    let request = sweep_request("00000000deadbeef");
    let direct = client::post(addr, "/v1/sweep", &request).expect("sweep");
    assert_eq!(direct.status, 422, "{}", direct.text());
    assert!(direct.text().contains("unknown netlist id"));
    let submit = client::submit_job(
        addr,
        &format!(r#"{{"kind": "sweep", "request": {request}}}"#),
    )
    .expect("submit");
    assert_eq!(submit.status, 422, "{}", submit.text());

    handle.shutdown();
}

#[test]
fn restart_resumes_jobs_from_disk_checkpoints_bit_identically() {
    let dir = std::env::temp_dir().join(format!("scpg-jobs-api-restart-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    let config = || ServeConfig {
        workers: 3,
        chunk_units: 1,
        store_dir: Some(dir.to_string_lossy().into_owned()),
        // One chunk = one frequency = ≥25 ms: the job is reliably still
        // in flight when the first server is torn down.
        debug_job_delay_ms: 25,
        ..ServeConfig::default()
    };

    // The client names the trace id at submission; it must survive the
    // restart below because it is persisted in the checkpoint record.
    let trace_id = "restart-trace.e2e";

    let first = Server::bind(config()).expect("bind").spawn();
    let addr = first.addr();
    let created = client::upload_netlist(addr, PIPELINE, "clk").expect("upload");
    assert_eq!(created.status, 201, "{}", created.text());
    let id = upload_id(&created);
    let request = sweep_request(&id);
    let submit = client::post_traced(
        addr,
        "/v1/jobs",
        &format!(r#"{{"kind": "sweep", "request": {request}}}"#),
        trace_id,
    )
    .expect("submit");
    assert_eq!(submit.status, 202, "{}", submit.text());
    assert_eq!(submit.header("x-scpg-trace-id"), Some(trace_id));
    let sdoc = Json::parse(submit.text()).unwrap();
    assert_eq!(sdoc.get("trace_id").unwrap().as_str(), Some(trace_id));
    let job_id = sdoc.get("id").unwrap().as_str().unwrap().to_string();

    // Kill the server mid-job, with at least one chunk checkpointed.
    let done_at_shutdown = wait_mid_job(addr, &job_id);
    first.shutdown();

    // A new server over the same store dir reloads the uploaded netlist
    // and resumes the job from its checkpoint — no client action needed.
    let second = Server::bind(config()).expect("rebind").spawn();
    let addr = second.addr();
    let done = client::poll_job(addr, &job_id, Duration::from_secs(120)).expect("poll");
    assert_eq!(
        status_state(&done).as_deref(),
        Some("done"),
        "{}",
        done.text()
    );

    // Resumed, not restarted: the second server ran strictly fewer
    // chunks than the sweep has frequencies.
    let resumed_chunks = second.metrics().job_chunks_completed;
    assert!(
        resumed_chunks < FREQS_HZ.len() as u64,
        "{resumed_chunks} chunks on the second server; {done_at_shutdown} were checkpointed"
    );

    // The stitched result (disk-round-tripped fragments + fresh ones)
    // is byte-identical to an uninterrupted direct computation.
    let result = client::job_result(addr, &job_id).expect("result");
    assert_eq!(result.status, 200);
    assert_eq!(result.body, direct_sweep_bytes(&id), "resume changed bytes");

    // The resumed job kept the client-supplied trace id, and the status
    // document's per-chunk timing covers every chunk from both runs.
    let status = client::job_status(addr, &job_id).expect("status");
    let stdoc = Json::parse(status.text()).unwrap();
    assert_eq!(stdoc.get("trace_id").unwrap().as_str(), Some(trace_id));
    assert_eq!(
        status_field_u64(&status, "chunks_completed"),
        Some(FREQS_HZ.len() as u64)
    );
    assert!(
        stdoc.get("eta_ms").is_none(),
        "terminal jobs must not advertise an ETA: {}",
        status.text()
    );

    // The trace read from the *second* server shows spans from both
    // incarnations: pre-kill chunks were replayed from the checkpoint
    // (keeping their original boot tag), post-restart chunks were
    // recorded live under the new boot — with gap-free, duplicate-free
    // chunk numbering across the kill.
    let detail = client::get(addr, &format!("/v1/traces/{trace_id}")).expect("trace");
    assert_eq!(detail.status, 200, "{}", detail.text());
    let tdoc = Json::parse(detail.text()).unwrap();
    let spans = tdoc.get("spans").and_then(|s| s.as_array()).unwrap();
    let mut chunk_tags: Vec<String> = Vec::new();
    let mut boots: std::collections::BTreeSet<String> = std::collections::BTreeSet::new();
    for span in spans {
        if span.get("stage").and_then(|v| v.as_str()) != Some("chunk") {
            continue;
        }
        let ann = span.get("annotations").expect("chunk annotations");
        chunk_tags.push(
            ann.get("chunk")
                .and_then(|v| v.as_str())
                .expect("chunk tag")
                .to_string(),
        );
        boots.insert(
            ann.get("boot")
                .and_then(|v| v.as_str())
                .expect("boot tag")
                .to_string(),
        );
        assert!(span.get("duration_us").and_then(Json::as_u64).is_some());
    }
    let expected_tags: Vec<String> = (0..FREQS_HZ.len())
        .map(|i| format!("{i}/{}", FREQS_HZ.len()))
        .collect();
    let mut sorted = chunk_tags.clone();
    sorted.sort();
    assert_eq!(
        sorted, expected_tags,
        "chunk numbering has gaps or duplicates: {chunk_tags:?}"
    );
    assert_eq!(
        boots.len(),
        2,
        "expected spans from two server incarnations, got boots {boots:?}"
    );

    second.shutdown();
    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn cancellation_is_cooperative_and_final() {
    let handle = Server::bind(ServeConfig {
        workers: 2,
        chunk_units: 1,
        debug_job_delay_ms: 30,
        ..ServeConfig::default()
    })
    .expect("bind")
    .spawn();
    let addr = handle.addr();

    // A built-in design works for jobs too — no upload required.
    let submit = client::submit_job(
        addr,
        r#"{"kind": "sweep", "request": {"design": {"kind": "multiplier", "bits": 4}, "frequencies_hz": [1e6, 2e6, 3e6, 4e6, 5e6, 6e6, 7e6, 8e6], "mode": "scpg"}}"#,
    )
    .expect("submit");
    assert_eq!(submit.status, 202, "{}", submit.text());
    let job_id = Json::parse(submit.text())
        .unwrap()
        .get("id")
        .unwrap()
        .as_str()
        .unwrap()
        .to_string();

    // Cancel while a chunk is executing: the DELETE races the worker.
    wait_mid_job(addr, &job_id);
    let cancelled = client::cancel_job(addr, &job_id).expect("cancel");
    assert_eq!(cancelled.status, 200, "{}", cancelled.text());

    // Terminal and idempotent: a second DELETE is 409, the result is
    // 409 (nothing to fetch), and the in-flight chunk at cancel time
    // must not resurrect the job afterwards.
    assert_eq!(client::cancel_job(addr, &job_id).unwrap().status, 409);
    assert_eq!(client::job_result(addr, &job_id).unwrap().status, 409);
    std::thread::sleep(Duration::from_millis(120));
    let status = client::job_status(addr, &job_id).expect("status");
    assert_eq!(
        status_state(&status).as_deref(),
        Some("cancelled"),
        "{}",
        status.text()
    );

    // Cancelling the unknown and the already-cancelled differ: 404 / 409.
    assert_eq!(client::cancel_job(addr, "j99999999").unwrap().status, 404);

    handle.shutdown();
}
