//! End-to-end tests of the Liberty-library ingestion surface over real
//! loopback sockets: `POST /v1/libraries` admission (content-addressed
//! idempotency, structured parse refusals with source positions), the
//! `library`/`backend` design selectors on the analysis endpoints, the
//! NLDM table backend actually evaluating (via the process-wide
//! `scpg_table_lookups_total` counter), the uploaded-libraries section
//! of `GET /v1/designs`, and survival of a kill/restart over the same
//! store directory.

use scpg_json::Json;
use scpg_liberty::{write_liberty, Library};
use scpg_serve::metrics::parse_metric;
use scpg_serve::{client, ServeConfig, Server};

const FREQS: &str = "[1e6, 5e6, 2e7]";

fn kit_source() -> String {
    write_liberty(&Library::ninety_nm())
}

fn sweep_body(design: &str) -> String {
    format!(r#"{{"design": {design}, "frequencies_hz": {FREQS}}}"#)
}

fn sweep_powers(resp: &client::ClientResponse) -> Vec<f64> {
    Json::parse(resp.text())
        .expect("sweep response is JSON")
        .get("points")
        .and_then(|p| p.as_array().map(<[Json]>::to_vec))
        .expect("sweep response has points")
        .iter()
        .map(|p| p.get("power_w").unwrap().as_f64().unwrap())
        .collect()
}

fn metric(addr: std::net::SocketAddr, family: &str) -> f64 {
    let text = client::get(addr, "/metrics")
        .expect("metrics")
        .text()
        .to_string();
    parse_metric(&text, family).unwrap_or_else(|| panic!("missing metric {family}"))
}

#[test]
fn upload_is_idempotent_and_listed_by_designs() {
    let handle = Server::bind(ServeConfig {
        workers: 2,
        ..ServeConfig::default()
    })
    .expect("bind")
    .spawn();
    let addr = handle.addr();
    let source = kit_source();

    let created = client::upload_library(addr, &source).expect("upload");
    assert_eq!(created.status, 201, "{}", created.text());
    let doc = Json::parse(created.text()).unwrap();
    let id = doc.get("id").unwrap().as_str().unwrap().to_string();
    assert_eq!(id.len(), 40, "content-addressed 40-hex id");
    assert!(doc.get("cells").unwrap().as_u64().unwrap() > 10);
    assert!(doc.get("tabulated_cells").unwrap().as_u64().unwrap() > 0);
    assert!(doc.get("nom_voltage_v").unwrap().as_f64().unwrap() > 0.0);

    // Same bytes, same id, no second admission.
    let again = client::upload_library(addr, &source).expect("re-upload");
    assert_eq!(again.status, 200, "{}", again.text());
    assert_eq!(
        Json::parse(again.text())
            .unwrap()
            .get("id")
            .unwrap()
            .as_str(),
        Some(id.as_str())
    );
    assert_eq!(metric(addr, "scpg_libraries_uploaded_total"), 1.0);
    assert_eq!(
        metric(addr, "scpg_requests_total{endpoint=\"libraries\"}"),
        2.0
    );

    // The discovery document lists the upload and the admission limits.
    let designs = client::get(addr, "/v1/designs").expect("designs");
    assert_eq!(designs.status, 200);
    let ddoc = Json::parse(designs.text()).unwrap();
    let libs = ddoc.get("libraries").unwrap().as_array().unwrap().to_vec();
    assert_eq!(libs.len(), 1);
    assert_eq!(libs[0].get("id").unwrap().as_str(), Some(id.as_str()));
    let lim = ddoc.get("limits").unwrap();
    assert!(lim.get("max_library_bytes").unwrap().as_u64().unwrap() > 0);
    assert!(lim.get("max_libraries").unwrap().as_u64().unwrap() > 0);

    // Method hygiene: GET on the upload endpoint names the right verb.
    let wrong = client::get(addr, "/v1/libraries").expect("get");
    assert_eq!(wrong.status, 405);
    assert_eq!(wrong.header("allow"), Some("POST"));

    handle.shutdown();
}

#[test]
fn hostile_uploads_are_refused_with_source_positions() {
    let handle = Server::bind(ServeConfig {
        workers: 2,
        ..ServeConfig::default()
    })
    .expect("bind")
    .spawn();
    let addr = handle.addr();

    // A lexical error deep in the file: the refusal carries the machine-
    // readable position, not just prose.
    let broken = "library (broken) {\n  cell (INV_X1) {\n    area : @@;\n";
    let resp = client::upload_library(addr, broken).expect("upload");
    assert_eq!(resp.status, 422, "{}", resp.text());
    let doc = Json::parse(resp.text()).unwrap();
    assert!(doc.get("error").unwrap().as_str().is_some());
    assert!(doc.get("line").unwrap().as_u64().unwrap() >= 1);
    assert!(doc.get("column").is_some());
    assert!(doc.get("token").is_some());

    // Non-UTF-8 bodies are a 400, not a parse 422.
    let mut raw = b"POST /v1/libraries HTTP/1.1\r\nhost: scpg\r\nconnection: close\r\ncontent-length: 2\r\n\r\n".to_vec();
    raw.extend_from_slice(&[0xff, 0xfe]);
    let resp = client::raw(addr, &raw).expect("raw");
    assert_eq!(resp.status, 400, "{}", resp.text());

    // Referencing a library nobody uploaded refuses cleanly.
    let body = sweep_body(
        r#"{"kind": "multiplier", "bits": 4,
            "library": {"kind": "uploaded", "id": "00000000deadbeef"}}"#,
    );
    let resp = client::post(addr, "/v1/sweep", &body).expect("sweep");
    assert_eq!(resp.status, 422, "{}", resp.text());
    assert!(
        resp.text().contains("unknown library id"),
        "{}",
        resp.text()
    );

    handle.shutdown();
}

#[test]
fn table_backend_serves_sweeps_and_compares_through_uploaded_tables() {
    let handle = Server::bind(ServeConfig {
        workers: 2,
        ..ServeConfig::default()
    })
    .expect("bind")
    .spawn();
    let addr = handle.addr();
    let created = client::upload_library(addr, &kit_source()).expect("upload");
    assert_eq!(created.status, 201, "{}", created.text());
    let id = Json::parse(created.text())
        .unwrap()
        .get("id")
        .unwrap()
        .as_str()
        .unwrap()
        .to_string();

    // Baseline: the builtin kit under the analytical backend.
    let analytical = client::post(
        addr,
        "/v1/sweep",
        &sweep_body(r#"{"kind": "multiplier", "bits": 4}"#),
    )
    .expect("sweep");
    assert_eq!(analytical.status, 200, "{}", analytical.text());
    let p_analytical = sweep_powers(&analytical);

    // The uploaded library defaults to its tables; the lookup counter
    // moving proves the NLDM path (not the analytical fallback) ran.
    let lookups_before = metric(addr, "scpg_table_lookups_total");
    let design = format!(
        r#"{{"kind": "multiplier", "bits": 4, "library": {{"kind": "uploaded", "id": "{id}"}}}}"#
    );
    let table = client::post(addr, "/v1/sweep", &sweep_body(&design)).expect("sweep");
    assert_eq!(table.status, 200, "{}", table.text());
    let p_table = sweep_powers(&table);
    assert!(
        metric(addr, "scpg_table_lookups_total") > lookups_before,
        "table sweep must go through NLDM interpolation"
    );

    // The kit's tables are sampled from its own analytical model, so the
    // two backends agree to interpolation error — same physics, different
    // evaluation route. Differences beyond a few percent would mean the
    // tables (or the seam) are wrong.
    assert_eq!(p_table.len(), p_analytical.len());
    for (t, a) in p_table.iter().zip(&p_analytical) {
        assert!(t.is_finite() && *t > 0.0);
        let rel = (t - a).abs() / a.abs().max(1e-30);
        assert!(rel < 0.05, "table {t} vs analytical {a} (rel {rel})");
    }

    // An explicit analytical override on the uploaded library falls back
    // to closed-form evaluation of the parsed cells.
    let overridden = client::post(
        addr,
        "/v1/sweep",
        &format!(r#"{{"design": {design}, "backend": "analytical", "frequencies_hz": {FREQS}}}"#),
    )
    .expect("sweep");
    assert_eq!(overridden.status, 200, "{}", overridden.text());

    // The bake-off endpoint accepts the same selector: all five
    // registered techniques evaluate through the uploaded tables.
    let compare = client::post(
        addr,
        "/v1/compare",
        &format!(r#"{{"design": {design}, "frequencies_hz": {FREQS}}}"#),
    )
    .expect("compare");
    assert_eq!(compare.status, 200, "{}", compare.text());
    let rows = Json::parse(compare.text())
        .unwrap()
        .get("techniques")
        .unwrap()
        .as_array()
        .unwrap()
        .to_vec();
    let names: Vec<String> = rows
        .iter()
        .map(|r| r.get("technique").unwrap().as_str().unwrap().to_string())
        .collect();
    assert_eq!(names, ["baseline", "scpg", "ctsg", "ddcg", "lector"]);

    handle.shutdown();
}

#[test]
fn uploaded_libraries_survive_a_restart() {
    let dir = std::env::temp_dir().join(format!("scpg-libraries-api-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    let config = || ServeConfig {
        workers: 2,
        store_dir: Some(dir.to_string_lossy().into_owned()),
        ..ServeConfig::default()
    };

    let first = Server::bind(config()).expect("bind").spawn();
    let created = client::upload_library(first.addr(), &kit_source()).expect("upload");
    assert_eq!(created.status, 201, "{}", created.text());
    let id = Json::parse(created.text())
        .unwrap()
        .get("id")
        .unwrap()
        .as_str()
        .unwrap()
        .to_string();
    first.shutdown();

    // A new server over the same store dir re-indexes the library and
    // serves table-backed queries against it with no client re-upload.
    let second = Server::bind(config()).expect("rebind").spawn();
    let addr = second.addr();
    let listed = client::get(addr, "/v1/designs").expect("designs");
    let libs = Json::parse(listed.text())
        .unwrap()
        .get("libraries")
        .unwrap()
        .as_array()
        .unwrap()
        .to_vec();
    assert_eq!(libs.len(), 1, "{}", listed.text());
    assert_eq!(libs[0].get("id").unwrap().as_str(), Some(id.as_str()));

    let design = format!(
        r#"{{"kind": "multiplier", "bits": 4, "library": {{"kind": "uploaded", "id": "{id}"}}}}"#
    );
    let sweep = client::post(addr, "/v1/sweep", &sweep_body(&design)).expect("sweep");
    assert_eq!(sweep.status, 200, "{}", sweep.text());
    for p in sweep_powers(&sweep) {
        assert!(p.is_finite() && p > 0.0);
    }

    second.shutdown();
    let _ = std::fs::remove_dir_all(&dir);
}
