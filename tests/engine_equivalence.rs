//! Differential test of the production simulator (CSR layout plus an
//! indexed time-wheel queue) against the retained reference engine
//! (Vec-of-cells plus a binary heap): on randomly built registered
//! circuits under random stimulus, both engines must agree on every net
//! value at every cycle boundary, on the processed-event count, and on
//! the final activity record. This is the integration-level guarantee
//! that the hot-path rewrite changed performance only, never semantics.

use scpg_liberty::{Library, Logic, PvtCorner};
use scpg_netlist::{NetId, Netlist};
use scpg_rng::StdRng;
use scpg_sim::{
    run_settled, CompiledNetlist, EngineChoice, NetChange, PackedStimulus, Phase,
    ReferenceSimulator, SettledEngine, SimConfig, Simulator,
};
use scpg_synth::LogicBuilder;

const PERIOD: u64 = 1_000_000;

/// Builds a random registered circuit over 4 data inputs: a cloud of
/// random gates and one registered output.
fn build_random(rng: &mut StdRng, lib: &Library) -> (Netlist, Vec<NetId>, NetId) {
    let mut b = LogicBuilder::new("rand", lib);
    let clk = b.input("clk");
    let rn = b.input("rst_n");
    let inputs: Vec<NetId> = (0..4).map(|i| b.input(&format!("in{i}"))).collect();
    let mut pool = inputs.clone();
    let n_gates = 5 + rng.index(35);
    for _ in 0..n_gates {
        let n = pool.len();
        let pick = |rng: &mut StdRng| pool[rng.index(n)];
        let out = match rng.index(5) {
            0 => {
                let a = pick(rng);
                b.not(a)
            }
            1 => {
                let (a, c) = (pick(rng), pick(rng));
                b.and(a, c)
            }
            2 => {
                let (a, c) = (pick(rng), pick(rng));
                b.or(a, c)
            }
            3 => {
                let (a, c) = (pick(rng), pick(rng));
                b.xor(a, c)
            }
            _ => {
                let (s, a, c) = (pick(rng), pick(rng), pick(rng));
                b.mux(s, a, c)
            }
        };
        pool.push(out);
    }
    let last = *pool.last().unwrap();
    let q = b.dff_r(last, clk, rn);
    b.output("q", q);
    (b.finish(), inputs, clk)
}

/// One cycle's stimulus: random values on the data inputs.
fn random_stimulus(rng: &mut StdRng, inputs: &[NetId]) -> Vec<(NetId, Logic)> {
    inputs
        .iter()
        .map(|&n| (n, Logic::from_bool(rng.below(2) == 1)))
        .collect()
}

#[test]
fn production_engine_matches_reference_on_random_circuits() {
    let lib = Library::ninety_nm();
    let mut rng = StdRng::seed_from_u64(0xD1FF);
    for case in 0..12 {
        let (nl, inputs, clk) = build_random(&mut rng, &lib);
        let stimuli: Vec<Vec<(NetId, Logic)>> = (0..30)
            .map(|_| random_stimulus(&mut rng, &inputs))
            .collect();

        let mut sim = Simulator::new(&nl, &lib, SimConfig::default()).unwrap();
        let mut rsim = ReferenceSimulator::new(&nl, &lib, SimConfig::default()).unwrap();
        sim.set_input_by_name("rst_n", Logic::One);
        rsim.set_input_by_name("rst_n", Logic::One);
        sim.set_input(clk, Logic::Zero);
        rsim.set_input(clk, Logic::Zero);

        let mut events_new = 0u64;
        let mut events_ref = 0u64;
        for (i, stim) in stimuli.iter().enumerate() {
            let t0 = i as u64 * PERIOD;
            events_new += sim.run_until(t0);
            events_ref += rsim.run_until(t0);
            sim.set_input(clk, Logic::One);
            rsim.set_input(clk, Logic::One);
            for &(net, v) in stim {
                sim.set_input(net, v);
                rsim.set_input(net, v);
            }
            events_new += sim.run_until(t0 + PERIOD / 2);
            events_ref += rsim.run_until(t0 + PERIOD / 2);
            sim.set_input(clk, Logic::Zero);
            rsim.set_input(clk, Logic::Zero);
            events_new += sim.run_until(t0 + PERIOD);
            events_ref += rsim.run_until(t0 + PERIOD);

            for net in 0..nl.nets().len() {
                let id = NetId::from_index(net);
                assert_eq!(
                    sim.value(id),
                    rsim.value(id),
                    "case {case}, cycle {i}: net {net} diverged"
                );
            }
        }
        assert_eq!(events_new, events_ref, "case {case}: event counts diverged");

        let res_new = sim.finish();
        let res_ref = rsim.finish();
        assert_eq!(res_new.end_ps, res_ref.end_ps, "case {case}");
        assert_eq!(
            res_new.activity, res_ref.activity,
            "case {case}: activity records diverged"
        );
    }
}

/// Packs `lanes` independent random stimulus sequences into one settled
/// program mirroring the drive protocol above: at each cycle boundary
/// the clock rises and fresh data applies (in that order, matching
/// event scheduling order); the clock falls mid-cycle; settled state is
/// observed at every boundary.
fn packed_random_program(
    rng: &mut StdRng,
    inputs: &[NetId],
    clk: NetId,
    rst_n: NetId,
    lanes: usize,
    cycles: usize,
) -> PackedStimulus {
    let all: u64 = (1u64 << lanes) - 1;
    let data = |rng: &mut StdRng| -> Vec<NetChange> {
        inputs
            .iter()
            .map(|&n| {
                let mut plane = 0u64;
                for lane in 0..lanes {
                    if rng.below(2) == 1 {
                        plane |= 1 << lane;
                    }
                }
                NetChange::word(n, all, plane)
            })
            .collect()
    };
    let mut phases = Vec::new();
    for i in 0..cycles {
        let t0 = i as u64 * PERIOD;
        let mut changes = Vec::new();
        if i == 0 {
            changes.push(NetChange::level(rst_n, all, true));
            changes.push(NetChange::level(clk, all, false));
        }
        changes.push(NetChange::level(clk, all, true));
        changes.extend(data(rng));
        phases.push(Phase {
            t: t0,
            observe: i > 0,
            changes,
        });
        phases.push(Phase {
            t: t0 + PERIOD / 2,
            observe: false,
            changes: vec![NetChange::level(clk, all, false)],
        });
    }
    phases.push(Phase {
        t: cycles as u64 * PERIOD,
        observe: true,
        changes: Vec::new(),
    });
    PackedStimulus {
        phases,
        lane_ends: vec![cycles as u64 * PERIOD; lanes],
    }
}

/// The bit-parallel engine must match per-lane event-engine runs exactly
/// — per-net toggle counts, unknown transitions and residency — on
/// seeded random registered circuits under the settled observation
/// protocol.
#[test]
fn bitparallel_matches_event_engine_on_random_circuits() {
    let lib = Library::ninety_nm();
    let mut rng = StdRng::seed_from_u64(0xB17);
    for case in 0..12 {
        let (nl, inputs, clk) = build_random(&mut rng, &lib);
        let rst_n = nl.net_by_name("rst_n").expect("reset net exists");
        let compiled = CompiledNetlist::compile(&nl, &lib, PvtCorner::default()).unwrap();
        let lanes = 1 + rng.index(33);
        let program = packed_random_program(&mut rng, &inputs, clk, rst_n, lanes, 30);

        let fast = run_settled(&compiled, &program, None, EngineChoice::BitParallel)
            .expect("random registered circuits levelize");
        assert_eq!(fast.engine, SettledEngine::BitParallel);
        let slow = run_settled(&compiled, &program, None, EngineChoice::Event).unwrap();
        assert_eq!(slow.engine, SettledEngine::Event);
        assert_eq!(fast.activities.len(), lanes);
        for lane in 0..lanes {
            assert_eq!(
                fast.activities[lane], slow.activities[lane],
                "case {case}, lane {lane}: settled activity diverged"
            );
        }
        // Auto picks the fast path for these designs.
        let auto = run_settled(&compiled, &program, None, EngineChoice::Auto).unwrap();
        assert_eq!(auto.engine, SettledEngine::BitParallel);
        assert_eq!(auto.activities, fast.activities);
    }
}

/// Designs the oblivious engine cannot represent fall back to the event
/// engine: a logic-driven (gated) flop clock must fail levelization, and
/// `Auto` must still serve the request.
#[test]
fn gated_clock_falls_back_to_event_engine() {
    let lib = Library::ninety_nm();
    let mut nl = Netlist::new("gated");
    let clk = nl.add_input("clk");
    let d = nl.add_input("d");
    let gclk = nl.add_fresh_net();
    let q = nl.add_output("q");
    nl.add_instance("g0", "INV_X1", &[clk, gclk]).unwrap();
    nl.add_instance("r0", "DFF_X1", &[d, gclk, q]).unwrap();
    let compiled = CompiledNetlist::compile(&nl, &lib, PvtCorner::default()).unwrap();

    let err = compiled.levelized().expect_err("gated clock must refuse");
    assert!(err.contains("gated clock"), "{err}");
    // The refusal is cached, not recomputed.
    assert_eq!(compiled.levelized().expect_err("still cached"), err);

    let program = PackedStimulus {
        phases: vec![
            Phase {
                t: 0,
                observe: false,
                changes: vec![
                    NetChange::level(clk, 1, false),
                    NetChange::level(d, 1, true),
                ],
            },
            Phase {
                t: PERIOD,
                observe: true,
                changes: Vec::new(),
            },
        ],
        lane_ends: vec![PERIOD],
    };
    assert!(run_settled(&compiled, &program, None, EngineChoice::BitParallel).is_err());
    let auto = run_settled(&compiled, &program, None, EngineChoice::Auto).unwrap();
    assert_eq!(auto.engine, SettledEngine::Event, "auto must fall back");
    assert_eq!(auto.activities.len(), 1);
}
