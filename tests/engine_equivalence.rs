//! Differential test of the production simulator (CSR layout plus an
//! indexed time-wheel queue) against the retained reference engine
//! (Vec-of-cells plus a binary heap): on randomly built registered
//! circuits under random stimulus, both engines must agree on every net
//! value at every cycle boundary, on the processed-event count, and on
//! the final activity record. This is the integration-level guarantee
//! that the hot-path rewrite changed performance only, never semantics.

use scpg_liberty::{Library, Logic};
use scpg_netlist::{NetId, Netlist};
use scpg_rng::StdRng;
use scpg_sim::{ReferenceSimulator, SimConfig, Simulator};
use scpg_synth::LogicBuilder;

const PERIOD: u64 = 1_000_000;

/// Builds a random registered circuit over 4 data inputs: a cloud of
/// random gates and one registered output.
fn build_random(rng: &mut StdRng, lib: &Library) -> (Netlist, Vec<NetId>, NetId) {
    let mut b = LogicBuilder::new("rand", lib);
    let clk = b.input("clk");
    let rn = b.input("rst_n");
    let inputs: Vec<NetId> = (0..4).map(|i| b.input(&format!("in{i}"))).collect();
    let mut pool = inputs.clone();
    let n_gates = 5 + rng.index(35);
    for _ in 0..n_gates {
        let n = pool.len();
        let pick = |rng: &mut StdRng| pool[rng.index(n)];
        let out = match rng.index(5) {
            0 => {
                let a = pick(rng);
                b.not(a)
            }
            1 => {
                let (a, c) = (pick(rng), pick(rng));
                b.and(a, c)
            }
            2 => {
                let (a, c) = (pick(rng), pick(rng));
                b.or(a, c)
            }
            3 => {
                let (a, c) = (pick(rng), pick(rng));
                b.xor(a, c)
            }
            _ => {
                let (s, a, c) = (pick(rng), pick(rng), pick(rng));
                b.mux(s, a, c)
            }
        };
        pool.push(out);
    }
    let last = *pool.last().unwrap();
    let q = b.dff_r(last, clk, rn);
    b.output("q", q);
    (b.finish(), inputs, clk)
}

/// One cycle's stimulus: random values on the data inputs.
fn random_stimulus(rng: &mut StdRng, inputs: &[NetId]) -> Vec<(NetId, Logic)> {
    inputs
        .iter()
        .map(|&n| (n, Logic::from_bool(rng.below(2) == 1)))
        .collect()
}

#[test]
fn production_engine_matches_reference_on_random_circuits() {
    let lib = Library::ninety_nm();
    let mut rng = StdRng::seed_from_u64(0xD1FF);
    for case in 0..12 {
        let (nl, inputs, clk) = build_random(&mut rng, &lib);
        let stimuli: Vec<Vec<(NetId, Logic)>> = (0..30)
            .map(|_| random_stimulus(&mut rng, &inputs))
            .collect();

        let mut sim = Simulator::new(&nl, &lib, SimConfig::default()).unwrap();
        let mut rsim = ReferenceSimulator::new(&nl, &lib, SimConfig::default()).unwrap();
        sim.set_input_by_name("rst_n", Logic::One);
        rsim.set_input_by_name("rst_n", Logic::One);
        sim.set_input(clk, Logic::Zero);
        rsim.set_input(clk, Logic::Zero);

        let mut events_new = 0u64;
        let mut events_ref = 0u64;
        for (i, stim) in stimuli.iter().enumerate() {
            let t0 = i as u64 * PERIOD;
            events_new += sim.run_until(t0);
            events_ref += rsim.run_until(t0);
            sim.set_input(clk, Logic::One);
            rsim.set_input(clk, Logic::One);
            for &(net, v) in stim {
                sim.set_input(net, v);
                rsim.set_input(net, v);
            }
            events_new += sim.run_until(t0 + PERIOD / 2);
            events_ref += rsim.run_until(t0 + PERIOD / 2);
            sim.set_input(clk, Logic::Zero);
            rsim.set_input(clk, Logic::Zero);
            events_new += sim.run_until(t0 + PERIOD);
            events_ref += rsim.run_until(t0 + PERIOD);

            for net in 0..nl.nets().len() {
                let id = NetId::from_index(net);
                assert_eq!(
                    sim.value(id),
                    rsim.value(id),
                    "case {case}, cycle {i}: net {net} diverged"
                );
            }
        }
        assert_eq!(events_new, events_ref, "case {case}: event counts diverged");

        let res_new = sim.finish();
        let res_ref = rsim.finish();
        assert_eq!(res_new.end_ps, res_ref.end_ps, "case {case}");
        assert_eq!(
            res_new.activity, res_ref.activity,
            "case {case}: activity records diverged"
        );
    }
}
