//! End-to-end tests of the operational introspection plane: wide-event
//! request logs (`GET /v1/logs`), the uniform store accounting behind
//! `GET /v1/status` and the `scpg_store_*` metric families, the
//! event-loop lag watchdog, `(refused)`-request accounting, and
//! `limit=`/`before=` pagination on `GET /v1/traces`.

use scpg_json::Json;
use scpg_serve::metrics::parse_metric;
use scpg_serve::{client, ServeConfig, Server};

const SWEEP_BODY: &str =
    r#"{"design": {"kind": "multiplier", "bits": 4}, "frequencies_hz": [1e6], "mode": "scpg"}"#;

fn tiny_server(config: ServeConfig) -> scpg_serve::ServerHandle {
    Server::bind(config).expect("bind").spawn()
}

fn parse_body(resp: &client::ClientResponse) -> Json {
    Json::parse(resp.text()).expect("response is JSON")
}

/// One cache-miss sweep produces exactly one wide event whose trace id
/// pivots into `GET /v1/traces/{id}`, with nonzero worker CPU time and
/// the engine-work columns attached.
#[test]
fn cache_miss_sweep_emits_one_queryable_wide_event() {
    let handle = tiny_server(ServeConfig {
        workers: 2,
        ..ServeConfig::default()
    });
    let addr = handle.addr();

    let sweep = client::post(addr, "/v1/sweep", SWEEP_BODY).expect("sweep");
    assert_eq!(sweep.status, 200, "{}", sweep.text());
    let trace_id = sweep
        .header("x-scpg-trace-id")
        .expect("trace id echoed")
        .to_string();

    let logs = client::get(addr, "/v1/logs?endpoint=sweep").expect("logs");
    assert_eq!(logs.status, 200, "{}", logs.text());
    let doc = parse_body(&logs);
    let events = doc.get("events").and_then(Json::as_array).expect("events");
    assert_eq!(events.len(), 1, "exactly one sweep event: {}", logs.text());
    let ev = &events[0];
    assert_eq!(ev.get("kind").and_then(Json::as_str), Some("request"));
    assert_eq!(ev.get("endpoint").and_then(Json::as_str), Some("sweep"));
    assert_eq!(ev.get("status").and_then(Json::as_u64), Some(200));
    assert_eq!(
        ev.get("trace_id").and_then(Json::as_str),
        Some(trace_id.as_str()),
        "the event carries the id the client saw"
    );
    let total_us = ev.get("total_us").and_then(Json::as_u64).unwrap();
    assert!(total_us > 0, "wall time recorded");
    let worker_cpu_us = ev.get("worker_cpu_us").and_then(Json::as_u64).unwrap();
    assert!(
        worker_cpu_us > 0,
        "a cache miss burns worker CPU: {}",
        logs.text()
    );
    let fields = ev.get("fields").expect("fields");
    assert_eq!(
        fields.get("cache").and_then(Json::as_str),
        Some("miss"),
        "{}",
        logs.text()
    );
    assert!(
        fields.get("sim_events").is_some() && fields.get("sim_gate_evals").is_some(),
        "engine-work columns attached: {}",
        logs.text()
    );

    // The same id resolves in the trace store — one id pivots between
    // the log row and the stage-by-stage trace.
    let trace = client::get(addr, &format!("/v1/traces/{trace_id}")).expect("trace");
    assert_eq!(trace.status, 200, "{}", trace.text());
    assert_eq!(
        parse_body(&trace).get("id").and_then(Json::as_str),
        Some(trace_id.as_str())
    );

    // The cache hit is a distinguishable second event: no worker ran.
    let hit = client::post(addr, "/v1/sweep", SWEEP_BODY).expect("sweep hit");
    assert_eq!(hit.status, 200);
    let logs = client::get(addr, "/v1/logs?endpoint=sweep").expect("logs");
    let doc = parse_body(&logs);
    let events = doc.get("events").and_then(Json::as_array).expect("events");
    assert_eq!(events.len(), 2);
    let newest = &events[0]; // recent first
    assert_eq!(
        newest
            .get("fields")
            .and_then(|f| f.get("cache"))
            .and_then(Json::as_str),
        Some("hit")
    );
    assert_eq!(
        newest.get("worker_cpu_us").and_then(Json::as_u64),
        Some(0),
        "a hit never reaches a worker"
    );

    handle.shutdown();
}

/// `GET /v1/logs` filters compose, garbage filter values answer 422,
/// and the ring stays bounded (evicting oldest) under sustained load.
#[test]
fn logs_filtering_and_ring_eviction() {
    let handle = tiny_server(ServeConfig {
        workers: 2,
        event_log_capacity: 8,
        ..ServeConfig::default()
    });
    let addr = handle.addr();

    for i in 0..20 {
        let resp = client::get(addr, &format!("/missing-{i}")).expect("404");
        assert_eq!(resp.status, 404);
    }
    let ok = client::get(addr, "/healthz").expect("healthz");
    assert_eq!(ok.status, 200);

    let logs = client::get(addr, "/v1/logs").expect("logs");
    let doc = parse_body(&logs);
    assert_eq!(doc.get("capacity").and_then(Json::as_u64), Some(8));
    assert!(
        doc.get("recorded").and_then(Json::as_u64).unwrap() >= 21,
        "{}",
        logs.text()
    );
    assert!(
        doc.get("evicted").and_then(Json::as_u64).unwrap() >= 13,
        "{}",
        logs.text()
    );
    let events = doc.get("events").and_then(Json::as_array).unwrap();
    assert!(events.len() <= 8, "ring never exceeds capacity");

    // Status filter: only the 404s.
    let logs = client::get(addr, "/v1/logs?status=404&limit=3").expect("logs");
    let events = parse_body(&logs)
        .get("events")
        .and_then(Json::as_array)
        .unwrap()
        .to_vec();
    assert_eq!(events.len(), 3);
    assert!(events
        .iter()
        .all(|e| e.get("status").and_then(Json::as_u64) == Some(404)));

    // min_duration_us high enough to exclude everything.
    let logs = client::get(addr, "/v1/logs?min_duration_us=60000000").expect("logs");
    let events = parse_body(&logs)
        .get("events")
        .and_then(Json::as_array)
        .unwrap()
        .to_vec();
    assert!(events.is_empty(), "nothing takes a minute");

    // Garbage numeric filters refuse instead of matching everything.
    let bad = client::get(addr, "/v1/logs?status=fast").expect("bad filter");
    assert_eq!(bad.status, 422, "{}", bad.text());

    // Reading the log does not append to it.
    let before = parse_body(&client::get(addr, "/v1/logs").expect("logs"))
        .get("recorded")
        .and_then(Json::as_u64)
        .unwrap();
    let _ = client::get(addr, "/v1/logs").expect("logs");
    let after = parse_body(&client::get(addr, "/v1/logs").expect("logs"))
        .get("recorded")
        .and_then(Json::as_u64)
        .unwrap();
    assert_eq!(before, after, "`/v1/logs` reads are exempt from the log");

    handle.shutdown();
}

/// `GET /v1/status` reports every bounded structure through the shared
/// `Introspect` seam, and `/metrics` exports the same rows as
/// `scpg_store_*` families plus build info and uptime.
#[test]
fn status_reports_every_store_and_metrics_mirror_it() {
    let handle = tiny_server(ServeConfig {
        workers: 2,
        ..ServeConfig::default()
    });
    let addr = handle.addr();

    // Populate a few stores: one miss + one hit on the result cache,
    // one artifact, one trace, events throughout.
    for _ in 0..2 {
        let resp = client::post(addr, "/v1/sweep", SWEEP_BODY).expect("sweep");
        assert_eq!(resp.status, 200);
    }

    let status = client::get(addr, "/v1/status").expect("status");
    assert_eq!(status.status, 200, "{}", status.text());
    let doc = parse_body(&status);
    assert!(doc.get("boot").and_then(Json::as_str).is_some());
    assert!(doc.get("version").and_then(Json::as_str).is_some());
    assert!(doc.get("uptime_seconds").and_then(Json::as_f64).unwrap() >= 0.0);
    assert!(doc.get("queue").and_then(|q| q.get("capacity")).is_some());
    assert!(doc
        .get("event_loop")
        .and_then(|l| l.get("stalls_total"))
        .is_some());

    let stores = doc.get("stores").and_then(Json::as_array).expect("stores");
    let names: Vec<&str> = stores
        .iter()
        .filter_map(|s| s.get("name").and_then(Json::as_str))
        .collect();
    for expected in [
        "result_cache",
        "design_registry",
        "technique_models",
        "library_lru",
        "trace_store",
        "work_queue",
        "event_log",
    ] {
        assert!(names.contains(&expected), "missing {expected}: {names:?}");
    }
    let cache = stores
        .iter()
        .find(|s| s.get("name").and_then(Json::as_str) == Some("result_cache"))
        .unwrap();
    assert_eq!(cache.get("entries").and_then(Json::as_u64), Some(1));
    assert_eq!(cache.get("hits").and_then(Json::as_u64), Some(1));
    assert_eq!(cache.get("misses").and_then(Json::as_u64), Some(1));
    assert!(cache.get("bytes_estimate").and_then(Json::as_u64).unwrap() > 0);
    let registry = stores
        .iter()
        .find(|s| s.get("name").and_then(Json::as_str) == Some("design_registry"))
        .unwrap();
    assert_eq!(registry.get("entries").and_then(Json::as_u64), Some(1));

    // The same rows on /metrics, next to build info and uptime.
    let metrics = client::get(addr, "/metrics").expect("metrics");
    let text = metrics.text();
    assert_eq!(
        parse_metric(text, "scpg_store_entries{store=\"result_cache\"}"),
        Some(1.0),
        "{text}"
    );
    assert_eq!(
        parse_metric(text, "scpg_store_misses_total{store=\"result_cache\"}"),
        Some(1.0)
    );
    assert!(parse_metric(text, "scpg_store_entries{store=\"event_log\"}").unwrap() > 0.0);
    assert!(text.contains("scpg_build_info{"), "{text}");
    assert!(parse_metric(text, "scpg_uptime_seconds").unwrap() >= 0.0);
    assert!(
        text.contains("scpg_eventloop_lag_seconds_bucket"),
        "watchdog histogram exported: {text}"
    );

    handle.shutdown();
}

/// An injected event-loop stall trips the watchdog: the stall counter
/// increments and a `watchdog` wide event lands in the log.
#[test]
fn injected_stall_trips_the_watchdog() {
    let handle = tiny_server(ServeConfig {
        workers: 2,
        watchdog_tick_ms: 20,
        watchdog_stall_ms: 10,
        debug_loop_stall_ms: 30,
        ..ServeConfig::default()
    });
    let addr = handle.addr();

    // Any request forces at least one loop iteration through the
    // injected 30 ms sleep (> the 10 ms stall threshold).
    let ok = client::get(addr, "/healthz").expect("healthz");
    assert_eq!(ok.status, 200);
    assert!(
        handle.metrics().eventloop_stalls >= 1,
        "stall counted: {}",
        handle.metrics().eventloop_stalls
    );

    let metrics = client::get(addr, "/metrics").expect("metrics");
    assert!(parse_metric(metrics.text(), "scpg_eventloop_stalls_total").unwrap() >= 1.0);

    let logs = client::get(addr, "/v1/logs?endpoint=(loop)").expect("logs");
    let doc = parse_body(&logs);
    let events = doc.get("events").and_then(Json::as_array).unwrap();
    assert!(
        !events.is_empty(),
        "watchdog event recorded: {}",
        logs.text()
    );
    let ev = &events[0];
    assert_eq!(ev.get("kind").and_then(Json::as_str), Some("watchdog"));
    assert!(ev.get("total_us").and_then(Json::as_u64).unwrap() >= 10_000);

    handle.shutdown();
}

/// Requests refused before routing (malformed, unsupported version)
/// are first-class in the accounting: counted under
/// `endpoint="(refused)"` and logged as wide events.
#[test]
fn refused_requests_are_counted_and_logged() {
    let handle = tiny_server(ServeConfig {
        workers: 2,
        ..ServeConfig::default()
    });
    let addr = handle.addr();

    let mut conn = client::ClientConn::connect(addr).expect("connect");
    conn.send_raw(b"GET / HTTP/2.0\r\nhost: scpg\r\n\r\n")
        .expect("send");
    let resp = conn.read_response().expect("refusal is a real response");
    assert_eq!(resp.status, 505, "{}", resp.text());

    let metrics = client::get(addr, "/metrics").expect("metrics");
    assert_eq!(
        parse_metric(
            metrics.text(),
            "scpg_requests_total{endpoint=\"(refused)\"}"
        ),
        Some(1.0),
        "{}",
        metrics.text()
    );

    let logs = client::get(addr, "/v1/logs?endpoint=(refused)").expect("logs");
    let events = parse_body(&logs)
        .get("events")
        .and_then(Json::as_array)
        .unwrap()
        .to_vec();
    assert_eq!(events.len(), 1, "{}", logs.text());
    assert_eq!(events[0].get("status").and_then(Json::as_u64), Some(505));

    handle.shutdown();
}

/// `GET /v1/traces` pages with `limit=` and `before=<seq>`; bad values
/// answer 422.
#[test]
fn traces_paginate_by_limit_and_before() {
    let handle = tiny_server(ServeConfig {
        workers: 2,
        ..ServeConfig::default()
    });
    let addr = handle.addr();

    // Three cheap trace-producing requests (404s still record a
    // request span under a fresh trace id).
    for i in 0..3 {
        let resp = client::get(addr, &format!("/missing-{i}")).expect("404");
        assert_eq!(resp.status, 404);
    }

    let all = parse_body(&client::get(addr, "/v1/traces").expect("traces"));
    let rows = all.get("traces").and_then(Json::as_array).unwrap();
    assert!(rows.len() >= 3);
    // Recent-first, with the seq cursor exposed.
    let seqs: Vec<u64> = rows
        .iter()
        .map(|t| t.get("seq").and_then(Json::as_u64).unwrap())
        .collect();
    assert!(seqs.windows(2).all(|w| w[0] > w[1]), "descending: {seqs:?}");

    let page1 = parse_body(&client::get(addr, "/v1/traces?limit=2").expect("page 1"));
    let rows1 = page1.get("traces").and_then(Json::as_array).unwrap();
    assert_eq!(rows1.len(), 2);
    let cursor = rows1[1].get("seq").and_then(Json::as_u64).unwrap();

    let page2 = parse_body(
        &client::get(addr, &format!("/v1/traces?limit=2&before={cursor}")).expect("page 2"),
    );
    let rows2 = page2.get("traces").and_then(Json::as_array).unwrap();
    assert!(!rows2.is_empty(), "a further page exists");
    assert!(rows2
        .iter()
        .all(|t| t.get("seq").and_then(Json::as_u64).unwrap() < cursor));

    let bad = client::get(addr, "/v1/traces?limit=lots").expect("bad limit");
    assert_eq!(bad.status, 422, "{}", bad.text());

    handle.shutdown();
}

/// Batch jobs report through the same plane: each chunk leaves a
/// `chunk` wide event under the job's trace id.
#[test]
fn batch_chunks_emit_wide_events() {
    let handle = tiny_server(ServeConfig {
        workers: 2,
        ..ServeConfig::default()
    });
    let addr = handle.addr();

    let submit = client::post(
        addr,
        "/v1/jobs",
        r#"{"kind": "sweep", "chunk_units": 2,
            "request": {"design": {"kind": "multiplier", "bits": 4},
                        "frequencies_hz": [1e6, 2e6, 3e6, 4e6], "mode": "scpg"}}"#,
    )
    .expect("submit");
    assert_eq!(submit.status, 202, "{}", submit.text());
    let trace_id = parse_body(&submit)
        .get("trace_id")
        .and_then(Json::as_str)
        .unwrap()
        .to_string();

    // Poll until the job finishes (chunks run on the batch lane).
    let id = parse_body(&submit)
        .get("id")
        .and_then(Json::as_str)
        .unwrap()
        .to_string();
    for _ in 0..200 {
        let status = client::get(addr, &format!("/v1/jobs/{id}")).expect("job status");
        if parse_body(&status).get("state").and_then(Json::as_str) == Some("done") {
            break;
        }
        std::thread::sleep(std::time::Duration::from_millis(25));
    }

    let logs = client::get(addr, "/v1/logs?endpoint=job").expect("logs");
    let events = parse_body(&logs)
        .get("events")
        .and_then(Json::as_array)
        .unwrap()
        .to_vec();
    assert_eq!(events.len(), 2, "4 units / 2 per chunk: {}", logs.text());
    for ev in &events {
        assert_eq!(ev.get("kind").and_then(Json::as_str), Some("chunk"));
        assert_eq!(ev.get("status").and_then(Json::as_u64), Some(200));
        assert_eq!(
            ev.get("trace_id").and_then(Json::as_str),
            Some(trace_id.as_str()),
            "chunk events file under the submitter's trace id"
        );
        assert!(ev.get("worker_cpu_us").and_then(Json::as_u64).unwrap() > 0);
    }

    handle.shutdown();
}
