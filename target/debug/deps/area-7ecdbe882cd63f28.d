/root/repo/target/debug/deps/area-7ecdbe882cd63f28.d: crates/bench/src/bin/area.rs Cargo.toml

/root/repo/target/debug/deps/libarea-7ecdbe882cd63f28.rmeta: crates/bench/src/bin/area.rs Cargo.toml

crates/bench/src/bin/area.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
