/root/repo/target/debug/deps/scpg_repro-a1c23b84d747b366.d: src/lib.rs

/root/repo/target/debug/deps/scpg_repro-a1c23b84d747b366: src/lib.rs

src/lib.rs:
