/root/repo/target/debug/deps/substrates-cce54c0206f8a3d3.d: crates/bench/benches/substrates.rs Cargo.toml

/root/repo/target/debug/deps/libsubstrates-cce54c0206f8a3d3.rmeta: crates/bench/benches/substrates.rs Cargo.toml

crates/bench/benches/substrates.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
