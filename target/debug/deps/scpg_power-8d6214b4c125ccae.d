/root/repo/target/debug/deps/scpg_power-8d6214b4c125ccae.d: crates/power/src/lib.rs crates/power/src/analyzer.rs crates/power/src/subthreshold.rs crates/power/src/variation.rs Cargo.toml

/root/repo/target/debug/deps/libscpg_power-8d6214b4c125ccae.rmeta: crates/power/src/lib.rs crates/power/src/analyzer.rs crates/power/src/subthreshold.rs crates/power/src/variation.rs Cargo.toml

crates/power/src/lib.rs:
crates/power/src/analyzer.rs:
crates/power/src/subthreshold.rs:
crates/power/src/variation.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
