/root/repo/target/debug/deps/scpg_exec-d56e6870bc61609f.d: crates/exec/src/lib.rs Cargo.toml

/root/repo/target/debug/deps/libscpg_exec-d56e6870bc61609f.rmeta: crates/exec/src/lib.rs Cargo.toml

crates/exec/src/lib.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
