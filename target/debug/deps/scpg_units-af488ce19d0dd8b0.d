/root/repo/target/debug/deps/scpg_units-af488ce19d0dd8b0.d: crates/units/src/lib.rs crates/units/src/display.rs crates/units/src/quantities.rs crates/units/src/sweep.rs

/root/repo/target/debug/deps/libscpg_units-af488ce19d0dd8b0.rlib: crates/units/src/lib.rs crates/units/src/display.rs crates/units/src/quantities.rs crates/units/src/sweep.rs

/root/repo/target/debug/deps/libscpg_units-af488ce19d0dd8b0.rmeta: crates/units/src/lib.rs crates/units/src/display.rs crates/units/src/quantities.rs crates/units/src/sweep.rs

crates/units/src/lib.rs:
crates/units/src/display.rs:
crates/units/src/quantities.rs:
crates/units/src/sweep.rs:
