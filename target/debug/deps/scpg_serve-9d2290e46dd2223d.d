/root/repo/target/debug/deps/scpg_serve-9d2290e46dd2223d.d: crates/serve/src/lib.rs crates/serve/src/api.rs crates/serve/src/cache.rs crates/serve/src/client.rs crates/serve/src/designs.rs crates/serve/src/http.rs crates/serve/src/metrics.rs crates/serve/src/queue.rs

/root/repo/target/debug/deps/scpg_serve-9d2290e46dd2223d: crates/serve/src/lib.rs crates/serve/src/api.rs crates/serve/src/cache.rs crates/serve/src/client.rs crates/serve/src/designs.rs crates/serve/src/http.rs crates/serve/src/metrics.rs crates/serve/src/queue.rs

crates/serve/src/lib.rs:
crates/serve/src/api.rs:
crates/serve/src/cache.rs:
crates/serve/src/client.rs:
crates/serve/src/designs.rs:
crates/serve/src/http.rs:
crates/serve/src/metrics.rs:
crates/serve/src/queue.rs:
