/root/repo/target/debug/deps/cpu_scpg_replay-46963d499b741753.d: tests/cpu_scpg_replay.rs

/root/repo/target/debug/deps/cpu_scpg_replay-46963d499b741753: tests/cpu_scpg_replay.rs

tests/cpu_scpg_replay.rs:
