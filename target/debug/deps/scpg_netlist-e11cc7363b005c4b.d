/root/repo/target/debug/deps/scpg_netlist-e11cc7363b005c4b.d: crates/netlist/src/lib.rs crates/netlist/src/error.rs crates/netlist/src/graph.rs crates/netlist/src/netlist.rs crates/netlist/src/stats.rs crates/netlist/src/verilog.rs

/root/repo/target/debug/deps/scpg_netlist-e11cc7363b005c4b: crates/netlist/src/lib.rs crates/netlist/src/error.rs crates/netlist/src/graph.rs crates/netlist/src/netlist.rs crates/netlist/src/stats.rs crates/netlist/src/verilog.rs

crates/netlist/src/lib.rs:
crates/netlist/src/error.rs:
crates/netlist/src/graph.rs:
crates/netlist/src/netlist.rs:
crates/netlist/src/stats.rs:
crates/netlist/src/verilog.rs:
