/root/repo/target/debug/deps/bench-2d2f5e8eb934cb12.d: crates/bench/src/bin/bench.rs Cargo.toml

/root/repo/target/debug/deps/libbench-2d2f5e8eb934cb12.rmeta: crates/bench/src/bin/bench.rs Cargo.toml

crates/bench/src/bin/bench.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
