/root/repo/target/debug/deps/scpg_units-43d41e3a7280a6a3.d: crates/units/src/lib.rs crates/units/src/display.rs crates/units/src/quantities.rs crates/units/src/sweep.rs Cargo.toml

/root/repo/target/debug/deps/libscpg_units-43d41e3a7280a6a3.rmeta: crates/units/src/lib.rs crates/units/src/display.rs crates/units/src/quantities.rs crates/units/src/sweep.rs Cargo.toml

crates/units/src/lib.rs:
crates/units/src/display.rs:
crates/units/src/quantities.rs:
crates/units/src/sweep.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
