/root/repo/target/debug/deps/scpg_isa-973f148d67bd0d1e.d: crates/isa/src/lib.rs crates/isa/src/asm.rs crates/isa/src/dhrystone.rs crates/isa/src/inst.rs crates/isa/src/iss.rs

/root/repo/target/debug/deps/scpg_isa-973f148d67bd0d1e: crates/isa/src/lib.rs crates/isa/src/asm.rs crates/isa/src/dhrystone.rs crates/isa/src/inst.rs crates/isa/src/iss.rs

crates/isa/src/lib.rs:
crates/isa/src/asm.rs:
crates/isa/src/dhrystone.rs:
crates/isa/src/inst.rs:
crates/isa/src/iss.rs:
