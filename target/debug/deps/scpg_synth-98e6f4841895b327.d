/root/repo/target/debug/deps/scpg_synth-98e6f4841895b327.d: crates/synth/src/lib.rs crates/synth/src/builder.rs crates/synth/src/cts.rs crates/synth/src/prune.rs crates/synth/src/word.rs

/root/repo/target/debug/deps/libscpg_synth-98e6f4841895b327.rlib: crates/synth/src/lib.rs crates/synth/src/builder.rs crates/synth/src/cts.rs crates/synth/src/prune.rs crates/synth/src/word.rs

/root/repo/target/debug/deps/libscpg_synth-98e6f4841895b327.rmeta: crates/synth/src/lib.rs crates/synth/src/builder.rs crates/synth/src/cts.rs crates/synth/src/prune.rs crates/synth/src/word.rs

crates/synth/src/lib.rs:
crates/synth/src/builder.rs:
crates/synth/src/cts.rs:
crates/synth/src/prune.rs:
crates/synth/src/word.rs:
