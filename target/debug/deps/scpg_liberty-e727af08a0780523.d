/root/repo/target/debug/deps/scpg_liberty-e727af08a0780523.d: crates/liberty/src/lib.rs crates/liberty/src/cell.rs crates/liberty/src/format.rs crates/liberty/src/headers.rs crates/liberty/src/library.rs crates/liberty/src/logic.rs crates/liberty/src/model.rs Cargo.toml

/root/repo/target/debug/deps/libscpg_liberty-e727af08a0780523.rmeta: crates/liberty/src/lib.rs crates/liberty/src/cell.rs crates/liberty/src/format.rs crates/liberty/src/headers.rs crates/liberty/src/library.rs crates/liberty/src/logic.rs crates/liberty/src/model.rs Cargo.toml

crates/liberty/src/lib.rs:
crates/liberty/src/cell.rs:
crates/liberty/src/format.rs:
crates/liberty/src/headers.rs:
crates/liberty/src/library.rs:
crates/liberty/src/logic.rs:
crates/liberty/src/model.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
