/root/repo/target/debug/deps/ablations-b008d0a42dd95a81.d: crates/bench/benches/ablations.rs Cargo.toml

/root/repo/target/debug/deps/libablations-b008d0a42dd95a81.rmeta: crates/bench/benches/ablations.rs Cargo.toml

crates/bench/benches/ablations.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
