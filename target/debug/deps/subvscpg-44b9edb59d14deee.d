/root/repo/target/debug/deps/subvscpg-44b9edb59d14deee.d: crates/bench/src/bin/subvscpg.rs

/root/repo/target/debug/deps/subvscpg-44b9edb59d14deee: crates/bench/src/bin/subvscpg.rs

crates/bench/src/bin/subvscpg.rs:
