/root/repo/target/debug/deps/lifecycle-8fd72da983f2cc01.d: crates/bench/src/bin/lifecycle.rs

/root/repo/target/debug/deps/lifecycle-8fd72da983f2cc01: crates/bench/src/bin/lifecycle.rs

crates/bench/src/bin/lifecycle.rs:
