/root/repo/target/debug/deps/scpg_bench-e9f9ff9dc1084ffc.d: crates/bench/src/lib.rs Cargo.toml

/root/repo/target/debug/deps/libscpg_bench-e9f9ff9dc1084ffc.rmeta: crates/bench/src/lib.rs Cargo.toml

crates/bench/src/lib.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
