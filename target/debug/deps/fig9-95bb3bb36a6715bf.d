/root/repo/target/debug/deps/fig9-95bb3bb36a6715bf.d: crates/bench/src/bin/fig9.rs

/root/repo/target/debug/deps/fig9-95bb3bb36a6715bf: crates/bench/src/bin/fig9.rs

crates/bench/src/bin/fig9.rs:
