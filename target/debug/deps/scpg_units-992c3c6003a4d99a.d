/root/repo/target/debug/deps/scpg_units-992c3c6003a4d99a.d: crates/units/src/lib.rs crates/units/src/display.rs crates/units/src/quantities.rs crates/units/src/sweep.rs Cargo.toml

/root/repo/target/debug/deps/libscpg_units-992c3c6003a4d99a.rmeta: crates/units/src/lib.rs crates/units/src/display.rs crates/units/src/quantities.rs crates/units/src/sweep.rs Cargo.toml

crates/units/src/lib.rs:
crates/units/src/display.rs:
crates/units/src/quantities.rs:
crates/units/src/sweep.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
