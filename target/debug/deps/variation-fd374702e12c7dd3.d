/root/repo/target/debug/deps/variation-fd374702e12c7dd3.d: crates/bench/src/bin/variation.rs Cargo.toml

/root/repo/target/debug/deps/libvariation-fd374702e12c7dd3.rmeta: crates/bench/src/bin/variation.rs Cargo.toml

crates/bench/src/bin/variation.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
