/root/repo/target/debug/deps/properties-19ef10f22b52eedb.d: tests/properties.rs Cargo.toml

/root/repo/target/debug/deps/libproperties-19ef10f22b52eedb.rmeta: tests/properties.rs Cargo.toml

tests/properties.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
