/root/repo/target/debug/deps/reproduce-c1f6fe4a636cca6e.d: crates/bench/src/bin/reproduce.rs Cargo.toml

/root/repo/target/debug/deps/libreproduce-c1f6fe4a636cca6e.rmeta: crates/bench/src/bin/reproduce.rs Cargo.toml

crates/bench/src/bin/reproduce.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
