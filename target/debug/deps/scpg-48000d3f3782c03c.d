/root/repo/target/debug/deps/scpg-48000d3f3782c03c.d: crates/core/src/lib.rs crates/core/src/analysis.rs crates/core/src/budget.rs crates/core/src/duty.rs crates/core/src/error.rs crates/core/src/flow.rs crates/core/src/headers.rs crates/core/src/lifecycle.rs crates/core/src/service.rs crates/core/src/transform.rs crates/core/src/upf.rs Cargo.toml

/root/repo/target/debug/deps/libscpg-48000d3f3782c03c.rmeta: crates/core/src/lib.rs crates/core/src/analysis.rs crates/core/src/budget.rs crates/core/src/duty.rs crates/core/src/error.rs crates/core/src/flow.rs crates/core/src/headers.rs crates/core/src/lifecycle.rs crates/core/src/service.rs crates/core/src/transform.rs crates/core/src/upf.rs Cargo.toml

crates/core/src/lib.rs:
crates/core/src/analysis.rs:
crates/core/src/budget.rs:
crates/core/src/duty.rs:
crates/core/src/error.rs:
crates/core/src/flow.rs:
crates/core/src/headers.rs:
crates/core/src/lifecycle.rs:
crates/core/src/service.rs:
crates/core/src/transform.rs:
crates/core/src/upf.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
