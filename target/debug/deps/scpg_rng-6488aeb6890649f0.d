/root/repo/target/debug/deps/scpg_rng-6488aeb6890649f0.d: crates/rng/src/lib.rs Cargo.toml

/root/repo/target/debug/deps/libscpg_rng-6488aeb6890649f0.rmeta: crates/rng/src/lib.rs Cargo.toml

crates/rng/src/lib.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
