/root/repo/target/debug/deps/scpg_json-861b68074f767c2e.d: crates/json/src/lib.rs Cargo.toml

/root/repo/target/debug/deps/libscpg_json-861b68074f767c2e.rmeta: crates/json/src/lib.rs Cargo.toml

crates/json/src/lib.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
