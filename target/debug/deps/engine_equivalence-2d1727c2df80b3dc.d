/root/repo/target/debug/deps/engine_equivalence-2d1727c2df80b3dc.d: tests/engine_equivalence.rs

/root/repo/target/debug/deps/engine_equivalence-2d1727c2df80b3dc: tests/engine_equivalence.rs

tests/engine_equivalence.rs:
