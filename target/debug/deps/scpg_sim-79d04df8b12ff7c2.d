/root/repo/target/debug/deps/scpg_sim-79d04df8b12ff7c2.d: crates/sim/src/lib.rs crates/sim/src/compile.rs crates/sim/src/engine.rs crates/sim/src/reference.rs crates/sim/src/testbench.rs crates/sim/src/wheel.rs

/root/repo/target/debug/deps/scpg_sim-79d04df8b12ff7c2: crates/sim/src/lib.rs crates/sim/src/compile.rs crates/sim/src/engine.rs crates/sim/src/reference.rs crates/sim/src/testbench.rs crates/sim/src/wheel.rs

crates/sim/src/lib.rs:
crates/sim/src/compile.rs:
crates/sim/src/engine.rs:
crates/sim/src/reference.rs:
crates/sim/src/testbench.rs:
crates/sim/src/wheel.rs:
