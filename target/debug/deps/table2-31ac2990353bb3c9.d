/root/repo/target/debug/deps/table2-31ac2990353bb3c9.d: crates/bench/src/bin/table2.rs

/root/repo/target/debug/deps/table2-31ac2990353bb3c9: crates/bench/src/bin/table2.rs

crates/bench/src/bin/table2.rs:
