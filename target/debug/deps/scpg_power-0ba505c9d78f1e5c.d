/root/repo/target/debug/deps/scpg_power-0ba505c9d78f1e5c.d: crates/power/src/lib.rs crates/power/src/analyzer.rs crates/power/src/subthreshold.rs crates/power/src/variation.rs

/root/repo/target/debug/deps/libscpg_power-0ba505c9d78f1e5c.rlib: crates/power/src/lib.rs crates/power/src/analyzer.rs crates/power/src/subthreshold.rs crates/power/src/variation.rs

/root/repo/target/debug/deps/libscpg_power-0ba505c9d78f1e5c.rmeta: crates/power/src/lib.rs crates/power/src/analyzer.rs crates/power/src/subthreshold.rs crates/power/src/variation.rs

crates/power/src/lib.rs:
crates/power/src/analyzer.rs:
crates/power/src/subthreshold.rs:
crates/power/src/variation.rs:
