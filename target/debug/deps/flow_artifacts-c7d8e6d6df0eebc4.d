/root/repo/target/debug/deps/flow_artifacts-c7d8e6d6df0eebc4.d: tests/flow_artifacts.rs Cargo.toml

/root/repo/target/debug/deps/libflow_artifacts-c7d8e6d6df0eebc4.rmeta: tests/flow_artifacts.rs Cargo.toml

tests/flow_artifacts.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
