/root/repo/target/debug/deps/table1-d94de7988747d7a5.d: crates/bench/src/bin/table1.rs

/root/repo/target/debug/deps/table1-d94de7988747d7a5: crates/bench/src/bin/table1.rs

crates/bench/src/bin/table1.rs:
