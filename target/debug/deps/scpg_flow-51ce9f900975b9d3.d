/root/repo/target/debug/deps/scpg_flow-51ce9f900975b9d3.d: crates/core/src/bin/scpg_flow.rs Cargo.toml

/root/repo/target/debug/deps/libscpg_flow-51ce9f900975b9d3.rmeta: crates/core/src/bin/scpg_flow.rs Cargo.toml

crates/core/src/bin/scpg_flow.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
