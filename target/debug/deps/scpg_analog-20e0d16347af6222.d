/root/repo/target/debug/deps/scpg_analog-20e0d16347af6222.d: crates/analog/src/lib.rs crates/analog/src/gating.rs crates/analog/src/rail.rs crates/analog/src/sizing.rs crates/analog/src/transient.rs

/root/repo/target/debug/deps/libscpg_analog-20e0d16347af6222.rlib: crates/analog/src/lib.rs crates/analog/src/gating.rs crates/analog/src/rail.rs crates/analog/src/sizing.rs crates/analog/src/transient.rs

/root/repo/target/debug/deps/libscpg_analog-20e0d16347af6222.rmeta: crates/analog/src/lib.rs crates/analog/src/gating.rs crates/analog/src/rail.rs crates/analog/src/sizing.rs crates/analog/src/transient.rs

crates/analog/src/lib.rs:
crates/analog/src/gating.rs:
crates/analog/src/rail.rs:
crates/analog/src/sizing.rs:
crates/analog/src/transient.rs:
