/root/repo/target/debug/deps/vfs-7bdbf3361784990b.d: crates/bench/src/bin/vfs.rs Cargo.toml

/root/repo/target/debug/deps/libvfs-7bdbf3361784990b.rmeta: crates/bench/src/bin/vfs.rs Cargo.toml

crates/bench/src/bin/vfs.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
