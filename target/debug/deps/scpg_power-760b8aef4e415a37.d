/root/repo/target/debug/deps/scpg_power-760b8aef4e415a37.d: crates/power/src/lib.rs crates/power/src/analyzer.rs crates/power/src/subthreshold.rs crates/power/src/variation.rs

/root/repo/target/debug/deps/scpg_power-760b8aef4e415a37: crates/power/src/lib.rs crates/power/src/analyzer.rs crates/power/src/subthreshold.rs crates/power/src/variation.rs

crates/power/src/lib.rs:
crates/power/src/analyzer.rs:
crates/power/src/subthreshold.rs:
crates/power/src/variation.rs:
