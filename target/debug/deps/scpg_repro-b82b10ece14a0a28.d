/root/repo/target/debug/deps/scpg_repro-b82b10ece14a0a28.d: src/lib.rs

/root/repo/target/debug/deps/libscpg_repro-b82b10ece14a0a28.rlib: src/lib.rs

/root/repo/target/debug/deps/libscpg_repro-b82b10ece14a0a28.rmeta: src/lib.rs

src/lib.rs:
