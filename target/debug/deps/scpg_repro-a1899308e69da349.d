/root/repo/target/debug/deps/scpg_repro-a1899308e69da349.d: src/lib.rs

/root/repo/target/debug/deps/scpg_repro-a1899308e69da349: src/lib.rs

src/lib.rs:
