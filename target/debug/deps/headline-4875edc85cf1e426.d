/root/repo/target/debug/deps/headline-4875edc85cf1e426.d: crates/bench/src/bin/headline.rs

/root/repo/target/debug/deps/headline-4875edc85cf1e426: crates/bench/src/bin/headline.rs

crates/bench/src/bin/headline.rs:
