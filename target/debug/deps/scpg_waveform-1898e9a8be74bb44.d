/root/repo/target/debug/deps/scpg_waveform-1898e9a8be74bb44.d: crates/waveform/src/lib.rs crates/waveform/src/activity.rs crates/waveform/src/vcd.rs

/root/repo/target/debug/deps/libscpg_waveform-1898e9a8be74bb44.rlib: crates/waveform/src/lib.rs crates/waveform/src/activity.rs crates/waveform/src/vcd.rs

/root/repo/target/debug/deps/libscpg_waveform-1898e9a8be74bb44.rmeta: crates/waveform/src/lib.rs crates/waveform/src/activity.rs crates/waveform/src/vcd.rs

crates/waveform/src/lib.rs:
crates/waveform/src/activity.rs:
crates/waveform/src/vcd.rs:
