/root/repo/target/debug/deps/scpg_synth-c21a698c5680a6db.d: crates/synth/src/lib.rs crates/synth/src/builder.rs crates/synth/src/cts.rs crates/synth/src/prune.rs crates/synth/src/word.rs

/root/repo/target/debug/deps/scpg_synth-c21a698c5680a6db: crates/synth/src/lib.rs crates/synth/src/builder.rs crates/synth/src/cts.rs crates/synth/src/prune.rs crates/synth/src/word.rs

crates/synth/src/lib.rs:
crates/synth/src/builder.rs:
crates/synth/src/cts.rs:
crates/synth/src/prune.rs:
crates/synth/src/word.rs:
