/root/repo/target/debug/deps/scpg_json-323ea01321714725.d: crates/json/src/lib.rs

/root/repo/target/debug/deps/scpg_json-323ea01321714725: crates/json/src/lib.rs

crates/json/src/lib.rs:
