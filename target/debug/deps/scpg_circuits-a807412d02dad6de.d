/root/repo/target/debug/deps/scpg_circuits-a807412d02dad6de.d: crates/circuits/src/lib.rs crates/circuits/src/cpu.rs crates/circuits/src/harness.rs crates/circuits/src/multiplier.rs

/root/repo/target/debug/deps/scpg_circuits-a807412d02dad6de: crates/circuits/src/lib.rs crates/circuits/src/cpu.rs crates/circuits/src/harness.rs crates/circuits/src/multiplier.rs

crates/circuits/src/lib.rs:
crates/circuits/src/cpu.rs:
crates/circuits/src/harness.rs:
crates/circuits/src/multiplier.rs:
