/root/repo/target/debug/deps/scpg_bench-fc78a27760fda3a8.d: crates/bench/src/lib.rs Cargo.toml

/root/repo/target/debug/deps/libscpg_bench-fc78a27760fda3a8.rmeta: crates/bench/src/lib.rs Cargo.toml

crates/bench/src/lib.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
