/root/repo/target/debug/deps/cpu_scpg_replay-3f66a80feffe440c.d: tests/cpu_scpg_replay.rs

/root/repo/target/debug/deps/cpu_scpg_replay-3f66a80feffe440c: tests/cpu_scpg_replay.rs

tests/cpu_scpg_replay.rs:
