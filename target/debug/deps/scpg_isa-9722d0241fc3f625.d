/root/repo/target/debug/deps/scpg_isa-9722d0241fc3f625.d: crates/isa/src/lib.rs crates/isa/src/asm.rs crates/isa/src/dhrystone.rs crates/isa/src/inst.rs crates/isa/src/iss.rs

/root/repo/target/debug/deps/libscpg_isa-9722d0241fc3f625.rlib: crates/isa/src/lib.rs crates/isa/src/asm.rs crates/isa/src/dhrystone.rs crates/isa/src/inst.rs crates/isa/src/iss.rs

/root/repo/target/debug/deps/libscpg_isa-9722d0241fc3f625.rmeta: crates/isa/src/lib.rs crates/isa/src/asm.rs crates/isa/src/dhrystone.rs crates/isa/src/inst.rs crates/isa/src/iss.rs

crates/isa/src/lib.rs:
crates/isa/src/asm.rs:
crates/isa/src/dhrystone.rs:
crates/isa/src/inst.rs:
crates/isa/src/iss.rs:
