/root/repo/target/debug/deps/scpg_analog-1dee8ca2c8d393b6.d: crates/analog/src/lib.rs crates/analog/src/gating.rs crates/analog/src/rail.rs crates/analog/src/sizing.rs crates/analog/src/transient.rs

/root/repo/target/debug/deps/scpg_analog-1dee8ca2c8d393b6: crates/analog/src/lib.rs crates/analog/src/gating.rs crates/analog/src/rail.rs crates/analog/src/sizing.rs crates/analog/src/transient.rs

crates/analog/src/lib.rs:
crates/analog/src/gating.rs:
crates/analog/src/rail.rs:
crates/analog/src/sizing.rs:
crates/analog/src/transient.rs:
