/root/repo/target/debug/deps/scpg_synth-3246de3b16b483fd.d: crates/synth/src/lib.rs crates/synth/src/builder.rs crates/synth/src/cts.rs crates/synth/src/prune.rs crates/synth/src/word.rs Cargo.toml

/root/repo/target/debug/deps/libscpg_synth-3246de3b16b483fd.rmeta: crates/synth/src/lib.rs crates/synth/src/builder.rs crates/synth/src/cts.rs crates/synth/src/prune.rs crates/synth/src/word.rs Cargo.toml

crates/synth/src/lib.rs:
crates/synth/src/builder.rs:
crates/synth/src/cts.rs:
crates/synth/src/prune.rs:
crates/synth/src/word.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
