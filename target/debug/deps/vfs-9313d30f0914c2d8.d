/root/repo/target/debug/deps/vfs-9313d30f0914c2d8.d: crates/bench/src/bin/vfs.rs

/root/repo/target/debug/deps/vfs-9313d30f0914c2d8: crates/bench/src/bin/vfs.rs

crates/bench/src/bin/vfs.rs:
