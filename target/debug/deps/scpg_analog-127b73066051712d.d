/root/repo/target/debug/deps/scpg_analog-127b73066051712d.d: crates/analog/src/lib.rs crates/analog/src/gating.rs crates/analog/src/rail.rs crates/analog/src/sizing.rs crates/analog/src/transient.rs Cargo.toml

/root/repo/target/debug/deps/libscpg_analog-127b73066051712d.rmeta: crates/analog/src/lib.rs crates/analog/src/gating.rs crates/analog/src/rail.rs crates/analog/src/sizing.rs crates/analog/src/transient.rs Cargo.toml

crates/analog/src/lib.rs:
crates/analog/src/gating.rs:
crates/analog/src/rail.rs:
crates/analog/src/sizing.rs:
crates/analog/src/transient.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
