/root/repo/target/debug/deps/scpg_isa-557194db5d6a8d7e.d: crates/isa/src/lib.rs crates/isa/src/asm.rs crates/isa/src/dhrystone.rs crates/isa/src/inst.rs crates/isa/src/iss.rs Cargo.toml

/root/repo/target/debug/deps/libscpg_isa-557194db5d6a8d7e.rmeta: crates/isa/src/lib.rs crates/isa/src/asm.rs crates/isa/src/dhrystone.rs crates/isa/src/inst.rs crates/isa/src/iss.rs Cargo.toml

crates/isa/src/lib.rs:
crates/isa/src/asm.rs:
crates/isa/src/dhrystone.rs:
crates/isa/src/inst.rs:
crates/isa/src/iss.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
