/root/repo/target/debug/deps/engine_equivalence-df9e4ba232debdf2.d: tests/engine_equivalence.rs

/root/repo/target/debug/deps/engine_equivalence-df9e4ba232debdf2: tests/engine_equivalence.rs

tests/engine_equivalence.rs:
