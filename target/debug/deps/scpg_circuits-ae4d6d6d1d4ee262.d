/root/repo/target/debug/deps/scpg_circuits-ae4d6d6d1d4ee262.d: crates/circuits/src/lib.rs crates/circuits/src/cpu.rs crates/circuits/src/harness.rs crates/circuits/src/multiplier.rs

/root/repo/target/debug/deps/libscpg_circuits-ae4d6d6d1d4ee262.rlib: crates/circuits/src/lib.rs crates/circuits/src/cpu.rs crates/circuits/src/harness.rs crates/circuits/src/multiplier.rs

/root/repo/target/debug/deps/libscpg_circuits-ae4d6d6d1d4ee262.rmeta: crates/circuits/src/lib.rs crates/circuits/src/cpu.rs crates/circuits/src/harness.rs crates/circuits/src/multiplier.rs

crates/circuits/src/lib.rs:
crates/circuits/src/cpu.rs:
crates/circuits/src/harness.rs:
crates/circuits/src/multiplier.rs:
