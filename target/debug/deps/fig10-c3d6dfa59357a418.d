/root/repo/target/debug/deps/fig10-c3d6dfa59357a418.d: crates/bench/src/bin/fig10.rs

/root/repo/target/debug/deps/fig10-c3d6dfa59357a418: crates/bench/src/bin/fig10.rs

crates/bench/src/bin/fig10.rs:
