/root/repo/target/debug/deps/scpg_power-de0deb4d5d6eb9ec.d: crates/power/src/lib.rs crates/power/src/analyzer.rs crates/power/src/subthreshold.rs crates/power/src/variation.rs Cargo.toml

/root/repo/target/debug/deps/libscpg_power-de0deb4d5d6eb9ec.rmeta: crates/power/src/lib.rs crates/power/src/analyzer.rs crates/power/src/subthreshold.rs crates/power/src/variation.rs Cargo.toml

crates/power/src/lib.rs:
crates/power/src/analyzer.rs:
crates/power/src/subthreshold.rs:
crates/power/src/variation.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
