/root/repo/target/debug/deps/scpg_waveform-3522e016b0921edf.d: crates/waveform/src/lib.rs crates/waveform/src/activity.rs crates/waveform/src/vcd.rs

/root/repo/target/debug/deps/scpg_waveform-3522e016b0921edf: crates/waveform/src/lib.rs crates/waveform/src/activity.rs crates/waveform/src/vcd.rs

crates/waveform/src/lib.rs:
crates/waveform/src/activity.rs:
crates/waveform/src/vcd.rs:
