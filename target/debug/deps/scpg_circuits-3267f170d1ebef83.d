/root/repo/target/debug/deps/scpg_circuits-3267f170d1ebef83.d: crates/circuits/src/lib.rs crates/circuits/src/cpu.rs crates/circuits/src/harness.rs crates/circuits/src/multiplier.rs Cargo.toml

/root/repo/target/debug/deps/libscpg_circuits-3267f170d1ebef83.rmeta: crates/circuits/src/lib.rs crates/circuits/src/cpu.rs crates/circuits/src/harness.rs crates/circuits/src/multiplier.rs Cargo.toml

crates/circuits/src/lib.rs:
crates/circuits/src/cpu.rs:
crates/circuits/src/harness.rs:
crates/circuits/src/multiplier.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
