/root/repo/target/debug/deps/scpg_sta-f24655415f894fb9.d: crates/sta/src/lib.rs

/root/repo/target/debug/deps/libscpg_sta-f24655415f894fb9.rlib: crates/sta/src/lib.rs

/root/repo/target/debug/deps/libscpg_sta-f24655415f894fb9.rmeta: crates/sta/src/lib.rs

crates/sta/src/lib.rs:
