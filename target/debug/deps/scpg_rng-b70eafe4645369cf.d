/root/repo/target/debug/deps/scpg_rng-b70eafe4645369cf.d: crates/rng/src/lib.rs

/root/repo/target/debug/deps/libscpg_rng-b70eafe4645369cf.rlib: crates/rng/src/lib.rs

/root/repo/target/debug/deps/libscpg_rng-b70eafe4645369cf.rmeta: crates/rng/src/lib.rs

crates/rng/src/lib.rs:
