/root/repo/target/debug/deps/scpg_serve-285ea5142d5e9d98.d: crates/serve/src/bin/scpg_serve.rs Cargo.toml

/root/repo/target/debug/deps/libscpg_serve-285ea5142d5e9d98.rmeta: crates/serve/src/bin/scpg_serve.rs Cargo.toml

crates/serve/src/bin/scpg_serve.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
