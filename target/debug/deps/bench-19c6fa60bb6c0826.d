/root/repo/target/debug/deps/bench-19c6fa60bb6c0826.d: crates/bench/src/bin/bench.rs

/root/repo/target/debug/deps/bench-19c6fa60bb6c0826: crates/bench/src/bin/bench.rs

crates/bench/src/bin/bench.rs:
