/root/repo/target/debug/deps/flow_artifacts-04d3fd7079d6ddf0.d: tests/flow_artifacts.rs

/root/repo/target/debug/deps/flow_artifacts-04d3fd7079d6ddf0: tests/flow_artifacts.rs

tests/flow_artifacts.rs:
