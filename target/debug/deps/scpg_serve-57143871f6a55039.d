/root/repo/target/debug/deps/scpg_serve-57143871f6a55039.d: crates/serve/src/bin/scpg_serve.rs

/root/repo/target/debug/deps/scpg_serve-57143871f6a55039: crates/serve/src/bin/scpg_serve.rs

crates/serve/src/bin/scpg_serve.rs:
