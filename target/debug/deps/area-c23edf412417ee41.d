/root/repo/target/debug/deps/area-c23edf412417ee41.d: crates/bench/src/bin/area.rs Cargo.toml

/root/repo/target/debug/deps/libarea-c23edf412417ee41.rmeta: crates/bench/src/bin/area.rs Cargo.toml

crates/bench/src/bin/area.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
