/root/repo/target/debug/deps/variation-3ca8331ff7ef36cc.d: crates/bench/src/bin/variation.rs

/root/repo/target/debug/deps/variation-3ca8331ff7ef36cc: crates/bench/src/bin/variation.rs

crates/bench/src/bin/variation.rs:
