/root/repo/target/debug/deps/headline-f430748bf6f04bbb.d: crates/bench/src/bin/headline.rs Cargo.toml

/root/repo/target/debug/deps/libheadline-f430748bf6f04bbb.rmeta: crates/bench/src/bin/headline.rs Cargo.toml

crates/bench/src/bin/headline.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
