/root/repo/target/debug/deps/scpg_liberty-8f76fc868daf7405.d: crates/liberty/src/lib.rs crates/liberty/src/cell.rs crates/liberty/src/format.rs crates/liberty/src/headers.rs crates/liberty/src/library.rs crates/liberty/src/logic.rs crates/liberty/src/model.rs

/root/repo/target/debug/deps/scpg_liberty-8f76fc868daf7405: crates/liberty/src/lib.rs crates/liberty/src/cell.rs crates/liberty/src/format.rs crates/liberty/src/headers.rs crates/liberty/src/library.rs crates/liberty/src/logic.rs crates/liberty/src/model.rs

crates/liberty/src/lib.rs:
crates/liberty/src/cell.rs:
crates/liberty/src/format.rs:
crates/liberty/src/headers.rs:
crates/liberty/src/library.rs:
crates/liberty/src/logic.rs:
crates/liberty/src/model.rs:
