/root/repo/target/debug/deps/lifecycle-7ca8ff1a597b46a4.d: crates/bench/src/bin/lifecycle.rs Cargo.toml

/root/repo/target/debug/deps/liblifecycle-7ca8ff1a597b46a4.rmeta: crates/bench/src/bin/lifecycle.rs Cargo.toml

crates/bench/src/bin/lifecycle.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
