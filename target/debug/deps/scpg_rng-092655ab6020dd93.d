/root/repo/target/debug/deps/scpg_rng-092655ab6020dd93.d: crates/rng/src/lib.rs

/root/repo/target/debug/deps/scpg_rng-092655ab6020dd93: crates/rng/src/lib.rs

crates/rng/src/lib.rs:
