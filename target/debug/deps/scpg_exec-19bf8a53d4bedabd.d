/root/repo/target/debug/deps/scpg_exec-19bf8a53d4bedabd.d: crates/exec/src/lib.rs

/root/repo/target/debug/deps/libscpg_exec-19bf8a53d4bedabd.rlib: crates/exec/src/lib.rs

/root/repo/target/debug/deps/libscpg_exec-19bf8a53d4bedabd.rmeta: crates/exec/src/lib.rs

crates/exec/src/lib.rs:
