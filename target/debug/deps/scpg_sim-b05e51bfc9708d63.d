/root/repo/target/debug/deps/scpg_sim-b05e51bfc9708d63.d: crates/sim/src/lib.rs crates/sim/src/compile.rs crates/sim/src/engine.rs crates/sim/src/reference.rs crates/sim/src/testbench.rs crates/sim/src/wheel.rs

/root/repo/target/debug/deps/libscpg_sim-b05e51bfc9708d63.rlib: crates/sim/src/lib.rs crates/sim/src/compile.rs crates/sim/src/engine.rs crates/sim/src/reference.rs crates/sim/src/testbench.rs crates/sim/src/wheel.rs

/root/repo/target/debug/deps/libscpg_sim-b05e51bfc9708d63.rmeta: crates/sim/src/lib.rs crates/sim/src/compile.rs crates/sim/src/engine.rs crates/sim/src/reference.rs crates/sim/src/testbench.rs crates/sim/src/wheel.rs

crates/sim/src/lib.rs:
crates/sim/src/compile.rs:
crates/sim/src/engine.rs:
crates/sim/src/reference.rs:
crates/sim/src/testbench.rs:
crates/sim/src/wheel.rs:
