/root/repo/target/debug/deps/scpg_bench-b733cf426cebd776.d: crates/bench/src/lib.rs

/root/repo/target/debug/deps/scpg_bench-b733cf426cebd776: crates/bench/src/lib.rs

crates/bench/src/lib.rs:
