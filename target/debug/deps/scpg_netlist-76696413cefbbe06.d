/root/repo/target/debug/deps/scpg_netlist-76696413cefbbe06.d: crates/netlist/src/lib.rs crates/netlist/src/error.rs crates/netlist/src/graph.rs crates/netlist/src/netlist.rs crates/netlist/src/stats.rs crates/netlist/src/verilog.rs

/root/repo/target/debug/deps/libscpg_netlist-76696413cefbbe06.rlib: crates/netlist/src/lib.rs crates/netlist/src/error.rs crates/netlist/src/graph.rs crates/netlist/src/netlist.rs crates/netlist/src/stats.rs crates/netlist/src/verilog.rs

/root/repo/target/debug/deps/libscpg_netlist-76696413cefbbe06.rmeta: crates/netlist/src/lib.rs crates/netlist/src/error.rs crates/netlist/src/graph.rs crates/netlist/src/netlist.rs crates/netlist/src/stats.rs crates/netlist/src/verilog.rs

crates/netlist/src/lib.rs:
crates/netlist/src/error.rs:
crates/netlist/src/graph.rs:
crates/netlist/src/netlist.rs:
crates/netlist/src/stats.rs:
crates/netlist/src/verilog.rs:
