/root/repo/target/debug/deps/fig6-638c502e4590b5cb.d: crates/bench/src/bin/fig6.rs Cargo.toml

/root/repo/target/debug/deps/libfig6-638c502e4590b5cb.rmeta: crates/bench/src/bin/fig6.rs Cargo.toml

crates/bench/src/bin/fig6.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
