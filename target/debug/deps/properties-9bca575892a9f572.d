/root/repo/target/debug/deps/properties-9bca575892a9f572.d: tests/properties.rs

/root/repo/target/debug/deps/properties-9bca575892a9f572: tests/properties.rs

tests/properties.rs:
