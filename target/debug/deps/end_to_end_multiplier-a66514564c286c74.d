/root/repo/target/debug/deps/end_to_end_multiplier-a66514564c286c74.d: tests/end_to_end_multiplier.rs

/root/repo/target/debug/deps/end_to_end_multiplier-a66514564c286c74: tests/end_to_end_multiplier.rs

tests/end_to_end_multiplier.rs:
