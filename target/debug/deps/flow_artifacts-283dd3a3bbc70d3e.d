/root/repo/target/debug/deps/flow_artifacts-283dd3a3bbc70d3e.d: tests/flow_artifacts.rs

/root/repo/target/debug/deps/flow_artifacts-283dd3a3bbc70d3e: tests/flow_artifacts.rs

tests/flow_artifacts.rs:
