/root/repo/target/debug/deps/scpg_repro-b2a06f0167e54b77.d: src/lib.rs Cargo.toml

/root/repo/target/debug/deps/libscpg_repro-b2a06f0167e54b77.rmeta: src/lib.rs Cargo.toml

src/lib.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
