/root/repo/target/debug/deps/end_to_end_multiplier-8461ffdadee0cd75.d: tests/end_to_end_multiplier.rs Cargo.toml

/root/repo/target/debug/deps/libend_to_end_multiplier-8461ffdadee0cd75.rmeta: tests/end_to_end_multiplier.rs Cargo.toml

tests/end_to_end_multiplier.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
