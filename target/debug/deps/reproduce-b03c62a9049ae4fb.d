/root/repo/target/debug/deps/reproduce-b03c62a9049ae4fb.d: crates/bench/src/bin/reproduce.rs Cargo.toml

/root/repo/target/debug/deps/libreproduce-b03c62a9049ae4fb.rmeta: crates/bench/src/bin/reproduce.rs Cargo.toml

crates/bench/src/bin/reproduce.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
