/root/repo/target/debug/deps/scpg_json-2a3bb63d30f91a11.d: crates/json/src/lib.rs Cargo.toml

/root/repo/target/debug/deps/libscpg_json-2a3bb63d30f91a11.rmeta: crates/json/src/lib.rs Cargo.toml

crates/json/src/lib.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
