/root/repo/target/debug/deps/scpg_units-a584916559d89a51.d: crates/units/src/lib.rs crates/units/src/display.rs crates/units/src/quantities.rs crates/units/src/sweep.rs

/root/repo/target/debug/deps/scpg_units-a584916559d89a51: crates/units/src/lib.rs crates/units/src/display.rs crates/units/src/quantities.rs crates/units/src/sweep.rs

crates/units/src/lib.rs:
crates/units/src/display.rs:
crates/units/src/quantities.rs:
crates/units/src/sweep.rs:
