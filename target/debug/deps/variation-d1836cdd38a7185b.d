/root/repo/target/debug/deps/variation-d1836cdd38a7185b.d: crates/bench/src/bin/variation.rs Cargo.toml

/root/repo/target/debug/deps/libvariation-d1836cdd38a7185b.rmeta: crates/bench/src/bin/variation.rs Cargo.toml

crates/bench/src/bin/variation.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
