/root/repo/target/debug/deps/scpg_json-944459ba9bb114e8.d: crates/json/src/lib.rs

/root/repo/target/debug/deps/libscpg_json-944459ba9bb114e8.rlib: crates/json/src/lib.rs

/root/repo/target/debug/deps/libscpg_json-944459ba9bb114e8.rmeta: crates/json/src/lib.rs

crates/json/src/lib.rs:
