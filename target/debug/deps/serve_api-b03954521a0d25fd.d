/root/repo/target/debug/deps/serve_api-b03954521a0d25fd.d: tests/serve_api.rs

/root/repo/target/debug/deps/serve_api-b03954521a0d25fd: tests/serve_api.rs

tests/serve_api.rs:
