/root/repo/target/debug/deps/bench-240f8826349e56a3.d: crates/bench/src/bin/bench.rs Cargo.toml

/root/repo/target/debug/deps/libbench-240f8826349e56a3.rmeta: crates/bench/src/bin/bench.rs Cargo.toml

crates/bench/src/bin/bench.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
