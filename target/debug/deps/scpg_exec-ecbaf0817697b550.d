/root/repo/target/debug/deps/scpg_exec-ecbaf0817697b550.d: crates/exec/src/lib.rs Cargo.toml

/root/repo/target/debug/deps/libscpg_exec-ecbaf0817697b550.rmeta: crates/exec/src/lib.rs Cargo.toml

crates/exec/src/lib.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
