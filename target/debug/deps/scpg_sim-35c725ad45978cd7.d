/root/repo/target/debug/deps/scpg_sim-35c725ad45978cd7.d: crates/sim/src/lib.rs crates/sim/src/compile.rs crates/sim/src/engine.rs crates/sim/src/reference.rs crates/sim/src/testbench.rs crates/sim/src/wheel.rs Cargo.toml

/root/repo/target/debug/deps/libscpg_sim-35c725ad45978cd7.rmeta: crates/sim/src/lib.rs crates/sim/src/compile.rs crates/sim/src/engine.rs crates/sim/src/reference.rs crates/sim/src/testbench.rs crates/sim/src/wheel.rs Cargo.toml

crates/sim/src/lib.rs:
crates/sim/src/compile.rs:
crates/sim/src/engine.rs:
crates/sim/src/reference.rs:
crates/sim/src/testbench.rs:
crates/sim/src/wheel.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
