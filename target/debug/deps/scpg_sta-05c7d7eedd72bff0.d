/root/repo/target/debug/deps/scpg_sta-05c7d7eedd72bff0.d: crates/sta/src/lib.rs Cargo.toml

/root/repo/target/debug/deps/libscpg_sta-05c7d7eedd72bff0.rmeta: crates/sta/src/lib.rs Cargo.toml

crates/sta/src/lib.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
