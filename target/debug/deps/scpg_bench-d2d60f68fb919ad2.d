/root/repo/target/debug/deps/scpg_bench-d2d60f68fb919ad2.d: crates/bench/src/lib.rs

/root/repo/target/debug/deps/libscpg_bench-d2d60f68fb919ad2.rlib: crates/bench/src/lib.rs

/root/repo/target/debug/deps/libscpg_bench-d2d60f68fb919ad2.rmeta: crates/bench/src/lib.rs

crates/bench/src/lib.rs:
