/root/repo/target/debug/deps/scpg_repro-ea6c311b0b760eb0.d: src/lib.rs

/root/repo/target/debug/deps/libscpg_repro-ea6c311b0b760eb0.rlib: src/lib.rs

/root/repo/target/debug/deps/libscpg_repro-ea6c311b0b760eb0.rmeta: src/lib.rs

src/lib.rs:
