/root/repo/target/debug/deps/scpg_waveform-47a88b1b86d406dd.d: crates/waveform/src/lib.rs crates/waveform/src/activity.rs crates/waveform/src/vcd.rs Cargo.toml

/root/repo/target/debug/deps/libscpg_waveform-47a88b1b86d406dd.rmeta: crates/waveform/src/lib.rs crates/waveform/src/activity.rs crates/waveform/src/vcd.rs Cargo.toml

crates/waveform/src/lib.rs:
crates/waveform/src/activity.rs:
crates/waveform/src/vcd.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
