/root/repo/target/debug/deps/vfs-498f9abba8fbcc53.d: crates/bench/src/bin/vfs.rs Cargo.toml

/root/repo/target/debug/deps/libvfs-498f9abba8fbcc53.rmeta: crates/bench/src/bin/vfs.rs Cargo.toml

crates/bench/src/bin/vfs.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
