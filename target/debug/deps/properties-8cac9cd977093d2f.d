/root/repo/target/debug/deps/properties-8cac9cd977093d2f.d: tests/properties.rs

/root/repo/target/debug/deps/properties-8cac9cd977093d2f: tests/properties.rs

tests/properties.rs:
