/root/repo/target/debug/deps/scpg_serve-2850ddcd29bc7ec8.d: crates/serve/src/lib.rs crates/serve/src/api.rs crates/serve/src/cache.rs crates/serve/src/client.rs crates/serve/src/designs.rs crates/serve/src/http.rs crates/serve/src/metrics.rs crates/serve/src/queue.rs Cargo.toml

/root/repo/target/debug/deps/libscpg_serve-2850ddcd29bc7ec8.rmeta: crates/serve/src/lib.rs crates/serve/src/api.rs crates/serve/src/cache.rs crates/serve/src/client.rs crates/serve/src/designs.rs crates/serve/src/http.rs crates/serve/src/metrics.rs crates/serve/src/queue.rs Cargo.toml

crates/serve/src/lib.rs:
crates/serve/src/api.rs:
crates/serve/src/cache.rs:
crates/serve/src/client.rs:
crates/serve/src/designs.rs:
crates/serve/src/http.rs:
crates/serve/src/metrics.rs:
crates/serve/src/queue.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
