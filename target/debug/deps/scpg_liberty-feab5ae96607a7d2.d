/root/repo/target/debug/deps/scpg_liberty-feab5ae96607a7d2.d: crates/liberty/src/lib.rs crates/liberty/src/cell.rs crates/liberty/src/format.rs crates/liberty/src/headers.rs crates/liberty/src/library.rs crates/liberty/src/logic.rs crates/liberty/src/model.rs

/root/repo/target/debug/deps/libscpg_liberty-feab5ae96607a7d2.rlib: crates/liberty/src/lib.rs crates/liberty/src/cell.rs crates/liberty/src/format.rs crates/liberty/src/headers.rs crates/liberty/src/library.rs crates/liberty/src/logic.rs crates/liberty/src/model.rs

/root/repo/target/debug/deps/libscpg_liberty-feab5ae96607a7d2.rmeta: crates/liberty/src/lib.rs crates/liberty/src/cell.rs crates/liberty/src/format.rs crates/liberty/src/headers.rs crates/liberty/src/library.rs crates/liberty/src/logic.rs crates/liberty/src/model.rs

crates/liberty/src/lib.rs:
crates/liberty/src/cell.rs:
crates/liberty/src/format.rs:
crates/liberty/src/headers.rs:
crates/liberty/src/library.rs:
crates/liberty/src/logic.rs:
crates/liberty/src/model.rs:
