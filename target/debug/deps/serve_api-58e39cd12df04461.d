/root/repo/target/debug/deps/serve_api-58e39cd12df04461.d: tests/serve_api.rs Cargo.toml

/root/repo/target/debug/deps/libserve_api-58e39cd12df04461.rmeta: tests/serve_api.rs Cargo.toml

tests/serve_api.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
