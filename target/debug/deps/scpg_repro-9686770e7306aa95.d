/root/repo/target/debug/deps/scpg_repro-9686770e7306aa95.d: src/lib.rs Cargo.toml

/root/repo/target/debug/deps/libscpg_repro-9686770e7306aa95.rmeta: src/lib.rs Cargo.toml

src/lib.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
