/root/repo/target/debug/deps/bench-61e224b49fc0a27b.d: crates/bench/src/bin/bench.rs

/root/repo/target/debug/deps/bench-61e224b49fc0a27b: crates/bench/src/bin/bench.rs

crates/bench/src/bin/bench.rs:
