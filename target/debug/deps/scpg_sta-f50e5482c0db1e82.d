/root/repo/target/debug/deps/scpg_sta-f50e5482c0db1e82.d: crates/sta/src/lib.rs

/root/repo/target/debug/deps/scpg_sta-f50e5482c0db1e82: crates/sta/src/lib.rs

crates/sta/src/lib.rs:
