/root/repo/target/debug/deps/scpg_flow-621dffa7ed77b781.d: crates/core/src/bin/scpg_flow.rs

/root/repo/target/debug/deps/scpg_flow-621dffa7ed77b781: crates/core/src/bin/scpg_flow.rs

crates/core/src/bin/scpg_flow.rs:
