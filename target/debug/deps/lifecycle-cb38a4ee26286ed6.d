/root/repo/target/debug/deps/lifecycle-cb38a4ee26286ed6.d: crates/bench/src/bin/lifecycle.rs Cargo.toml

/root/repo/target/debug/deps/liblifecycle-cb38a4ee26286ed6.rmeta: crates/bench/src/bin/lifecycle.rs Cargo.toml

crates/bench/src/bin/lifecycle.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
