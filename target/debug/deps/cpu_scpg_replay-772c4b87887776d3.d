/root/repo/target/debug/deps/cpu_scpg_replay-772c4b87887776d3.d: tests/cpu_scpg_replay.rs Cargo.toml

/root/repo/target/debug/deps/libcpu_scpg_replay-772c4b87887776d3.rmeta: tests/cpu_scpg_replay.rs Cargo.toml

tests/cpu_scpg_replay.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
