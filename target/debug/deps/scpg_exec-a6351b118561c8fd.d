/root/repo/target/debug/deps/scpg_exec-a6351b118561c8fd.d: crates/exec/src/lib.rs

/root/repo/target/debug/deps/scpg_exec-a6351b118561c8fd: crates/exec/src/lib.rs

crates/exec/src/lib.rs:
