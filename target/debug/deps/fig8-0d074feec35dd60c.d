/root/repo/target/debug/deps/fig8-0d074feec35dd60c.d: crates/bench/src/bin/fig8.rs

/root/repo/target/debug/deps/fig8-0d074feec35dd60c: crates/bench/src/bin/fig8.rs

crates/bench/src/bin/fig8.rs:
