/root/repo/target/debug/deps/headers-9c5a01e3e472957d.d: crates/bench/src/bin/headers.rs

/root/repo/target/debug/deps/headers-9c5a01e3e472957d: crates/bench/src/bin/headers.rs

crates/bench/src/bin/headers.rs:
