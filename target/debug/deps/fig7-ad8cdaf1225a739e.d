/root/repo/target/debug/deps/fig7-ad8cdaf1225a739e.d: crates/bench/src/bin/fig7.rs

/root/repo/target/debug/deps/fig7-ad8cdaf1225a739e: crates/bench/src/bin/fig7.rs

crates/bench/src/bin/fig7.rs:
