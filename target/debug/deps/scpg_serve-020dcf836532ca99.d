/root/repo/target/debug/deps/scpg_serve-020dcf836532ca99.d: crates/serve/src/lib.rs crates/serve/src/api.rs crates/serve/src/cache.rs crates/serve/src/client.rs crates/serve/src/designs.rs crates/serve/src/http.rs crates/serve/src/metrics.rs crates/serve/src/queue.rs

/root/repo/target/debug/deps/libscpg_serve-020dcf836532ca99.rlib: crates/serve/src/lib.rs crates/serve/src/api.rs crates/serve/src/cache.rs crates/serve/src/client.rs crates/serve/src/designs.rs crates/serve/src/http.rs crates/serve/src/metrics.rs crates/serve/src/queue.rs

/root/repo/target/debug/deps/libscpg_serve-020dcf836532ca99.rmeta: crates/serve/src/lib.rs crates/serve/src/api.rs crates/serve/src/cache.rs crates/serve/src/client.rs crates/serve/src/designs.rs crates/serve/src/http.rs crates/serve/src/metrics.rs crates/serve/src/queue.rs

crates/serve/src/lib.rs:
crates/serve/src/api.rs:
crates/serve/src/cache.rs:
crates/serve/src/client.rs:
crates/serve/src/designs.rs:
crates/serve/src/http.rs:
crates/serve/src/metrics.rs:
crates/serve/src/queue.rs:
