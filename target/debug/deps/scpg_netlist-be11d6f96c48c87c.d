/root/repo/target/debug/deps/scpg_netlist-be11d6f96c48c87c.d: crates/netlist/src/lib.rs crates/netlist/src/error.rs crates/netlist/src/graph.rs crates/netlist/src/netlist.rs crates/netlist/src/stats.rs crates/netlist/src/verilog.rs Cargo.toml

/root/repo/target/debug/deps/libscpg_netlist-be11d6f96c48c87c.rmeta: crates/netlist/src/lib.rs crates/netlist/src/error.rs crates/netlist/src/graph.rs crates/netlist/src/netlist.rs crates/netlist/src/stats.rs crates/netlist/src/verilog.rs Cargo.toml

crates/netlist/src/lib.rs:
crates/netlist/src/error.rs:
crates/netlist/src/graph.rs:
crates/netlist/src/netlist.rs:
crates/netlist/src/stats.rs:
crates/netlist/src/verilog.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
