/root/repo/target/debug/deps/end_to_end_multiplier-227bc93539a02eb8.d: tests/end_to_end_multiplier.rs

/root/repo/target/debug/deps/end_to_end_multiplier-227bc93539a02eb8: tests/end_to_end_multiplier.rs

tests/end_to_end_multiplier.rs:
