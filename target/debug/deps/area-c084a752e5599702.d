/root/repo/target/debug/deps/area-c084a752e5599702.d: crates/bench/src/bin/area.rs

/root/repo/target/debug/deps/area-c084a752e5599702: crates/bench/src/bin/area.rs

crates/bench/src/bin/area.rs:
