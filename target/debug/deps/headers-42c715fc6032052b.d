/root/repo/target/debug/deps/headers-42c715fc6032052b.d: crates/bench/src/bin/headers.rs Cargo.toml

/root/repo/target/debug/deps/libheaders-42c715fc6032052b.rmeta: crates/bench/src/bin/headers.rs Cargo.toml

crates/bench/src/bin/headers.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
