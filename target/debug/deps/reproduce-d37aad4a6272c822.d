/root/repo/target/debug/deps/reproduce-d37aad4a6272c822.d: crates/bench/src/bin/reproduce.rs

/root/repo/target/debug/deps/reproduce-d37aad4a6272c822: crates/bench/src/bin/reproduce.rs

crates/bench/src/bin/reproduce.rs:
