/root/repo/target/debug/deps/subvscpg-d38a20b3c1e17ff4.d: crates/bench/src/bin/subvscpg.rs Cargo.toml

/root/repo/target/debug/deps/libsubvscpg-d38a20b3c1e17ff4.rmeta: crates/bench/src/bin/subvscpg.rs Cargo.toml

crates/bench/src/bin/subvscpg.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
