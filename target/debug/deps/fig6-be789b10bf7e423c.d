/root/repo/target/debug/deps/fig6-be789b10bf7e423c.d: crates/bench/src/bin/fig6.rs

/root/repo/target/debug/deps/fig6-be789b10bf7e423c: crates/bench/src/bin/fig6.rs

crates/bench/src/bin/fig6.rs:
