/root/repo/target/debug/deps/headers-71434e28c7e25812.d: crates/bench/src/bin/headers.rs Cargo.toml

/root/repo/target/debug/deps/libheaders-71434e28c7e25812.rmeta: crates/bench/src/bin/headers.rs Cargo.toml

crates/bench/src/bin/headers.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
