/root/repo/target/debug/examples/duty_cycle_explorer-3322dbd8aefeb12b.d: examples/duty_cycle_explorer.rs

/root/repo/target/debug/examples/duty_cycle_explorer-3322dbd8aefeb12b: examples/duty_cycle_explorer.rs

examples/duty_cycle_explorer.rs:
