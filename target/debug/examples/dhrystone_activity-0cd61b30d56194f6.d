/root/repo/target/debug/examples/dhrystone_activity-0cd61b30d56194f6.d: examples/dhrystone_activity.rs

/root/repo/target/debug/examples/dhrystone_activity-0cd61b30d56194f6: examples/dhrystone_activity.rs

examples/dhrystone_activity.rs:
