/root/repo/target/debug/examples/fig4_waveform-8721b4beac018be7.d: examples/fig4_waveform.rs Cargo.toml

/root/repo/target/debug/examples/libfig4_waveform-8721b4beac018be7.rmeta: examples/fig4_waveform.rs Cargo.toml

examples/fig4_waveform.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
