/root/repo/target/debug/examples/dhrystone_activity-a81bb25131de7ddb.d: examples/dhrystone_activity.rs

/root/repo/target/debug/examples/dhrystone_activity-a81bb25131de7ddb: examples/dhrystone_activity.rs

examples/dhrystone_activity.rs:
