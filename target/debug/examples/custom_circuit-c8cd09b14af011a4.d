/root/repo/target/debug/examples/custom_circuit-c8cd09b14af011a4.d: examples/custom_circuit.rs

/root/repo/target/debug/examples/custom_circuit-c8cd09b14af011a4: examples/custom_circuit.rs

examples/custom_circuit.rs:
