/root/repo/target/debug/examples/duty_cycle_explorer-5e5175aff964e975.d: examples/duty_cycle_explorer.rs

/root/repo/target/debug/examples/duty_cycle_explorer-5e5175aff964e975: examples/duty_cycle_explorer.rs

examples/duty_cycle_explorer.rs:
