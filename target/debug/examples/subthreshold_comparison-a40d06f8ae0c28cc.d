/root/repo/target/debug/examples/subthreshold_comparison-a40d06f8ae0c28cc.d: examples/subthreshold_comparison.rs Cargo.toml

/root/repo/target/debug/examples/libsubthreshold_comparison-a40d06f8ae0c28cc.rmeta: examples/subthreshold_comparison.rs Cargo.toml

examples/subthreshold_comparison.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
