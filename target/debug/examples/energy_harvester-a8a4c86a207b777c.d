/root/repo/target/debug/examples/energy_harvester-a8a4c86a207b777c.d: examples/energy_harvester.rs

/root/repo/target/debug/examples/energy_harvester-a8a4c86a207b777c: examples/energy_harvester.rs

examples/energy_harvester.rs:
