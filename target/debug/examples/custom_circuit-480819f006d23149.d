/root/repo/target/debug/examples/custom_circuit-480819f006d23149.d: examples/custom_circuit.rs

/root/repo/target/debug/examples/custom_circuit-480819f006d23149: examples/custom_circuit.rs

examples/custom_circuit.rs:
