/root/repo/target/debug/examples/subthreshold_comparison-d148541dad828ae0.d: examples/subthreshold_comparison.rs

/root/repo/target/debug/examples/subthreshold_comparison-d148541dad828ae0: examples/subthreshold_comparison.rs

examples/subthreshold_comparison.rs:
