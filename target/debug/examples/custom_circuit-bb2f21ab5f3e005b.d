/root/repo/target/debug/examples/custom_circuit-bb2f21ab5f3e005b.d: examples/custom_circuit.rs Cargo.toml

/root/repo/target/debug/examples/libcustom_circuit-bb2f21ab5f3e005b.rmeta: examples/custom_circuit.rs Cargo.toml

examples/custom_circuit.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
