/root/repo/target/debug/examples/duty_cycle_explorer-1ba3392382c49809.d: examples/duty_cycle_explorer.rs Cargo.toml

/root/repo/target/debug/examples/libduty_cycle_explorer-1ba3392382c49809.rmeta: examples/duty_cycle_explorer.rs Cargo.toml

examples/duty_cycle_explorer.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
