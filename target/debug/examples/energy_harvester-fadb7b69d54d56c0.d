/root/repo/target/debug/examples/energy_harvester-fadb7b69d54d56c0.d: examples/energy_harvester.rs

/root/repo/target/debug/examples/energy_harvester-fadb7b69d54d56c0: examples/energy_harvester.rs

examples/energy_harvester.rs:
