/root/repo/target/debug/examples/quickstart-830ab4e25ad96e82.d: examples/quickstart.rs

/root/repo/target/debug/examples/quickstart-830ab4e25ad96e82: examples/quickstart.rs

examples/quickstart.rs:
