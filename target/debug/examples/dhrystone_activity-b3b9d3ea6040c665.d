/root/repo/target/debug/examples/dhrystone_activity-b3b9d3ea6040c665.d: examples/dhrystone_activity.rs Cargo.toml

/root/repo/target/debug/examples/libdhrystone_activity-b3b9d3ea6040c665.rmeta: examples/dhrystone_activity.rs Cargo.toml

examples/dhrystone_activity.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
