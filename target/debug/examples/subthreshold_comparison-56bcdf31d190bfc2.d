/root/repo/target/debug/examples/subthreshold_comparison-56bcdf31d190bfc2.d: examples/subthreshold_comparison.rs

/root/repo/target/debug/examples/subthreshold_comparison-56bcdf31d190bfc2: examples/subthreshold_comparison.rs

examples/subthreshold_comparison.rs:
