/root/repo/target/debug/examples/fig4_waveform-4709d73303f3ccea.d: examples/fig4_waveform.rs

/root/repo/target/debug/examples/fig4_waveform-4709d73303f3ccea: examples/fig4_waveform.rs

examples/fig4_waveform.rs:
