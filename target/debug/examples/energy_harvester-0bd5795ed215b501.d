/root/repo/target/debug/examples/energy_harvester-0bd5795ed215b501.d: examples/energy_harvester.rs Cargo.toml

/root/repo/target/debug/examples/libenergy_harvester-0bd5795ed215b501.rmeta: examples/energy_harvester.rs Cargo.toml

examples/energy_harvester.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
