/root/repo/target/debug/examples/quickstart-ead80885b77e057b.d: examples/quickstart.rs

/root/repo/target/debug/examples/quickstart-ead80885b77e057b: examples/quickstart.rs

examples/quickstart.rs:
