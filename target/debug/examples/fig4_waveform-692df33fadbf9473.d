/root/repo/target/debug/examples/fig4_waveform-692df33fadbf9473.d: examples/fig4_waveform.rs

/root/repo/target/debug/examples/fig4_waveform-692df33fadbf9473: examples/fig4_waveform.rs

examples/fig4_waveform.rs:
