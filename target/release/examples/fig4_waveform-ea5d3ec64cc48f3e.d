/root/repo/target/release/examples/fig4_waveform-ea5d3ec64cc48f3e.d: examples/fig4_waveform.rs Cargo.toml

/root/repo/target/release/examples/libfig4_waveform-ea5d3ec64cc48f3e.rmeta: examples/fig4_waveform.rs Cargo.toml

examples/fig4_waveform.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=
# env-dep:CLIPPY_CONF_DIR
