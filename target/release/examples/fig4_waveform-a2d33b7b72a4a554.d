/root/repo/target/release/examples/fig4_waveform-a2d33b7b72a4a554.d: examples/fig4_waveform.rs

/root/repo/target/release/examples/fig4_waveform-a2d33b7b72a4a554: examples/fig4_waveform.rs

examples/fig4_waveform.rs:
