/root/repo/target/release/examples/quickstart-2b5ff1636a0cb2ed.d: examples/quickstart.rs

/root/repo/target/release/examples/quickstart-2b5ff1636a0cb2ed: examples/quickstart.rs

examples/quickstart.rs:
