/root/repo/target/release/examples/dhrystone_activity-5676b0f62b42b125.d: examples/dhrystone_activity.rs

/root/repo/target/release/examples/dhrystone_activity-5676b0f62b42b125: examples/dhrystone_activity.rs

examples/dhrystone_activity.rs:
