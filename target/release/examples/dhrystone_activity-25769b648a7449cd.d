/root/repo/target/release/examples/dhrystone_activity-25769b648a7449cd.d: examples/dhrystone_activity.rs Cargo.toml

/root/repo/target/release/examples/libdhrystone_activity-25769b648a7449cd.rmeta: examples/dhrystone_activity.rs Cargo.toml

examples/dhrystone_activity.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=
# env-dep:CLIPPY_CONF_DIR
