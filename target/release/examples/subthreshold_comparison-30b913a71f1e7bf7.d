/root/repo/target/release/examples/subthreshold_comparison-30b913a71f1e7bf7.d: examples/subthreshold_comparison.rs

/root/repo/target/release/examples/subthreshold_comparison-30b913a71f1e7bf7: examples/subthreshold_comparison.rs

examples/subthreshold_comparison.rs:
