/root/repo/target/release/examples/energy_harvester-4501cb9f0353c0fb.d: examples/energy_harvester.rs

/root/repo/target/release/examples/energy_harvester-4501cb9f0353c0fb: examples/energy_harvester.rs

examples/energy_harvester.rs:
