/root/repo/target/release/examples/subthreshold_comparison-d1dbd81f96481494.d: examples/subthreshold_comparison.rs Cargo.toml

/root/repo/target/release/examples/libsubthreshold_comparison-d1dbd81f96481494.rmeta: examples/subthreshold_comparison.rs Cargo.toml

examples/subthreshold_comparison.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=
# env-dep:CLIPPY_CONF_DIR
