/root/repo/target/release/examples/quickstart-c3ec6bdcc523d09a.d: examples/quickstart.rs

/root/repo/target/release/examples/quickstart-c3ec6bdcc523d09a: examples/quickstart.rs

examples/quickstart.rs:
