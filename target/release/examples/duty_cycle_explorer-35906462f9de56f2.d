/root/repo/target/release/examples/duty_cycle_explorer-35906462f9de56f2.d: examples/duty_cycle_explorer.rs

/root/repo/target/release/examples/duty_cycle_explorer-35906462f9de56f2: examples/duty_cycle_explorer.rs

examples/duty_cycle_explorer.rs:
