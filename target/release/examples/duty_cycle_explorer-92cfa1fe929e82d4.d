/root/repo/target/release/examples/duty_cycle_explorer-92cfa1fe929e82d4.d: examples/duty_cycle_explorer.rs Cargo.toml

/root/repo/target/release/examples/libduty_cycle_explorer-92cfa1fe929e82d4.rmeta: examples/duty_cycle_explorer.rs Cargo.toml

examples/duty_cycle_explorer.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=
# env-dep:CLIPPY_CONF_DIR
