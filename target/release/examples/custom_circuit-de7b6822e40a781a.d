/root/repo/target/release/examples/custom_circuit-de7b6822e40a781a.d: examples/custom_circuit.rs

/root/repo/target/release/examples/custom_circuit-de7b6822e40a781a: examples/custom_circuit.rs

examples/custom_circuit.rs:
