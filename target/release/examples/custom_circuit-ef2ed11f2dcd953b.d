/root/repo/target/release/examples/custom_circuit-ef2ed11f2dcd953b.d: examples/custom_circuit.rs Cargo.toml

/root/repo/target/release/examples/libcustom_circuit-ef2ed11f2dcd953b.rmeta: examples/custom_circuit.rs Cargo.toml

examples/custom_circuit.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=
# env-dep:CLIPPY_CONF_DIR
