/root/repo/target/release/examples/quickstart-b93538d49741e4d6.d: examples/quickstart.rs Cargo.toml

/root/repo/target/release/examples/libquickstart-b93538d49741e4d6.rmeta: examples/quickstart.rs Cargo.toml

examples/quickstart.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=
# env-dep:CLIPPY_CONF_DIR
