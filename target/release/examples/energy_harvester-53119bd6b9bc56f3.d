/root/repo/target/release/examples/energy_harvester-53119bd6b9bc56f3.d: examples/energy_harvester.rs Cargo.toml

/root/repo/target/release/examples/libenergy_harvester-53119bd6b9bc56f3.rmeta: examples/energy_harvester.rs Cargo.toml

examples/energy_harvester.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=
# env-dep:CLIPPY_CONF_DIR
