/root/repo/target/release/deps/fig6-779e0beb9d8912d8.d: crates/bench/src/bin/fig6.rs

/root/repo/target/release/deps/fig6-779e0beb9d8912d8: crates/bench/src/bin/fig6.rs

crates/bench/src/bin/fig6.rs:
