/root/repo/target/release/deps/subvscpg-4274ab4b8ddc90d4.d: crates/bench/src/bin/subvscpg.rs

/root/repo/target/release/deps/subvscpg-4274ab4b8ddc90d4: crates/bench/src/bin/subvscpg.rs

crates/bench/src/bin/subvscpg.rs:
