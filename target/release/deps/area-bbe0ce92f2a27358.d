/root/repo/target/release/deps/area-bbe0ce92f2a27358.d: crates/bench/src/bin/area.rs

/root/repo/target/release/deps/area-bbe0ce92f2a27358: crates/bench/src/bin/area.rs

crates/bench/src/bin/area.rs:
