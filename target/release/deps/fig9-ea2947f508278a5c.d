/root/repo/target/release/deps/fig9-ea2947f508278a5c.d: crates/bench/src/bin/fig9.rs Cargo.toml

/root/repo/target/release/deps/libfig9-ea2947f508278a5c.rmeta: crates/bench/src/bin/fig9.rs Cargo.toml

crates/bench/src/bin/fig9.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=
# env-dep:CLIPPY_CONF_DIR
