/root/repo/target/release/deps/fig9-49bea03e85210140.d: crates/bench/src/bin/fig9.rs

/root/repo/target/release/deps/fig9-49bea03e85210140: crates/bench/src/bin/fig9.rs

crates/bench/src/bin/fig9.rs:
