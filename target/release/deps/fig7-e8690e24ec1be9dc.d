/root/repo/target/release/deps/fig7-e8690e24ec1be9dc.d: crates/bench/src/bin/fig7.rs Cargo.toml

/root/repo/target/release/deps/libfig7-e8690e24ec1be9dc.rmeta: crates/bench/src/bin/fig7.rs Cargo.toml

crates/bench/src/bin/fig7.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=
# env-dep:CLIPPY_CONF_DIR
