/root/repo/target/release/deps/fig10-ab836fc2b6040922.d: crates/bench/src/bin/fig10.rs

/root/repo/target/release/deps/fig10-ab836fc2b6040922: crates/bench/src/bin/fig10.rs

crates/bench/src/bin/fig10.rs:
