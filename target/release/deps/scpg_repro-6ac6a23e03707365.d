/root/repo/target/release/deps/scpg_repro-6ac6a23e03707365.d: src/lib.rs Cargo.toml

/root/repo/target/release/deps/libscpg_repro-6ac6a23e03707365.rmeta: src/lib.rs Cargo.toml

src/lib.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=
# env-dep:CLIPPY_CONF_DIR
