/root/repo/target/release/deps/headers-cb850f46dc22bd83.d: crates/bench/src/bin/headers.rs

/root/repo/target/release/deps/headers-cb850f46dc22bd83: crates/bench/src/bin/headers.rs

crates/bench/src/bin/headers.rs:
