/root/repo/target/release/deps/scpg_waveform-9f92ef942e20718c.d: crates/waveform/src/lib.rs crates/waveform/src/activity.rs crates/waveform/src/vcd.rs Cargo.toml

/root/repo/target/release/deps/libscpg_waveform-9f92ef942e20718c.rmeta: crates/waveform/src/lib.rs crates/waveform/src/activity.rs crates/waveform/src/vcd.rs Cargo.toml

crates/waveform/src/lib.rs:
crates/waveform/src/activity.rs:
crates/waveform/src/vcd.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=
# env-dep:CLIPPY_CONF_DIR
