/root/repo/target/release/deps/scpg_netlist-7fa546dc2a504d45.d: crates/netlist/src/lib.rs crates/netlist/src/error.rs crates/netlist/src/graph.rs crates/netlist/src/netlist.rs crates/netlist/src/stats.rs crates/netlist/src/verilog.rs

/root/repo/target/release/deps/scpg_netlist-7fa546dc2a504d45: crates/netlist/src/lib.rs crates/netlist/src/error.rs crates/netlist/src/graph.rs crates/netlist/src/netlist.rs crates/netlist/src/stats.rs crates/netlist/src/verilog.rs

crates/netlist/src/lib.rs:
crates/netlist/src/error.rs:
crates/netlist/src/graph.rs:
crates/netlist/src/netlist.rs:
crates/netlist/src/stats.rs:
crates/netlist/src/verilog.rs:
