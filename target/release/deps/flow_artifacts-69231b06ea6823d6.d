/root/repo/target/release/deps/flow_artifacts-69231b06ea6823d6.d: tests/flow_artifacts.rs Cargo.toml

/root/repo/target/release/deps/libflow_artifacts-69231b06ea6823d6.rmeta: tests/flow_artifacts.rs Cargo.toml

tests/flow_artifacts.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=
# env-dep:CLIPPY_CONF_DIR
