/root/repo/target/release/deps/scpg_units-7851832a8c7b5c4c.d: crates/units/src/lib.rs crates/units/src/display.rs crates/units/src/quantities.rs crates/units/src/sweep.rs

/root/repo/target/release/deps/libscpg_units-7851832a8c7b5c4c.rlib: crates/units/src/lib.rs crates/units/src/display.rs crates/units/src/quantities.rs crates/units/src/sweep.rs

/root/repo/target/release/deps/libscpg_units-7851832a8c7b5c4c.rmeta: crates/units/src/lib.rs crates/units/src/display.rs crates/units/src/quantities.rs crates/units/src/sweep.rs

crates/units/src/lib.rs:
crates/units/src/display.rs:
crates/units/src/quantities.rs:
crates/units/src/sweep.rs:
