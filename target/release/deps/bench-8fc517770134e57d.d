/root/repo/target/release/deps/bench-8fc517770134e57d.d: crates/bench/src/bin/bench.rs Cargo.toml

/root/repo/target/release/deps/libbench-8fc517770134e57d.rmeta: crates/bench/src/bin/bench.rs Cargo.toml

crates/bench/src/bin/bench.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=
# env-dep:CLIPPY_CONF_DIR
