/root/repo/target/release/deps/scpg_sim-de9c71db9d1dda5d.d: crates/sim/src/lib.rs crates/sim/src/compile.rs crates/sim/src/engine.rs crates/sim/src/reference.rs crates/sim/src/testbench.rs crates/sim/src/wheel.rs Cargo.toml

/root/repo/target/release/deps/libscpg_sim-de9c71db9d1dda5d.rmeta: crates/sim/src/lib.rs crates/sim/src/compile.rs crates/sim/src/engine.rs crates/sim/src/reference.rs crates/sim/src/testbench.rs crates/sim/src/wheel.rs Cargo.toml

crates/sim/src/lib.rs:
crates/sim/src/compile.rs:
crates/sim/src/engine.rs:
crates/sim/src/reference.rs:
crates/sim/src/testbench.rs:
crates/sim/src/wheel.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=
# env-dep:CLIPPY_CONF_DIR
