/root/repo/target/release/deps/scpg_bench-5272edab80f2061e.d: crates/bench/src/lib.rs Cargo.toml

/root/repo/target/release/deps/libscpg_bench-5272edab80f2061e.rmeta: crates/bench/src/lib.rs Cargo.toml

crates/bench/src/lib.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=
# env-dep:CLIPPY_CONF_DIR
