/root/repo/target/release/deps/fig7-2ae407fec47336bb.d: crates/bench/src/bin/fig7.rs

/root/repo/target/release/deps/fig7-2ae407fec47336bb: crates/bench/src/bin/fig7.rs

crates/bench/src/bin/fig7.rs:
