/root/repo/target/release/deps/scpg_synth-0b30564d22ae1412.d: crates/synth/src/lib.rs crates/synth/src/builder.rs crates/synth/src/cts.rs crates/synth/src/prune.rs crates/synth/src/word.rs Cargo.toml

/root/repo/target/release/deps/libscpg_synth-0b30564d22ae1412.rmeta: crates/synth/src/lib.rs crates/synth/src/builder.rs crates/synth/src/cts.rs crates/synth/src/prune.rs crates/synth/src/word.rs Cargo.toml

crates/synth/src/lib.rs:
crates/synth/src/builder.rs:
crates/synth/src/cts.rs:
crates/synth/src/prune.rs:
crates/synth/src/word.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=
# env-dep:CLIPPY_CONF_DIR
