/root/repo/target/release/deps/fig6-f01fc6e97b8fa16b.d: crates/bench/src/bin/fig6.rs

/root/repo/target/release/deps/fig6-f01fc6e97b8fa16b: crates/bench/src/bin/fig6.rs

crates/bench/src/bin/fig6.rs:
