/root/repo/target/release/deps/fig6-fbf1aed6ea0f614d.d: crates/bench/src/bin/fig6.rs Cargo.toml

/root/repo/target/release/deps/libfig6-fbf1aed6ea0f614d.rmeta: crates/bench/src/bin/fig6.rs Cargo.toml

crates/bench/src/bin/fig6.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=
# env-dep:CLIPPY_CONF_DIR
