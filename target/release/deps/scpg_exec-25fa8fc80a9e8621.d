/root/repo/target/release/deps/scpg_exec-25fa8fc80a9e8621.d: crates/exec/src/lib.rs

/root/repo/target/release/deps/scpg_exec-25fa8fc80a9e8621: crates/exec/src/lib.rs

crates/exec/src/lib.rs:
