/root/repo/target/release/deps/area-d27bdf0110660665.d: crates/bench/src/bin/area.rs Cargo.toml

/root/repo/target/release/deps/libarea-d27bdf0110660665.rmeta: crates/bench/src/bin/area.rs Cargo.toml

crates/bench/src/bin/area.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=
# env-dep:CLIPPY_CONF_DIR
