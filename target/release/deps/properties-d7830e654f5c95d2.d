/root/repo/target/release/deps/properties-d7830e654f5c95d2.d: tests/properties.rs

/root/repo/target/release/deps/properties-d7830e654f5c95d2: tests/properties.rs

tests/properties.rs:
