/root/repo/target/release/deps/scpg_sim-a368aae8b6bc52c8.d: crates/sim/src/lib.rs crates/sim/src/compile.rs crates/sim/src/engine.rs crates/sim/src/reference.rs crates/sim/src/testbench.rs crates/sim/src/wheel.rs

/root/repo/target/release/deps/scpg_sim-a368aae8b6bc52c8: crates/sim/src/lib.rs crates/sim/src/compile.rs crates/sim/src/engine.rs crates/sim/src/reference.rs crates/sim/src/testbench.rs crates/sim/src/wheel.rs

crates/sim/src/lib.rs:
crates/sim/src/compile.rs:
crates/sim/src/engine.rs:
crates/sim/src/reference.rs:
crates/sim/src/testbench.rs:
crates/sim/src/wheel.rs:
