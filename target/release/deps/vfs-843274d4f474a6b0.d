/root/repo/target/release/deps/vfs-843274d4f474a6b0.d: crates/bench/src/bin/vfs.rs

/root/repo/target/release/deps/vfs-843274d4f474a6b0: crates/bench/src/bin/vfs.rs

crates/bench/src/bin/vfs.rs:
