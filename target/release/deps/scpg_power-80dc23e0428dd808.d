/root/repo/target/release/deps/scpg_power-80dc23e0428dd808.d: crates/power/src/lib.rs crates/power/src/analyzer.rs crates/power/src/subthreshold.rs crates/power/src/variation.rs

/root/repo/target/release/deps/libscpg_power-80dc23e0428dd808.rlib: crates/power/src/lib.rs crates/power/src/analyzer.rs crates/power/src/subthreshold.rs crates/power/src/variation.rs

/root/repo/target/release/deps/libscpg_power-80dc23e0428dd808.rmeta: crates/power/src/lib.rs crates/power/src/analyzer.rs crates/power/src/subthreshold.rs crates/power/src/variation.rs

crates/power/src/lib.rs:
crates/power/src/analyzer.rs:
crates/power/src/subthreshold.rs:
crates/power/src/variation.rs:
