/root/repo/target/release/deps/scpg_netlist-9912fa763163f7e5.d: crates/netlist/src/lib.rs crates/netlist/src/error.rs crates/netlist/src/graph.rs crates/netlist/src/netlist.rs crates/netlist/src/stats.rs crates/netlist/src/verilog.rs

/root/repo/target/release/deps/libscpg_netlist-9912fa763163f7e5.rlib: crates/netlist/src/lib.rs crates/netlist/src/error.rs crates/netlist/src/graph.rs crates/netlist/src/netlist.rs crates/netlist/src/stats.rs crates/netlist/src/verilog.rs

/root/repo/target/release/deps/libscpg_netlist-9912fa763163f7e5.rmeta: crates/netlist/src/lib.rs crates/netlist/src/error.rs crates/netlist/src/graph.rs crates/netlist/src/netlist.rs crates/netlist/src/stats.rs crates/netlist/src/verilog.rs

crates/netlist/src/lib.rs:
crates/netlist/src/error.rs:
crates/netlist/src/graph.rs:
crates/netlist/src/netlist.rs:
crates/netlist/src/stats.rs:
crates/netlist/src/verilog.rs:
