/root/repo/target/release/deps/table1-3bc7e0415023f72e.d: crates/bench/src/bin/table1.rs

/root/repo/target/release/deps/table1-3bc7e0415023f72e: crates/bench/src/bin/table1.rs

crates/bench/src/bin/table1.rs:
