/root/repo/target/release/deps/scpg_liberty-ece938c6526c5e06.d: crates/liberty/src/lib.rs crates/liberty/src/cell.rs crates/liberty/src/format.rs crates/liberty/src/headers.rs crates/liberty/src/library.rs crates/liberty/src/logic.rs crates/liberty/src/model.rs Cargo.toml

/root/repo/target/release/deps/libscpg_liberty-ece938c6526c5e06.rmeta: crates/liberty/src/lib.rs crates/liberty/src/cell.rs crates/liberty/src/format.rs crates/liberty/src/headers.rs crates/liberty/src/library.rs crates/liberty/src/logic.rs crates/liberty/src/model.rs Cargo.toml

crates/liberty/src/lib.rs:
crates/liberty/src/cell.rs:
crates/liberty/src/format.rs:
crates/liberty/src/headers.rs:
crates/liberty/src/library.rs:
crates/liberty/src/logic.rs:
crates/liberty/src/model.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=
# env-dep:CLIPPY_CONF_DIR
