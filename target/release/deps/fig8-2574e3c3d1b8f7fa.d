/root/repo/target/release/deps/fig8-2574e3c3d1b8f7fa.d: crates/bench/src/bin/fig8.rs

/root/repo/target/release/deps/fig8-2574e3c3d1b8f7fa: crates/bench/src/bin/fig8.rs

crates/bench/src/bin/fig8.rs:
