/root/repo/target/release/deps/scpg_repro-90407a4c62e1ade3.d: src/lib.rs

/root/repo/target/release/deps/libscpg_repro-90407a4c62e1ade3.rlib: src/lib.rs

/root/repo/target/release/deps/libscpg_repro-90407a4c62e1ade3.rmeta: src/lib.rs

src/lib.rs:
