/root/repo/target/release/deps/headline-5ef7cde8bb7a43f5.d: crates/bench/src/bin/headline.rs

/root/repo/target/release/deps/headline-5ef7cde8bb7a43f5: crates/bench/src/bin/headline.rs

crates/bench/src/bin/headline.rs:
