/root/repo/target/release/deps/table1-6a30c4a119f4063e.d: crates/bench/src/bin/table1.rs Cargo.toml

/root/repo/target/release/deps/libtable1-6a30c4a119f4063e.rmeta: crates/bench/src/bin/table1.rs Cargo.toml

crates/bench/src/bin/table1.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=
# env-dep:CLIPPY_CONF_DIR
