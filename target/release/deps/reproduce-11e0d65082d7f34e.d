/root/repo/target/release/deps/reproduce-11e0d65082d7f34e.d: crates/bench/src/bin/reproduce.rs Cargo.toml

/root/repo/target/release/deps/libreproduce-11e0d65082d7f34e.rmeta: crates/bench/src/bin/reproduce.rs Cargo.toml

crates/bench/src/bin/reproduce.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=
# env-dep:CLIPPY_CONF_DIR
