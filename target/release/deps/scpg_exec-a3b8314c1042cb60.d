/root/repo/target/release/deps/scpg_exec-a3b8314c1042cb60.d: crates/exec/src/lib.rs Cargo.toml

/root/repo/target/release/deps/libscpg_exec-a3b8314c1042cb60.rmeta: crates/exec/src/lib.rs Cargo.toml

crates/exec/src/lib.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=
# env-dep:CLIPPY_CONF_DIR
