/root/repo/target/release/deps/scpg_power-a24f39987bb3e0b3.d: crates/power/src/lib.rs crates/power/src/analyzer.rs crates/power/src/subthreshold.rs crates/power/src/variation.rs Cargo.toml

/root/repo/target/release/deps/libscpg_power-a24f39987bb3e0b3.rmeta: crates/power/src/lib.rs crates/power/src/analyzer.rs crates/power/src/subthreshold.rs crates/power/src/variation.rs Cargo.toml

crates/power/src/lib.rs:
crates/power/src/analyzer.rs:
crates/power/src/subthreshold.rs:
crates/power/src/variation.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=
# env-dep:CLIPPY_CONF_DIR
