/root/repo/target/release/deps/fig6-66f1e0dbcc3a2e17.d: crates/bench/src/bin/fig6.rs Cargo.toml

/root/repo/target/release/deps/libfig6-66f1e0dbcc3a2e17.rmeta: crates/bench/src/bin/fig6.rs Cargo.toml

crates/bench/src/bin/fig6.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=
# env-dep:CLIPPY_CONF_DIR
