/root/repo/target/release/deps/fig8-c4cba4291581956c.d: crates/bench/src/bin/fig8.rs

/root/repo/target/release/deps/fig8-c4cba4291581956c: crates/bench/src/bin/fig8.rs

crates/bench/src/bin/fig8.rs:
