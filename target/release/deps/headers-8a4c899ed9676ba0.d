/root/repo/target/release/deps/headers-8a4c899ed9676ba0.d: crates/bench/src/bin/headers.rs Cargo.toml

/root/repo/target/release/deps/libheaders-8a4c899ed9676ba0.rmeta: crates/bench/src/bin/headers.rs Cargo.toml

crates/bench/src/bin/headers.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=
# env-dep:CLIPPY_CONF_DIR
