/root/repo/target/release/deps/cpu_scpg_replay-58a5a0a20bc9351e.d: tests/cpu_scpg_replay.rs

/root/repo/target/release/deps/cpu_scpg_replay-58a5a0a20bc9351e: tests/cpu_scpg_replay.rs

tests/cpu_scpg_replay.rs:
