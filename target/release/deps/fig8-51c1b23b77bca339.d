/root/repo/target/release/deps/fig8-51c1b23b77bca339.d: crates/bench/src/bin/fig8.rs Cargo.toml

/root/repo/target/release/deps/libfig8-51c1b23b77bca339.rmeta: crates/bench/src/bin/fig8.rs Cargo.toml

crates/bench/src/bin/fig8.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=
# env-dep:CLIPPY_CONF_DIR
