/root/repo/target/release/deps/table1-fd9563c0cf55673d.d: crates/bench/src/bin/table1.rs

/root/repo/target/release/deps/table1-fd9563c0cf55673d: crates/bench/src/bin/table1.rs

crates/bench/src/bin/table1.rs:
