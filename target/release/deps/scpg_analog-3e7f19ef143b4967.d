/root/repo/target/release/deps/scpg_analog-3e7f19ef143b4967.d: crates/analog/src/lib.rs crates/analog/src/gating.rs crates/analog/src/rail.rs crates/analog/src/sizing.rs crates/analog/src/transient.rs Cargo.toml

/root/repo/target/release/deps/libscpg_analog-3e7f19ef143b4967.rmeta: crates/analog/src/lib.rs crates/analog/src/gating.rs crates/analog/src/rail.rs crates/analog/src/sizing.rs crates/analog/src/transient.rs Cargo.toml

crates/analog/src/lib.rs:
crates/analog/src/gating.rs:
crates/analog/src/rail.rs:
crates/analog/src/sizing.rs:
crates/analog/src/transient.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=
# env-dep:CLIPPY_CONF_DIR
