/root/repo/target/release/deps/bench-d2263b583d5e4cfd.d: crates/bench/src/bin/bench.rs

/root/repo/target/release/deps/bench-d2263b583d5e4cfd: crates/bench/src/bin/bench.rs

crates/bench/src/bin/bench.rs:
