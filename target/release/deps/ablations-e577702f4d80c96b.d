/root/repo/target/release/deps/ablations-e577702f4d80c96b.d: crates/bench/benches/ablations.rs

/root/repo/target/release/deps/ablations-e577702f4d80c96b: crates/bench/benches/ablations.rs

crates/bench/benches/ablations.rs:
