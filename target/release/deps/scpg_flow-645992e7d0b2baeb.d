/root/repo/target/release/deps/scpg_flow-645992e7d0b2baeb.d: crates/core/src/bin/scpg_flow.rs Cargo.toml

/root/repo/target/release/deps/libscpg_flow-645992e7d0b2baeb.rmeta: crates/core/src/bin/scpg_flow.rs Cargo.toml

crates/core/src/bin/scpg_flow.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=
# env-dep:CLIPPY_CONF_DIR
