/root/repo/target/release/deps/lifecycle-971d7194884eaf3d.d: crates/bench/src/bin/lifecycle.rs

/root/repo/target/release/deps/lifecycle-971d7194884eaf3d: crates/bench/src/bin/lifecycle.rs

crates/bench/src/bin/lifecycle.rs:
