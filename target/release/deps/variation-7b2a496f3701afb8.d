/root/repo/target/release/deps/variation-7b2a496f3701afb8.d: crates/bench/src/bin/variation.rs Cargo.toml

/root/repo/target/release/deps/libvariation-7b2a496f3701afb8.rmeta: crates/bench/src/bin/variation.rs Cargo.toml

crates/bench/src/bin/variation.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=
# env-dep:CLIPPY_CONF_DIR
