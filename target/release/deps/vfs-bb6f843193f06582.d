/root/repo/target/release/deps/vfs-bb6f843193f06582.d: crates/bench/src/bin/vfs.rs Cargo.toml

/root/repo/target/release/deps/libvfs-bb6f843193f06582.rmeta: crates/bench/src/bin/vfs.rs Cargo.toml

crates/bench/src/bin/vfs.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=
# env-dep:CLIPPY_CONF_DIR
