/root/repo/target/release/deps/variation-00cf47cf225acb8d.d: crates/bench/src/bin/variation.rs Cargo.toml

/root/repo/target/release/deps/libvariation-00cf47cf225acb8d.rmeta: crates/bench/src/bin/variation.rs Cargo.toml

crates/bench/src/bin/variation.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=
# env-dep:CLIPPY_CONF_DIR
