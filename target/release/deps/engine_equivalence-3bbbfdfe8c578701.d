/root/repo/target/release/deps/engine_equivalence-3bbbfdfe8c578701.d: tests/engine_equivalence.rs

/root/repo/target/release/deps/engine_equivalence-3bbbfdfe8c578701: tests/engine_equivalence.rs

tests/engine_equivalence.rs:
