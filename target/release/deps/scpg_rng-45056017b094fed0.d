/root/repo/target/release/deps/scpg_rng-45056017b094fed0.d: crates/rng/src/lib.rs

/root/repo/target/release/deps/scpg_rng-45056017b094fed0: crates/rng/src/lib.rs

crates/rng/src/lib.rs:
