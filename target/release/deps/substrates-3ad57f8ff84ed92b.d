/root/repo/target/release/deps/substrates-3ad57f8ff84ed92b.d: crates/bench/benches/substrates.rs Cargo.toml

/root/repo/target/release/deps/libsubstrates-3ad57f8ff84ed92b.rmeta: crates/bench/benches/substrates.rs Cargo.toml

crates/bench/benches/substrates.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=
# env-dep:CLIPPY_CONF_DIR
