/root/repo/target/release/deps/scpg_analog-71646c884b76400e.d: crates/analog/src/lib.rs crates/analog/src/gating.rs crates/analog/src/rail.rs crates/analog/src/sizing.rs crates/analog/src/transient.rs

/root/repo/target/release/deps/scpg_analog-71646c884b76400e: crates/analog/src/lib.rs crates/analog/src/gating.rs crates/analog/src/rail.rs crates/analog/src/sizing.rs crates/analog/src/transient.rs

crates/analog/src/lib.rs:
crates/analog/src/gating.rs:
crates/analog/src/rail.rs:
crates/analog/src/sizing.rs:
crates/analog/src/transient.rs:
