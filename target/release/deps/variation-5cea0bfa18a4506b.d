/root/repo/target/release/deps/variation-5cea0bfa18a4506b.d: crates/bench/src/bin/variation.rs

/root/repo/target/release/deps/variation-5cea0bfa18a4506b: crates/bench/src/bin/variation.rs

crates/bench/src/bin/variation.rs:
