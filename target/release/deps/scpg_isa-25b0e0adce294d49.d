/root/repo/target/release/deps/scpg_isa-25b0e0adce294d49.d: crates/isa/src/lib.rs crates/isa/src/asm.rs crates/isa/src/dhrystone.rs crates/isa/src/inst.rs crates/isa/src/iss.rs

/root/repo/target/release/deps/libscpg_isa-25b0e0adce294d49.rlib: crates/isa/src/lib.rs crates/isa/src/asm.rs crates/isa/src/dhrystone.rs crates/isa/src/inst.rs crates/isa/src/iss.rs

/root/repo/target/release/deps/libscpg_isa-25b0e0adce294d49.rmeta: crates/isa/src/lib.rs crates/isa/src/asm.rs crates/isa/src/dhrystone.rs crates/isa/src/inst.rs crates/isa/src/iss.rs

crates/isa/src/lib.rs:
crates/isa/src/asm.rs:
crates/isa/src/dhrystone.rs:
crates/isa/src/inst.rs:
crates/isa/src/iss.rs:
