/root/repo/target/release/deps/headers-33f64256418fd357.d: crates/bench/src/bin/headers.rs

/root/repo/target/release/deps/headers-33f64256418fd357: crates/bench/src/bin/headers.rs

crates/bench/src/bin/headers.rs:
