/root/repo/target/release/deps/table2-1552f97b2c7c1f57.d: crates/bench/src/bin/table2.rs

/root/repo/target/release/deps/table2-1552f97b2c7c1f57: crates/bench/src/bin/table2.rs

crates/bench/src/bin/table2.rs:
