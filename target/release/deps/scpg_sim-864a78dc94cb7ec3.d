/root/repo/target/release/deps/scpg_sim-864a78dc94cb7ec3.d: crates/sim/src/lib.rs crates/sim/src/compile.rs crates/sim/src/engine.rs crates/sim/src/reference.rs crates/sim/src/testbench.rs crates/sim/src/wheel.rs Cargo.toml

/root/repo/target/release/deps/libscpg_sim-864a78dc94cb7ec3.rmeta: crates/sim/src/lib.rs crates/sim/src/compile.rs crates/sim/src/engine.rs crates/sim/src/reference.rs crates/sim/src/testbench.rs crates/sim/src/wheel.rs Cargo.toml

crates/sim/src/lib.rs:
crates/sim/src/compile.rs:
crates/sim/src/engine.rs:
crates/sim/src/reference.rs:
crates/sim/src/testbench.rs:
crates/sim/src/wheel.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=
# env-dep:CLIPPY_CONF_DIR
