/root/repo/target/release/deps/area-e8bc7ff035f7f2d4.d: crates/bench/src/bin/area.rs Cargo.toml

/root/repo/target/release/deps/libarea-e8bc7ff035f7f2d4.rmeta: crates/bench/src/bin/area.rs Cargo.toml

crates/bench/src/bin/area.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=
# env-dep:CLIPPY_CONF_DIR
