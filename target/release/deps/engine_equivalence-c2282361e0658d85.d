/root/repo/target/release/deps/engine_equivalence-c2282361e0658d85.d: tests/engine_equivalence.rs Cargo.toml

/root/repo/target/release/deps/libengine_equivalence-c2282361e0658d85.rmeta: tests/engine_equivalence.rs Cargo.toml

tests/engine_equivalence.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=
# env-dep:CLIPPY_CONF_DIR
