/root/repo/target/release/deps/substrates-5c7e5e12de6df35d.d: crates/bench/benches/substrates.rs

/root/repo/target/release/deps/substrates-5c7e5e12de6df35d: crates/bench/benches/substrates.rs

crates/bench/benches/substrates.rs:
