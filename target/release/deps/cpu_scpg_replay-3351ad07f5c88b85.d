/root/repo/target/release/deps/cpu_scpg_replay-3351ad07f5c88b85.d: tests/cpu_scpg_replay.rs Cargo.toml

/root/repo/target/release/deps/libcpu_scpg_replay-3351ad07f5c88b85.rmeta: tests/cpu_scpg_replay.rs Cargo.toml

tests/cpu_scpg_replay.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=
# env-dep:CLIPPY_CONF_DIR
