/root/repo/target/release/deps/fig7-aea621638e62dbea.d: crates/bench/src/bin/fig7.rs

/root/repo/target/release/deps/fig7-aea621638e62dbea: crates/bench/src/bin/fig7.rs

crates/bench/src/bin/fig7.rs:
