/root/repo/target/release/deps/scpg_exec-344c1c208ed79938.d: crates/exec/src/lib.rs Cargo.toml

/root/repo/target/release/deps/libscpg_exec-344c1c208ed79938.rmeta: crates/exec/src/lib.rs Cargo.toml

crates/exec/src/lib.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=
# env-dep:CLIPPY_CONF_DIR
