/root/repo/target/release/deps/scpg_rng-029c33a080a20099.d: crates/rng/src/lib.rs Cargo.toml

/root/repo/target/release/deps/libscpg_rng-029c33a080a20099.rmeta: crates/rng/src/lib.rs Cargo.toml

crates/rng/src/lib.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=
# env-dep:CLIPPY_CONF_DIR
