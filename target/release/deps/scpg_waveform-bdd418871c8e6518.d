/root/repo/target/release/deps/scpg_waveform-bdd418871c8e6518.d: crates/waveform/src/lib.rs crates/waveform/src/activity.rs crates/waveform/src/vcd.rs

/root/repo/target/release/deps/libscpg_waveform-bdd418871c8e6518.rlib: crates/waveform/src/lib.rs crates/waveform/src/activity.rs crates/waveform/src/vcd.rs

/root/repo/target/release/deps/libscpg_waveform-bdd418871c8e6518.rmeta: crates/waveform/src/lib.rs crates/waveform/src/activity.rs crates/waveform/src/vcd.rs

crates/waveform/src/lib.rs:
crates/waveform/src/activity.rs:
crates/waveform/src/vcd.rs:
