/root/repo/target/release/deps/vfs-b68ed97d33c38ca1.d: crates/bench/src/bin/vfs.rs

/root/repo/target/release/deps/vfs-b68ed97d33c38ca1: crates/bench/src/bin/vfs.rs

crates/bench/src/bin/vfs.rs:
