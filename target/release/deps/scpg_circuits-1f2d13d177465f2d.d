/root/repo/target/release/deps/scpg_circuits-1f2d13d177465f2d.d: crates/circuits/src/lib.rs crates/circuits/src/cpu.rs crates/circuits/src/harness.rs crates/circuits/src/multiplier.rs

/root/repo/target/release/deps/libscpg_circuits-1f2d13d177465f2d.rlib: crates/circuits/src/lib.rs crates/circuits/src/cpu.rs crates/circuits/src/harness.rs crates/circuits/src/multiplier.rs

/root/repo/target/release/deps/libscpg_circuits-1f2d13d177465f2d.rmeta: crates/circuits/src/lib.rs crates/circuits/src/cpu.rs crates/circuits/src/harness.rs crates/circuits/src/multiplier.rs

crates/circuits/src/lib.rs:
crates/circuits/src/cpu.rs:
crates/circuits/src/harness.rs:
crates/circuits/src/multiplier.rs:
