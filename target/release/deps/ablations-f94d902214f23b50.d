/root/repo/target/release/deps/ablations-f94d902214f23b50.d: crates/bench/benches/ablations.rs Cargo.toml

/root/repo/target/release/deps/libablations-f94d902214f23b50.rmeta: crates/bench/benches/ablations.rs Cargo.toml

crates/bench/benches/ablations.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=
# env-dep:CLIPPY_CONF_DIR
