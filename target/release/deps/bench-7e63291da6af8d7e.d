/root/repo/target/release/deps/bench-7e63291da6af8d7e.d: crates/bench/src/bin/bench.rs

/root/repo/target/release/deps/bench-7e63291da6af8d7e: crates/bench/src/bin/bench.rs

crates/bench/src/bin/bench.rs:
