/root/repo/target/release/deps/scpg_rng-7673928ecf06b100.d: crates/rng/src/lib.rs

/root/repo/target/release/deps/libscpg_rng-7673928ecf06b100.rlib: crates/rng/src/lib.rs

/root/repo/target/release/deps/libscpg_rng-7673928ecf06b100.rmeta: crates/rng/src/lib.rs

crates/rng/src/lib.rs:
