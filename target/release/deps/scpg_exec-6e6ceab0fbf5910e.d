/root/repo/target/release/deps/scpg_exec-6e6ceab0fbf5910e.d: crates/exec/src/lib.rs

/root/repo/target/release/deps/libscpg_exec-6e6ceab0fbf5910e.rlib: crates/exec/src/lib.rs

/root/repo/target/release/deps/libscpg_exec-6e6ceab0fbf5910e.rmeta: crates/exec/src/lib.rs

crates/exec/src/lib.rs:
