/root/repo/target/release/deps/scpg_bench-0c5e9fe3b32a3aae.d: crates/bench/src/lib.rs

/root/repo/target/release/deps/scpg_bench-0c5e9fe3b32a3aae: crates/bench/src/lib.rs

crates/bench/src/lib.rs:
