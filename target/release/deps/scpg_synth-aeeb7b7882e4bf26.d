/root/repo/target/release/deps/scpg_synth-aeeb7b7882e4bf26.d: crates/synth/src/lib.rs crates/synth/src/builder.rs crates/synth/src/cts.rs crates/synth/src/prune.rs crates/synth/src/word.rs

/root/repo/target/release/deps/libscpg_synth-aeeb7b7882e4bf26.rlib: crates/synth/src/lib.rs crates/synth/src/builder.rs crates/synth/src/cts.rs crates/synth/src/prune.rs crates/synth/src/word.rs

/root/repo/target/release/deps/libscpg_synth-aeeb7b7882e4bf26.rmeta: crates/synth/src/lib.rs crates/synth/src/builder.rs crates/synth/src/cts.rs crates/synth/src/prune.rs crates/synth/src/word.rs

crates/synth/src/lib.rs:
crates/synth/src/builder.rs:
crates/synth/src/cts.rs:
crates/synth/src/prune.rs:
crates/synth/src/word.rs:
