/root/repo/target/release/deps/scpg_sta-016026aa3f5d1f26.d: crates/sta/src/lib.rs Cargo.toml

/root/repo/target/release/deps/libscpg_sta-016026aa3f5d1f26.rmeta: crates/sta/src/lib.rs Cargo.toml

crates/sta/src/lib.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=
# env-dep:CLIPPY_CONF_DIR
