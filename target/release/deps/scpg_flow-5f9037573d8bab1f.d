/root/repo/target/release/deps/scpg_flow-5f9037573d8bab1f.d: crates/core/src/bin/scpg_flow.rs

/root/repo/target/release/deps/scpg_flow-5f9037573d8bab1f: crates/core/src/bin/scpg_flow.rs

crates/core/src/bin/scpg_flow.rs:
