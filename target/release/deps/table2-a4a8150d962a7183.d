/root/repo/target/release/deps/table2-a4a8150d962a7183.d: crates/bench/src/bin/table2.rs Cargo.toml

/root/repo/target/release/deps/libtable2-a4a8150d962a7183.rmeta: crates/bench/src/bin/table2.rs Cargo.toml

crates/bench/src/bin/table2.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=
# env-dep:CLIPPY_CONF_DIR
