/root/repo/target/release/deps/scpg_analog-337b06a037997666.d: crates/analog/src/lib.rs crates/analog/src/gating.rs crates/analog/src/rail.rs crates/analog/src/sizing.rs crates/analog/src/transient.rs Cargo.toml

/root/repo/target/release/deps/libscpg_analog-337b06a037997666.rmeta: crates/analog/src/lib.rs crates/analog/src/gating.rs crates/analog/src/rail.rs crates/analog/src/sizing.rs crates/analog/src/transient.rs Cargo.toml

crates/analog/src/lib.rs:
crates/analog/src/gating.rs:
crates/analog/src/rail.rs:
crates/analog/src/sizing.rs:
crates/analog/src/transient.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=
# env-dep:CLIPPY_CONF_DIR
