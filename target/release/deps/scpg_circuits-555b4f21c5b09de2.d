/root/repo/target/release/deps/scpg_circuits-555b4f21c5b09de2.d: crates/circuits/src/lib.rs crates/circuits/src/cpu.rs crates/circuits/src/harness.rs crates/circuits/src/multiplier.rs Cargo.toml

/root/repo/target/release/deps/libscpg_circuits-555b4f21c5b09de2.rmeta: crates/circuits/src/lib.rs crates/circuits/src/cpu.rs crates/circuits/src/harness.rs crates/circuits/src/multiplier.rs Cargo.toml

crates/circuits/src/lib.rs:
crates/circuits/src/cpu.rs:
crates/circuits/src/harness.rs:
crates/circuits/src/multiplier.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=
# env-dep:CLIPPY_CONF_DIR
