/root/repo/target/release/deps/subvscpg-d2337bee80af815e.d: crates/bench/src/bin/subvscpg.rs Cargo.toml

/root/repo/target/release/deps/libsubvscpg-d2337bee80af815e.rmeta: crates/bench/src/bin/subvscpg.rs Cargo.toml

crates/bench/src/bin/subvscpg.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=
# env-dep:CLIPPY_CONF_DIR
