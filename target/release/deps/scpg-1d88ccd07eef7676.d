/root/repo/target/release/deps/scpg-1d88ccd07eef7676.d: crates/core/src/lib.rs crates/core/src/analysis.rs crates/core/src/budget.rs crates/core/src/duty.rs crates/core/src/error.rs crates/core/src/flow.rs crates/core/src/headers.rs crates/core/src/lifecycle.rs crates/core/src/transform.rs crates/core/src/upf.rs Cargo.toml

/root/repo/target/release/deps/libscpg-1d88ccd07eef7676.rmeta: crates/core/src/lib.rs crates/core/src/analysis.rs crates/core/src/budget.rs crates/core/src/duty.rs crates/core/src/error.rs crates/core/src/flow.rs crates/core/src/headers.rs crates/core/src/lifecycle.rs crates/core/src/transform.rs crates/core/src/upf.rs Cargo.toml

crates/core/src/lib.rs:
crates/core/src/analysis.rs:
crates/core/src/budget.rs:
crates/core/src/duty.rs:
crates/core/src/error.rs:
crates/core/src/flow.rs:
crates/core/src/headers.rs:
crates/core/src/lifecycle.rs:
crates/core/src/transform.rs:
crates/core/src/upf.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=
# env-dep:CLIPPY_CONF_DIR
