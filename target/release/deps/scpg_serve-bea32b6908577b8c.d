/root/repo/target/release/deps/scpg_serve-bea32b6908577b8c.d: crates/serve/src/lib.rs crates/serve/src/api.rs crates/serve/src/cache.rs crates/serve/src/client.rs crates/serve/src/designs.rs crates/serve/src/http.rs crates/serve/src/metrics.rs crates/serve/src/queue.rs

/root/repo/target/release/deps/libscpg_serve-bea32b6908577b8c.rlib: crates/serve/src/lib.rs crates/serve/src/api.rs crates/serve/src/cache.rs crates/serve/src/client.rs crates/serve/src/designs.rs crates/serve/src/http.rs crates/serve/src/metrics.rs crates/serve/src/queue.rs

/root/repo/target/release/deps/libscpg_serve-bea32b6908577b8c.rmeta: crates/serve/src/lib.rs crates/serve/src/api.rs crates/serve/src/cache.rs crates/serve/src/client.rs crates/serve/src/designs.rs crates/serve/src/http.rs crates/serve/src/metrics.rs crates/serve/src/queue.rs

crates/serve/src/lib.rs:
crates/serve/src/api.rs:
crates/serve/src/cache.rs:
crates/serve/src/client.rs:
crates/serve/src/designs.rs:
crates/serve/src/http.rs:
crates/serve/src/metrics.rs:
crates/serve/src/queue.rs:
