/root/repo/target/release/deps/scpg_waveform-bf31ee8732ea5d09.d: crates/waveform/src/lib.rs crates/waveform/src/activity.rs crates/waveform/src/vcd.rs Cargo.toml

/root/repo/target/release/deps/libscpg_waveform-bf31ee8732ea5d09.rmeta: crates/waveform/src/lib.rs crates/waveform/src/activity.rs crates/waveform/src/vcd.rs Cargo.toml

crates/waveform/src/lib.rs:
crates/waveform/src/activity.rs:
crates/waveform/src/vcd.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=
# env-dep:CLIPPY_CONF_DIR
