/root/repo/target/release/deps/properties-9379e406b1564c3e.d: tests/properties.rs Cargo.toml

/root/repo/target/release/deps/libproperties-9379e406b1564c3e.rmeta: tests/properties.rs Cargo.toml

tests/properties.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=
# env-dep:CLIPPY_CONF_DIR
