/root/repo/target/release/deps/scpg_liberty-6fb823e39c603d78.d: crates/liberty/src/lib.rs crates/liberty/src/cell.rs crates/liberty/src/format.rs crates/liberty/src/headers.rs crates/liberty/src/library.rs crates/liberty/src/logic.rs crates/liberty/src/model.rs

/root/repo/target/release/deps/scpg_liberty-6fb823e39c603d78: crates/liberty/src/lib.rs crates/liberty/src/cell.rs crates/liberty/src/format.rs crates/liberty/src/headers.rs crates/liberty/src/library.rs crates/liberty/src/logic.rs crates/liberty/src/model.rs

crates/liberty/src/lib.rs:
crates/liberty/src/cell.rs:
crates/liberty/src/format.rs:
crates/liberty/src/headers.rs:
crates/liberty/src/library.rs:
crates/liberty/src/logic.rs:
crates/liberty/src/model.rs:
