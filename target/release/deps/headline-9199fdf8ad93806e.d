/root/repo/target/release/deps/headline-9199fdf8ad93806e.d: crates/bench/src/bin/headline.rs

/root/repo/target/release/deps/headline-9199fdf8ad93806e: crates/bench/src/bin/headline.rs

crates/bench/src/bin/headline.rs:
