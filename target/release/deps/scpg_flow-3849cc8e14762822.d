/root/repo/target/release/deps/scpg_flow-3849cc8e14762822.d: crates/core/src/bin/scpg_flow.rs Cargo.toml

/root/repo/target/release/deps/libscpg_flow-3849cc8e14762822.rmeta: crates/core/src/bin/scpg_flow.rs Cargo.toml

crates/core/src/bin/scpg_flow.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=
# env-dep:CLIPPY_CONF_DIR
