/root/repo/target/release/deps/scpg_sta-86c050a44cedc63f.d: crates/sta/src/lib.rs

/root/repo/target/release/deps/scpg_sta-86c050a44cedc63f: crates/sta/src/lib.rs

crates/sta/src/lib.rs:
