/root/repo/target/release/deps/scpg_netlist-a6526170a10aad8c.d: crates/netlist/src/lib.rs crates/netlist/src/error.rs crates/netlist/src/graph.rs crates/netlist/src/netlist.rs crates/netlist/src/stats.rs crates/netlist/src/verilog.rs Cargo.toml

/root/repo/target/release/deps/libscpg_netlist-a6526170a10aad8c.rmeta: crates/netlist/src/lib.rs crates/netlist/src/error.rs crates/netlist/src/graph.rs crates/netlist/src/netlist.rs crates/netlist/src/stats.rs crates/netlist/src/verilog.rs Cargo.toml

crates/netlist/src/lib.rs:
crates/netlist/src/error.rs:
crates/netlist/src/graph.rs:
crates/netlist/src/netlist.rs:
crates/netlist/src/stats.rs:
crates/netlist/src/verilog.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=
# env-dep:CLIPPY_CONF_DIR
