/root/repo/target/release/deps/scpg_repro-dc6be82c6bfabd52.d: src/lib.rs

/root/repo/target/release/deps/scpg_repro-dc6be82c6bfabd52: src/lib.rs

src/lib.rs:
