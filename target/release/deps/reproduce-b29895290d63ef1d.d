/root/repo/target/release/deps/reproduce-b29895290d63ef1d.d: crates/bench/src/bin/reproduce.rs Cargo.toml

/root/repo/target/release/deps/libreproduce-b29895290d63ef1d.rmeta: crates/bench/src/bin/reproduce.rs Cargo.toml

crates/bench/src/bin/reproduce.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=
# env-dep:CLIPPY_CONF_DIR
