/root/repo/target/release/deps/scpg_repro-e14eaa2f080dfc03.d: src/lib.rs

/root/repo/target/release/deps/libscpg_repro-e14eaa2f080dfc03.rlib: src/lib.rs

/root/repo/target/release/deps/libscpg_repro-e14eaa2f080dfc03.rmeta: src/lib.rs

src/lib.rs:
