/root/repo/target/release/deps/flow_artifacts-761ff7ca4d19176e.d: tests/flow_artifacts.rs

/root/repo/target/release/deps/flow_artifacts-761ff7ca4d19176e: tests/flow_artifacts.rs

tests/flow_artifacts.rs:
