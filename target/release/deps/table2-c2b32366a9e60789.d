/root/repo/target/release/deps/table2-c2b32366a9e60789.d: crates/bench/src/bin/table2.rs

/root/repo/target/release/deps/table2-c2b32366a9e60789: crates/bench/src/bin/table2.rs

crates/bench/src/bin/table2.rs:
