/root/repo/target/release/deps/scpg-b8a840e956497e00.d: crates/core/src/lib.rs crates/core/src/analysis.rs crates/core/src/budget.rs crates/core/src/duty.rs crates/core/src/error.rs crates/core/src/flow.rs crates/core/src/headers.rs crates/core/src/lifecycle.rs crates/core/src/service.rs crates/core/src/transform.rs crates/core/src/upf.rs

/root/repo/target/release/deps/libscpg-b8a840e956497e00.rlib: crates/core/src/lib.rs crates/core/src/analysis.rs crates/core/src/budget.rs crates/core/src/duty.rs crates/core/src/error.rs crates/core/src/flow.rs crates/core/src/headers.rs crates/core/src/lifecycle.rs crates/core/src/service.rs crates/core/src/transform.rs crates/core/src/upf.rs

/root/repo/target/release/deps/libscpg-b8a840e956497e00.rmeta: crates/core/src/lib.rs crates/core/src/analysis.rs crates/core/src/budget.rs crates/core/src/duty.rs crates/core/src/error.rs crates/core/src/flow.rs crates/core/src/headers.rs crates/core/src/lifecycle.rs crates/core/src/service.rs crates/core/src/transform.rs crates/core/src/upf.rs

crates/core/src/lib.rs:
crates/core/src/analysis.rs:
crates/core/src/budget.rs:
crates/core/src/duty.rs:
crates/core/src/error.rs:
crates/core/src/flow.rs:
crates/core/src/headers.rs:
crates/core/src/lifecycle.rs:
crates/core/src/service.rs:
crates/core/src/transform.rs:
crates/core/src/upf.rs:
