/root/repo/target/release/deps/scpg_units-7ec965d4165638ae.d: crates/units/src/lib.rs crates/units/src/display.rs crates/units/src/quantities.rs crates/units/src/sweep.rs Cargo.toml

/root/repo/target/release/deps/libscpg_units-7ec965d4165638ae.rmeta: crates/units/src/lib.rs crates/units/src/display.rs crates/units/src/quantities.rs crates/units/src/sweep.rs Cargo.toml

crates/units/src/lib.rs:
crates/units/src/display.rs:
crates/units/src/quantities.rs:
crates/units/src/sweep.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=
# env-dep:CLIPPY_CONF_DIR
