/root/repo/target/release/deps/fig9-42c0d3a8d5c62a6d.d: crates/bench/src/bin/fig9.rs

/root/repo/target/release/deps/fig9-42c0d3a8d5c62a6d: crates/bench/src/bin/fig9.rs

crates/bench/src/bin/fig9.rs:
