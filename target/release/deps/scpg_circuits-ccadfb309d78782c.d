/root/repo/target/release/deps/scpg_circuits-ccadfb309d78782c.d: crates/circuits/src/lib.rs crates/circuits/src/cpu.rs crates/circuits/src/harness.rs crates/circuits/src/multiplier.rs Cargo.toml

/root/repo/target/release/deps/libscpg_circuits-ccadfb309d78782c.rmeta: crates/circuits/src/lib.rs crates/circuits/src/cpu.rs crates/circuits/src/harness.rs crates/circuits/src/multiplier.rs Cargo.toml

crates/circuits/src/lib.rs:
crates/circuits/src/cpu.rs:
crates/circuits/src/harness.rs:
crates/circuits/src/multiplier.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=
# env-dep:CLIPPY_CONF_DIR
