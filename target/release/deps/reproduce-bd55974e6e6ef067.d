/root/repo/target/release/deps/reproduce-bd55974e6e6ef067.d: crates/bench/src/bin/reproduce.rs

/root/repo/target/release/deps/reproduce-bd55974e6e6ef067: crates/bench/src/bin/reproduce.rs

crates/bench/src/bin/reproduce.rs:
