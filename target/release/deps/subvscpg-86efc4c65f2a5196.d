/root/repo/target/release/deps/subvscpg-86efc4c65f2a5196.d: crates/bench/src/bin/subvscpg.rs

/root/repo/target/release/deps/subvscpg-86efc4c65f2a5196: crates/bench/src/bin/subvscpg.rs

crates/bench/src/bin/subvscpg.rs:
