/root/repo/target/release/deps/scpg_liberty-9ca41d9a6a86c880.d: crates/liberty/src/lib.rs crates/liberty/src/cell.rs crates/liberty/src/format.rs crates/liberty/src/headers.rs crates/liberty/src/library.rs crates/liberty/src/logic.rs crates/liberty/src/model.rs

/root/repo/target/release/deps/libscpg_liberty-9ca41d9a6a86c880.rlib: crates/liberty/src/lib.rs crates/liberty/src/cell.rs crates/liberty/src/format.rs crates/liberty/src/headers.rs crates/liberty/src/library.rs crates/liberty/src/logic.rs crates/liberty/src/model.rs

/root/repo/target/release/deps/libscpg_liberty-9ca41d9a6a86c880.rmeta: crates/liberty/src/lib.rs crates/liberty/src/cell.rs crates/liberty/src/format.rs crates/liberty/src/headers.rs crates/liberty/src/library.rs crates/liberty/src/logic.rs crates/liberty/src/model.rs

crates/liberty/src/lib.rs:
crates/liberty/src/cell.rs:
crates/liberty/src/format.rs:
crates/liberty/src/headers.rs:
crates/liberty/src/library.rs:
crates/liberty/src/logic.rs:
crates/liberty/src/model.rs:
