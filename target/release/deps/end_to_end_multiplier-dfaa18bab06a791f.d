/root/repo/target/release/deps/end_to_end_multiplier-dfaa18bab06a791f.d: tests/end_to_end_multiplier.rs

/root/repo/target/release/deps/end_to_end_multiplier-dfaa18bab06a791f: tests/end_to_end_multiplier.rs

tests/end_to_end_multiplier.rs:
