/root/repo/target/release/deps/vfs-9f0dd6f391fe99cd.d: crates/bench/src/bin/vfs.rs Cargo.toml

/root/repo/target/release/deps/libvfs-9f0dd6f391fe99cd.rmeta: crates/bench/src/bin/vfs.rs Cargo.toml

crates/bench/src/bin/vfs.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=
# env-dep:CLIPPY_CONF_DIR
