/root/repo/target/release/deps/scpg_netlist-15d2f270f4990a3a.d: crates/netlist/src/lib.rs crates/netlist/src/error.rs crates/netlist/src/graph.rs crates/netlist/src/netlist.rs crates/netlist/src/stats.rs crates/netlist/src/verilog.rs Cargo.toml

/root/repo/target/release/deps/libscpg_netlist-15d2f270f4990a3a.rmeta: crates/netlist/src/lib.rs crates/netlist/src/error.rs crates/netlist/src/graph.rs crates/netlist/src/netlist.rs crates/netlist/src/stats.rs crates/netlist/src/verilog.rs Cargo.toml

crates/netlist/src/lib.rs:
crates/netlist/src/error.rs:
crates/netlist/src/graph.rs:
crates/netlist/src/netlist.rs:
crates/netlist/src/stats.rs:
crates/netlist/src/verilog.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=
# env-dep:CLIPPY_CONF_DIR
