/root/repo/target/release/deps/scpg_bench-3ce90230d073b9ba.d: crates/bench/src/lib.rs

/root/repo/target/release/deps/libscpg_bench-3ce90230d073b9ba.rlib: crates/bench/src/lib.rs

/root/repo/target/release/deps/libscpg_bench-3ce90230d073b9ba.rmeta: crates/bench/src/lib.rs

crates/bench/src/lib.rs:
