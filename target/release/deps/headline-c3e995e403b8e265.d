/root/repo/target/release/deps/headline-c3e995e403b8e265.d: crates/bench/src/bin/headline.rs Cargo.toml

/root/repo/target/release/deps/libheadline-c3e995e403b8e265.rmeta: crates/bench/src/bin/headline.rs Cargo.toml

crates/bench/src/bin/headline.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=
# env-dep:CLIPPY_CONF_DIR
