/root/repo/target/release/deps/subvscpg-19cf8e979c53c44d.d: crates/bench/src/bin/subvscpg.rs Cargo.toml

/root/repo/target/release/deps/libsubvscpg-19cf8e979c53c44d.rmeta: crates/bench/src/bin/subvscpg.rs Cargo.toml

crates/bench/src/bin/subvscpg.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=
# env-dep:CLIPPY_CONF_DIR
