/root/repo/target/release/deps/lifecycle-6407ecae48b8aa6f.d: crates/bench/src/bin/lifecycle.rs Cargo.toml

/root/repo/target/release/deps/liblifecycle-6407ecae48b8aa6f.rmeta: crates/bench/src/bin/lifecycle.rs Cargo.toml

crates/bench/src/bin/lifecycle.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=
# env-dep:CLIPPY_CONF_DIR
