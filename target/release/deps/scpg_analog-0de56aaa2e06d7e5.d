/root/repo/target/release/deps/scpg_analog-0de56aaa2e06d7e5.d: crates/analog/src/lib.rs crates/analog/src/gating.rs crates/analog/src/rail.rs crates/analog/src/sizing.rs crates/analog/src/transient.rs

/root/repo/target/release/deps/libscpg_analog-0de56aaa2e06d7e5.rlib: crates/analog/src/lib.rs crates/analog/src/gating.rs crates/analog/src/rail.rs crates/analog/src/sizing.rs crates/analog/src/transient.rs

/root/repo/target/release/deps/libscpg_analog-0de56aaa2e06d7e5.rmeta: crates/analog/src/lib.rs crates/analog/src/gating.rs crates/analog/src/rail.rs crates/analog/src/sizing.rs crates/analog/src/transient.rs

crates/analog/src/lib.rs:
crates/analog/src/gating.rs:
crates/analog/src/rail.rs:
crates/analog/src/sizing.rs:
crates/analog/src/transient.rs:
