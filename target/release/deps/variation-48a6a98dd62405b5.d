/root/repo/target/release/deps/variation-48a6a98dd62405b5.d: crates/bench/src/bin/variation.rs

/root/repo/target/release/deps/variation-48a6a98dd62405b5: crates/bench/src/bin/variation.rs

crates/bench/src/bin/variation.rs:
