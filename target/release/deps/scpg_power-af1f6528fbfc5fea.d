/root/repo/target/release/deps/scpg_power-af1f6528fbfc5fea.d: crates/power/src/lib.rs crates/power/src/analyzer.rs crates/power/src/subthreshold.rs crates/power/src/variation.rs

/root/repo/target/release/deps/scpg_power-af1f6528fbfc5fea: crates/power/src/lib.rs crates/power/src/analyzer.rs crates/power/src/subthreshold.rs crates/power/src/variation.rs

crates/power/src/lib.rs:
crates/power/src/analyzer.rs:
crates/power/src/subthreshold.rs:
crates/power/src/variation.rs:
