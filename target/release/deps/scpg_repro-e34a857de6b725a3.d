/root/repo/target/release/deps/scpg_repro-e34a857de6b725a3.d: src/lib.rs Cargo.toml

/root/repo/target/release/deps/libscpg_repro-e34a857de6b725a3.rmeta: src/lib.rs Cargo.toml

src/lib.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=
# env-dep:CLIPPY_CONF_DIR
