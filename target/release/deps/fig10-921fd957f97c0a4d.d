/root/repo/target/release/deps/fig10-921fd957f97c0a4d.d: crates/bench/src/bin/fig10.rs

/root/repo/target/release/deps/fig10-921fd957f97c0a4d: crates/bench/src/bin/fig10.rs

crates/bench/src/bin/fig10.rs:
