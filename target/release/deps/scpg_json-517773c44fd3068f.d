/root/repo/target/release/deps/scpg_json-517773c44fd3068f.d: crates/json/src/lib.rs

/root/repo/target/release/deps/libscpg_json-517773c44fd3068f.rlib: crates/json/src/lib.rs

/root/repo/target/release/deps/libscpg_json-517773c44fd3068f.rmeta: crates/json/src/lib.rs

crates/json/src/lib.rs:
