/root/repo/target/release/deps/scpg_serve-3ec14dc40cd5c086.d: crates/serve/src/bin/scpg_serve.rs

/root/repo/target/release/deps/scpg_serve-3ec14dc40cd5c086: crates/serve/src/bin/scpg_serve.rs

crates/serve/src/bin/scpg_serve.rs:
