/root/repo/target/release/deps/end_to_end_multiplier-0af025698e54b94a.d: tests/end_to_end_multiplier.rs Cargo.toml

/root/repo/target/release/deps/libend_to_end_multiplier-0af025698e54b94a.rmeta: tests/end_to_end_multiplier.rs Cargo.toml

tests/end_to_end_multiplier.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=
# env-dep:CLIPPY_CONF_DIR
