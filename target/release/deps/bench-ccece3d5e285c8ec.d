/root/repo/target/release/deps/bench-ccece3d5e285c8ec.d: crates/bench/src/bin/bench.rs

/root/repo/target/release/deps/bench-ccece3d5e285c8ec: crates/bench/src/bin/bench.rs

crates/bench/src/bin/bench.rs:
