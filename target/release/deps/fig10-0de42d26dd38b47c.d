/root/repo/target/release/deps/fig10-0de42d26dd38b47c.d: crates/bench/src/bin/fig10.rs Cargo.toml

/root/repo/target/release/deps/libfig10-0de42d26dd38b47c.rmeta: crates/bench/src/bin/fig10.rs Cargo.toml

crates/bench/src/bin/fig10.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=
# env-dep:CLIPPY_CONF_DIR
