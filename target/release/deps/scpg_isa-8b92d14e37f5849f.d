/root/repo/target/release/deps/scpg_isa-8b92d14e37f5849f.d: crates/isa/src/lib.rs crates/isa/src/asm.rs crates/isa/src/dhrystone.rs crates/isa/src/inst.rs crates/isa/src/iss.rs Cargo.toml

/root/repo/target/release/deps/libscpg_isa-8b92d14e37f5849f.rmeta: crates/isa/src/lib.rs crates/isa/src/asm.rs crates/isa/src/dhrystone.rs crates/isa/src/inst.rs crates/isa/src/iss.rs Cargo.toml

crates/isa/src/lib.rs:
crates/isa/src/asm.rs:
crates/isa/src/dhrystone.rs:
crates/isa/src/inst.rs:
crates/isa/src/iss.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=
# env-dep:CLIPPY_CONF_DIR
