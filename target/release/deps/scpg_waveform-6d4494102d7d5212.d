/root/repo/target/release/deps/scpg_waveform-6d4494102d7d5212.d: crates/waveform/src/lib.rs crates/waveform/src/activity.rs crates/waveform/src/vcd.rs

/root/repo/target/release/deps/scpg_waveform-6d4494102d7d5212: crates/waveform/src/lib.rs crates/waveform/src/activity.rs crates/waveform/src/vcd.rs

crates/waveform/src/lib.rs:
crates/waveform/src/activity.rs:
crates/waveform/src/vcd.rs:
