/root/repo/target/release/deps/scpg_bench-151c392f04879348.d: crates/bench/src/lib.rs Cargo.toml

/root/repo/target/release/deps/libscpg_bench-151c392f04879348.rmeta: crates/bench/src/lib.rs Cargo.toml

crates/bench/src/lib.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=
# env-dep:CLIPPY_CONF_DIR
