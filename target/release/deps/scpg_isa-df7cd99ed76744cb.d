/root/repo/target/release/deps/scpg_isa-df7cd99ed76744cb.d: crates/isa/src/lib.rs crates/isa/src/asm.rs crates/isa/src/dhrystone.rs crates/isa/src/inst.rs crates/isa/src/iss.rs

/root/repo/target/release/deps/scpg_isa-df7cd99ed76744cb: crates/isa/src/lib.rs crates/isa/src/asm.rs crates/isa/src/dhrystone.rs crates/isa/src/inst.rs crates/isa/src/iss.rs

crates/isa/src/lib.rs:
crates/isa/src/asm.rs:
crates/isa/src/dhrystone.rs:
crates/isa/src/inst.rs:
crates/isa/src/iss.rs:
