/root/repo/target/release/deps/variation-bc9a42e4a34469d7.d: crates/bench/src/bin/variation.rs

/root/repo/target/release/deps/variation-bc9a42e4a34469d7: crates/bench/src/bin/variation.rs

crates/bench/src/bin/variation.rs:
