/root/repo/target/release/deps/reproduce-b90d4b7c6a56be76.d: crates/bench/src/bin/reproduce.rs

/root/repo/target/release/deps/reproduce-b90d4b7c6a56be76: crates/bench/src/bin/reproduce.rs

crates/bench/src/bin/reproduce.rs:
