/root/repo/target/release/deps/lifecycle-a7dec9a4a798436c.d: crates/bench/src/bin/lifecycle.rs

/root/repo/target/release/deps/lifecycle-a7dec9a4a798436c: crates/bench/src/bin/lifecycle.rs

crates/bench/src/bin/lifecycle.rs:
