/root/repo/target/release/deps/bench-5f19c4b8813e5aa6.d: crates/bench/src/bin/bench.rs Cargo.toml

/root/repo/target/release/deps/libbench-5f19c4b8813e5aa6.rmeta: crates/bench/src/bin/bench.rs Cargo.toml

crates/bench/src/bin/bench.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=
# env-dep:CLIPPY_CONF_DIR
