/root/repo/target/release/deps/headers-b66f47e342c0668f.d: crates/bench/src/bin/headers.rs Cargo.toml

/root/repo/target/release/deps/libheaders-b66f47e342c0668f.rmeta: crates/bench/src/bin/headers.rs Cargo.toml

crates/bench/src/bin/headers.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=
# env-dep:CLIPPY_CONF_DIR
