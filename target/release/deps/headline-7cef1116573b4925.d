/root/repo/target/release/deps/headline-7cef1116573b4925.d: crates/bench/src/bin/headline.rs Cargo.toml

/root/repo/target/release/deps/libheadline-7cef1116573b4925.rmeta: crates/bench/src/bin/headline.rs Cargo.toml

crates/bench/src/bin/headline.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=
# env-dep:CLIPPY_CONF_DIR
