/root/repo/target/release/deps/scpg_sta-7389bf0d3ad2769f.d: crates/sta/src/lib.rs Cargo.toml

/root/repo/target/release/deps/libscpg_sta-7389bf0d3ad2769f.rmeta: crates/sta/src/lib.rs Cargo.toml

crates/sta/src/lib.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=
# env-dep:CLIPPY_CONF_DIR
