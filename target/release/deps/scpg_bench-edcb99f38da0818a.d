/root/repo/target/release/deps/scpg_bench-edcb99f38da0818a.d: crates/bench/src/lib.rs

/root/repo/target/release/deps/libscpg_bench-edcb99f38da0818a.rlib: crates/bench/src/lib.rs

/root/repo/target/release/deps/libscpg_bench-edcb99f38da0818a.rmeta: crates/bench/src/lib.rs

crates/bench/src/lib.rs:
