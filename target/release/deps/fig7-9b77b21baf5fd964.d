/root/repo/target/release/deps/fig7-9b77b21baf5fd964.d: crates/bench/src/bin/fig7.rs Cargo.toml

/root/repo/target/release/deps/libfig7-9b77b21baf5fd964.rmeta: crates/bench/src/bin/fig7.rs Cargo.toml

crates/bench/src/bin/fig7.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=
# env-dep:CLIPPY_CONF_DIR
