/root/repo/target/release/deps/scpg_sim-ce872c3e01d6f6d5.d: crates/sim/src/lib.rs crates/sim/src/compile.rs crates/sim/src/engine.rs crates/sim/src/reference.rs crates/sim/src/testbench.rs crates/sim/src/wheel.rs

/root/repo/target/release/deps/libscpg_sim-ce872c3e01d6f6d5.rlib: crates/sim/src/lib.rs crates/sim/src/compile.rs crates/sim/src/engine.rs crates/sim/src/reference.rs crates/sim/src/testbench.rs crates/sim/src/wheel.rs

/root/repo/target/release/deps/libscpg_sim-ce872c3e01d6f6d5.rmeta: crates/sim/src/lib.rs crates/sim/src/compile.rs crates/sim/src/engine.rs crates/sim/src/reference.rs crates/sim/src/testbench.rs crates/sim/src/wheel.rs

crates/sim/src/lib.rs:
crates/sim/src/compile.rs:
crates/sim/src/engine.rs:
crates/sim/src/reference.rs:
crates/sim/src/testbench.rs:
crates/sim/src/wheel.rs:
