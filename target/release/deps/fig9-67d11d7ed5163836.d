/root/repo/target/release/deps/fig9-67d11d7ed5163836.d: crates/bench/src/bin/fig9.rs Cargo.toml

/root/repo/target/release/deps/libfig9-67d11d7ed5163836.rmeta: crates/bench/src/bin/fig9.rs Cargo.toml

crates/bench/src/bin/fig9.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=
# env-dep:CLIPPY_CONF_DIR
