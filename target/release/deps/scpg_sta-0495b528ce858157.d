/root/repo/target/release/deps/scpg_sta-0495b528ce858157.d: crates/sta/src/lib.rs

/root/repo/target/release/deps/libscpg_sta-0495b528ce858157.rlib: crates/sta/src/lib.rs

/root/repo/target/release/deps/libscpg_sta-0495b528ce858157.rmeta: crates/sta/src/lib.rs

crates/sta/src/lib.rs:
