/root/repo/target/release/deps/area-e6a7a37244516970.d: crates/bench/src/bin/area.rs

/root/repo/target/release/deps/area-e6a7a37244516970: crates/bench/src/bin/area.rs

crates/bench/src/bin/area.rs:
