/root/repo/target/release/deps/scpg_units-ddb93407cd890378.d: crates/units/src/lib.rs crates/units/src/display.rs crates/units/src/quantities.rs crates/units/src/sweep.rs

/root/repo/target/release/deps/scpg_units-ddb93407cd890378: crates/units/src/lib.rs crates/units/src/display.rs crates/units/src/quantities.rs crates/units/src/sweep.rs

crates/units/src/lib.rs:
crates/units/src/display.rs:
crates/units/src/quantities.rs:
crates/units/src/sweep.rs:
