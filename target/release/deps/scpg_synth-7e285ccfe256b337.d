/root/repo/target/release/deps/scpg_synth-7e285ccfe256b337.d: crates/synth/src/lib.rs crates/synth/src/builder.rs crates/synth/src/cts.rs crates/synth/src/prune.rs crates/synth/src/word.rs

/root/repo/target/release/deps/scpg_synth-7e285ccfe256b337: crates/synth/src/lib.rs crates/synth/src/builder.rs crates/synth/src/cts.rs crates/synth/src/prune.rs crates/synth/src/word.rs

crates/synth/src/lib.rs:
crates/synth/src/builder.rs:
crates/synth/src/cts.rs:
crates/synth/src/prune.rs:
crates/synth/src/word.rs:
