/root/repo/target/release/deps/scpg_circuits-63ca4360be031a24.d: crates/circuits/src/lib.rs crates/circuits/src/cpu.rs crates/circuits/src/harness.rs crates/circuits/src/multiplier.rs

/root/repo/target/release/deps/scpg_circuits-63ca4360be031a24: crates/circuits/src/lib.rs crates/circuits/src/cpu.rs crates/circuits/src/harness.rs crates/circuits/src/multiplier.rs

crates/circuits/src/lib.rs:
crates/circuits/src/cpu.rs:
crates/circuits/src/harness.rs:
crates/circuits/src/multiplier.rs:
