/root/repo/target/release/deps/table1-cba7da376a300c40.d: crates/bench/src/bin/table1.rs

/root/repo/target/release/deps/table1-cba7da376a300c40: crates/bench/src/bin/table1.rs

crates/bench/src/bin/table1.rs:
