/root/repo/target/release/deps/lifecycle-a7d2f0f54a7de90a.d: crates/bench/src/bin/lifecycle.rs Cargo.toml

/root/repo/target/release/deps/liblifecycle-a7d2f0f54a7de90a.rmeta: crates/bench/src/bin/lifecycle.rs Cargo.toml

crates/bench/src/bin/lifecycle.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=
# env-dep:CLIPPY_CONF_DIR
